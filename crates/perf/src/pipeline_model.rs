//! Analytic pipelined-throughput model (§III-F).

use crate::stages::StageBudget;

/// Parameters of the pipelined execution model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineModel {
    /// Worker threads (one per core on the Zynq US+: 4).
    pub workers: usize,
    /// Fractional efficiency lost to "parallelization and synchronization
    /// overhead" (§III-F). The paper achieves "almost a threefold speedup"
    /// where 4 workers over 6 similar stages bound ~4×; we calibrate the
    /// dilution once from the published 5.2 → 16 fps step.
    pub efficiency: f64,
}

impl Default for PipelineModel {
    fn default() -> Self {
        Self {
            workers: 4,
            efficiency: 0.78,
        }
    }
}

/// Predicts the pipelined frame rate for a stage budget.
///
/// Throughput is bounded by two limits:
/// * the slowest stage (one frame cannot finish faster than its longest
///   step), and
/// * the worker count (at most `workers` stages execute concurrently),
///
/// both diluted by the synchronization-efficiency factor.
pub fn pipelined_fps(budget: &StageBudget, model: PipelineModel) -> f64 {
    let sequential_fps = budget.sequential_fps();
    let (_, bottleneck_ms) = budget.bottleneck();
    let stage_bound = 1000.0 / bottleneck_ms;
    let worker_bound = sequential_fps * model.workers as f64;
    stage_bound.min(worker_bound) * model.efficiency
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stages::StageId;

    /// The optimized Tincy budget just before pipelining (§III-E end
    /// state): all stages similarly complex, the most complex ~40 ms.
    fn optimized_budget() -> StageBudget {
        StageBudget::paper_baseline()
            .with(StageId::InputLayer, crate::calib::LEAN_INPUT_CONV_MS)
            .with(StageId::MaxPool, 0.0)
            .with(StageId::HiddenLayers, crate::calib::FABRIC_HIDDEN_MS)
    }

    #[test]
    fn optimized_sequential_rate_is_above_five_fps() {
        // §III-E: "a frame rate of more than 5 fps was at hand".
        assert!(optimized_budget().sequential_fps() > 5.0);
    }

    #[test]
    fn pipelining_reproduces_sixteen_fps() {
        let fps = pipelined_fps(&optimized_budget(), PipelineModel::default());
        assert!(
            (14.0..20.0).contains(&fps),
            "modelled pipelined rate {fps} fps vs paper's 16"
        );
    }

    #[test]
    fn pipelining_speedup_is_about_threefold() {
        let budget = optimized_budget();
        let speedup = pipelined_fps(&budget, PipelineModel::default()) / budget.sequential_fps();
        // §III-F: "almost a threefold speedup".
        assert!((2.0..4.0).contains(&speedup), "pipeline speedup {speedup}");
    }

    #[test]
    fn worker_bound_limits_deep_uniform_pipelines() {
        // Many equal stages: throughput capped by workers, not by the
        // bottleneck stage.
        let budget = StageBudget::paper_baseline()
            .with(StageId::Acquisition, 10.0)
            .with(StageId::InputLayer, 10.0)
            .with(StageId::MaxPool, 10.0)
            .with(StageId::HiddenLayers, 10.0)
            .with(StageId::OutputLayer, 10.0)
            .with(StageId::BoxDrawing, 10.0)
            .with(StageId::ImageOutput, 10.0);
        let two = pipelined_fps(
            &budget,
            PipelineModel {
                workers: 2,
                efficiency: 1.0,
            },
        );
        let seven = pipelined_fps(
            &budget,
            PipelineModel {
                workers: 7,
                efficiency: 1.0,
            },
        );
        assert!((two - budget.sequential_fps() * 2.0).abs() < 1e-9);
        assert!((seven - 100.0).abs() < 1e-9); // stage bound: 10 ms
    }
}
