//! Rolling recalibration: the calibration-over-time half of the
//! modeled-vs-observed story.
//!
//! [`measured_budget`](crate::measured_budget) answers "what did this
//! run measure"; a long-lived server needs "what is the pipeline
//! measuring *now*, and has it walked away from the model". The
//! [`RollingCalibrator`] consumes per-segment stage means (as produced
//! by the streaming trace drains) and maintains an exponentially
//! weighted moving average per Table III stage — an EWMA over a nominal
//! window of N segments (`alpha = 2/(N+1)`, the standard N-period EWMA,
//! so the last N segments carry ~86% of the weight). Each stage's EWMA
//! is compared against a reference budget; relative divergence past a
//! threshold raises the drift alert.
//!
//! The reference is either a fixed modeled budget
//! ([`RollingCalibrator::with_model`] — FINN-R style continuous
//! validation against the performance model) or, by default, frozen from
//! the EWMA itself after a warmup prefix of segments — self-calibration,
//! for deployments where the absolute model does not apply (simulated
//! timing, different silicon) but *drift from steady state* is still the
//! signal that matters.

use crate::observed::{classify_stage, stage_index};
use crate::stages::{StageBudget, StageId};

/// Tuning for a [`RollingCalibrator`].
#[derive(Debug, Clone, Copy)]
pub struct RollingConfig {
    /// Nominal EWMA window in segments; `alpha = 2 / (window + 1)`.
    pub window: usize,
    /// Segments absorbed before the self-calibrated reference freezes
    /// (ignored when a model reference is supplied). Until the
    /// reference exists, no drift is computed and no alert can fire.
    pub warmup: usize,
    /// Relative divergence (`|ewma - reference| / reference`) at which a
    /// stage counts as drifted; `0.5` = 50%.
    pub threshold: f64,
}

impl Default for RollingConfig {
    fn default() -> Self {
        Self {
            window: 8,
            warmup: 3,
            threshold: 0.5,
        }
    }
}

/// One stage's drift state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftRow {
    /// The Table III stage.
    pub stage: StageId,
    /// Reference per-frame time in ms (`None` until the reference is
    /// established for this stage).
    pub reference_ms: Option<f64>,
    /// Current EWMA of the measured per-frame time in ms (`None` until
    /// the stage has been observed).
    pub ewma_ms: Option<f64>,
    /// Signed relative divergence `(ewma - reference) / reference`.
    pub drift: Option<f64>,
    /// Whether this stage currently exceeds the threshold.
    pub alerted: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct StageState {
    ewma_ms: Option<f64>,
    reference_ms: Option<f64>,
}

/// Windowed measured stage budgets with drift detection; see the module
/// docs for the EWMA and reference semantics.
#[derive(Debug, Clone)]
pub struct RollingCalibrator {
    config: RollingConfig,
    stages: [StageState; 8],
    segments: u64,
    model: Option<StageBudget>,
}

impl RollingCalibrator {
    /// A self-calibrating instance: the reference freezes from the EWMA
    /// after the warmup prefix.
    pub fn new(config: RollingConfig) -> Self {
        Self {
            config,
            stages: [StageState::default(); 8],
            segments: 0,
            model: None,
        }
    }

    /// An instance validating against a fixed modeled budget: every
    /// stage's reference is the model from the first segment on.
    pub fn with_model(config: RollingConfig, model: &StageBudget) -> Self {
        let mut this = Self::new(config);
        this.model = Some(*model);
        for (i, stage) in StageId::ALL.into_iter().enumerate() {
            this.stages[i].reference_ms = Some(model.get(stage));
        }
        this
    }

    /// The EWMA smoothing factor.
    fn alpha(&self) -> f64 {
        2.0 / (self.config.window as f64 + 1.0)
    }

    /// Absorbs one segment's per-stage means (`(stage name, mean ms)`
    /// pairs, the shape of `Profile::stage_means_ms`). Names sharing a
    /// [`StageId`] are summed, then folded into each stage's EWMA.
    ///
    /// Beyond the frame-path taxonomy of
    /// [`classify_stage`](crate::classify_stage), serve-shaped segments
    /// are understood too: `offload.attempt` counts as the hidden stack
    /// — but only when no `L[i] offload` stage is present, since in a
    /// demo-shaped segment the attempt is nested inside that stage and
    /// counting both would double it.
    pub fn absorb(&mut self, stage_means: &[(String, f64)]) {
        let has_offload_stage = stage_means
            .iter()
            .any(|(name, _)| classify_stage(name) == Some(StageId::HiddenLayers));
        let mut sums: [Option<f64>; 8] = [None; 8];
        for (name, ms) in stage_means {
            let stage = match classify_stage(name) {
                Some(stage) => stage,
                None if name == "offload.attempt" && !has_offload_stage => StageId::HiddenLayers,
                None => continue,
            };
            let slot = &mut sums[stage_index(stage)];
            *slot = Some(slot.unwrap_or(0.0) + ms);
        }
        let alpha = self.alpha();
        for (state, sum) in self.stages.iter_mut().zip(sums) {
            let Some(ms) = sum else { continue };
            state.ewma_ms = Some(match state.ewma_ms {
                Some(prev) => prev + alpha * (ms - prev),
                None => ms,
            });
        }
        self.segments += 1;
        // Self-calibration: freeze the post-warmup EWMA as the reference
        // for every stage that has one and lacks a reference. Stages
        // first observed later freeze on their first observation.
        if self.model.is_none() && self.segments >= self.config.warmup as u64 {
            for state in &mut self.stages {
                if state.reference_ms.is_none() {
                    state.reference_ms = state.ewma_ms;
                }
            }
        }
    }

    /// Segments absorbed so far.
    pub fn segments(&self) -> u64 {
        self.segments
    }

    /// Whether the reference is still being established (self-calibrating
    /// warmup prefix).
    pub fn calibrating(&self) -> bool {
        self.model.is_none() && self.segments < self.config.warmup as u64
    }

    /// The current drift state of every Table III stage.
    pub fn rows(&self) -> Vec<DriftRow> {
        StageId::ALL
            .into_iter()
            .enumerate()
            .map(|(i, stage)| {
                let state = self.stages[i];
                let drift = match (state.ewma_ms, state.reference_ms) {
                    (Some(ewma), Some(reference)) if reference > 0.0 => {
                        Some((ewma - reference) / reference)
                    }
                    _ => None,
                };
                DriftRow {
                    stage,
                    reference_ms: state.reference_ms,
                    ewma_ms: state.ewma_ms,
                    drift,
                    alerted: drift.is_some_and(|d| d.abs() > self.config.threshold),
                }
            })
            .collect()
    }

    /// Whether any stage currently exceeds the drift threshold.
    pub fn alerted(&self) -> bool {
        self.rows().iter().any(|row| row.alerted)
    }

    /// The windowed measured budget: each observed stage's EWMA, with
    /// `fallback` filling unobserved stages (the coverage-mask contract
    /// of [`measured_budget`](crate::measured_budget)).
    pub fn measured(&self, fallback: &StageBudget) -> StageBudget {
        let mut budget = *fallback;
        for (i, stage) in StageId::ALL.into_iter().enumerate() {
            if let Some(ms) = self.stages[i].ewma_ms {
                budget = budget.with(stage, ms);
            }
        }
        budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn segment(offload_ms: f64) -> Vec<(String, f64)> {
        vec![
            ("source".to_owned(), 2.0),
            ("L[0] conv".to_owned(), 5.0),
            ("L[1] offload".to_owned(), offload_ms),
            ("sink".to_owned(), 1.0),
        ]
    }

    #[test]
    fn steady_stream_never_alerts_and_tracks_the_mean() {
        let mut cal = RollingCalibrator::new(RollingConfig::default());
        assert!(cal.calibrating());
        for _ in 0..10 {
            cal.absorb(&segment(3.0));
        }
        assert!(!cal.calibrating());
        assert!(!cal.alerted());
        let rows = cal.rows();
        let hidden = rows
            .iter()
            .find(|r| r.stage == StageId::HiddenLayers)
            .unwrap();
        assert!((hidden.ewma_ms.unwrap() - 3.0).abs() < 1e-9);
        assert!(hidden.drift.unwrap().abs() < 1e-9);
        // Stages never observed carry no drift and never alert.
        let pool = rows.iter().find(|r| r.stage == StageId::MaxPool).unwrap();
        assert_eq!(pool.ewma_ms, None);
        assert!(!pool.alerted);
    }

    #[test]
    fn injected_slowdown_trips_the_alert_after_the_window_turns() {
        let config = RollingConfig {
            window: 4,
            warmup: 3,
            threshold: 0.5,
        };
        let mut cal = RollingCalibrator::new(config);
        for _ in 0..5 {
            cal.absorb(&segment(3.0));
        }
        assert!(!cal.alerted(), "steady prefix must not alert");
        // A 4x slowdown on the offload stage: the EWMA (alpha 0.4) crosses
        // +50% of the 3 ms reference within two slow segments.
        for _ in 0..4 {
            cal.absorb(&segment(12.0));
        }
        assert!(cal.alerted());
        let rows = cal.rows();
        let hidden = rows
            .iter()
            .find(|r| r.stage == StageId::HiddenLayers)
            .unwrap();
        assert!(hidden.alerted);
        assert!(hidden.drift.unwrap() > 0.5, "drift: {:?}", hidden.drift);
        // Unskewed stages stay quiet.
        assert!(!rows
            .iter()
            .any(|r| r.stage != StageId::HiddenLayers && r.alerted));
    }

    #[test]
    fn serve_shaped_segments_count_the_offload_attempt_once() {
        let mut cal = RollingCalibrator::new(RollingConfig::default());
        // Serve segments carry the attempt span only.
        cal.absorb(&[("offload.attempt".to_owned(), 4.0)]);
        let hidden = cal
            .rows()
            .into_iter()
            .find(|r| r.stage == StageId::HiddenLayers)
            .unwrap();
        assert_eq!(hidden.ewma_ms, Some(4.0));
        // Demo segments carry both the stage and its nested attempt: the
        // attempt must not be double counted.
        let mut cal = RollingCalibrator::new(RollingConfig::default());
        cal.absorb(&[
            ("L[1] offload".to_owned(), 4.0),
            ("offload.attempt".to_owned(), 3.5),
        ]);
        let hidden = cal
            .rows()
            .into_iter()
            .find(|r| r.stage == StageId::HiddenLayers)
            .unwrap();
        assert_eq!(hidden.ewma_ms, Some(4.0));
    }

    #[test]
    fn model_reference_diverges_immediately_when_measurements_disagree() {
        let model = StageBudget::paper_baseline().with(StageId::HiddenLayers, 3.0);
        let mut cal = RollingCalibrator::with_model(RollingConfig::default(), &model);
        assert!(!cal.calibrating(), "a model reference needs no warmup");
        cal.absorb(&segment(9.0));
        let hidden = cal
            .rows()
            .into_iter()
            .find(|r| r.stage == StageId::HiddenLayers)
            .unwrap();
        assert_eq!(hidden.reference_ms, Some(3.0));
        assert!((hidden.drift.unwrap() - 2.0).abs() < 1e-9);
        assert!(hidden.alerted);
    }

    #[test]
    fn measured_budget_mixes_ewma_with_fallback() {
        let mut cal = RollingCalibrator::new(RollingConfig::default());
        cal.absorb(&segment(3.0));
        let fallback = StageBudget::paper_baseline();
        let measured = cal.measured(&fallback);
        assert!((measured.get(StageId::HiddenLayers) - 3.0).abs() < 1e-9);
        assert_eq!(
            measured.get(StageId::MaxPool),
            fallback.get(StageId::MaxPool)
        );
    }
}
