//! Data generators for Tables I–III.

use crate::calib;
use crate::fabric::{fabric_hidden_ms, tincy_hidden_dims};
use crate::stages::{StageBudget, StageId};
use tincy_finn::engine::EngineConfig;
use tincy_nn::{LayerSpec, NetworkSpec};
use tincy_quant::PrecisionConfig;

/// One row of Table I: per-layer operations of Tiny vs Tincy YOLO.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Row {
    /// 1-based layer number (Tiny YOLO numbering).
    pub layer: usize,
    /// Layer type (`conv` / `pool`).
    pub kind: &'static str,
    /// Tiny YOLO operations per frame.
    pub tiny_ops: Option<u64>,
    /// Tincy YOLO operations per frame (`None` for removed layers).
    pub tincy_ops: Option<u64>,
}

/// Builds Table I by aligning the two layer stacks. Layers removed by
/// transformation (d) appear with `tincy_ops = None`, matching the paper's
/// "-" entry.
pub fn table1(tiny: &NetworkSpec, tincy: &NetworkSpec) -> Vec<Table1Row> {
    let tiny_ops = tiny.ops_per_layer();
    let tincy_ops = tincy.ops_per_layer();
    let mut rows = Vec::new();
    let mut j = 0usize;
    for (i, layer) in tiny.layers.iter().enumerate() {
        let kind = layer.kind();
        let matched = tincy
            .layers
            .get(j)
            .map(|l| l.kind() == kind)
            .unwrap_or(false);
        let tincy_entry = if matched {
            let ops = tincy_ops[j];
            j += 1;
            Some(ops)
        } else {
            None
        };
        rows.push(Table1Row {
            layer: i + 1,
            kind,
            tiny_ops: Some(tiny_ops[i]),
            tincy_ops: tincy_entry,
        });
    }
    rows
}

/// Σ row of Table I for one network.
pub fn table1_total(rows: &[Table1Row], tincy: bool) -> u64 {
    rows.iter()
        .filter_map(|r| if tincy { r.tincy_ops } else { r.tiny_ops })
        .sum()
}

/// One row of Table II: dot-product workloads of QNN applications.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Application name (MLP-4, CNV-6, Tincy YOLO).
    pub name: String,
    /// Reduced-precision dot-product ops per frame.
    pub reduced_ops: u64,
    /// Precision of the reduced part (e.g. `[W1A3]`).
    pub reduced_precision: String,
    /// 8-bit dot-product ops per frame.
    pub eight_bit_ops: u64,
}

impl Table2Row {
    /// Total dot-product ops.
    pub fn total(&self) -> u64 {
        self.reduced_ops + self.eight_bit_ops
    }
}

/// Builds Table II rows from named network specs.
pub fn table2(entries: &[(&str, &NetworkSpec)]) -> Vec<Table2Row> {
    entries
        .iter()
        .map(|(name, spec)| {
            let (reduced, eight_bit) = spec.dot_product_ops();
            let precision = spec
                .layers
                .iter()
                .find_map(|l| match l {
                    LayerSpec::Conv(c) if c.precision.offloadable() => {
                        Some(c.precision.to_string())
                    }
                    _ => None,
                })
                .unwrap_or_else(|| PrecisionConfig::W1A1.to_string());
            Table2Row {
                name: (*name).to_owned(),
                reduced_ops: reduced,
                reduced_precision: precision,
                eight_bit_ops: eight_bit,
            }
        })
        .collect()
}

/// One row of Table III plus the post-optimization column our model
/// derives.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Stage identity.
    pub stage: StageId,
    /// The paper's measured baseline (calibration input), ms.
    pub baseline_ms: f64,
    /// Modelled time after all §III-C/D/E measures (pre-pipelining), ms.
    pub optimized_ms: f64,
}

/// Builds Table III: the calibrated baseline next to the modelled
/// fully-optimized budget.
pub fn table3() -> Vec<Table3Row> {
    let baseline = StageBudget::paper_baseline();
    let fabric = fabric_hidden_ms(&tincy_hidden_dims(), EngineConfig::default(), 128);
    let optimized = baseline
        .with(StageId::HiddenLayers, fabric)
        .with(StageId::InputLayer, calib::LEAN_INPUT_CONV_MS)
        .with(StageId::MaxPool, 0.0);
    // Table III lists the frame path only; attribution-only stages
    // (`StageId::CpuKernel`) nest inside the hidden-layer row.
    StageId::FRAME_PATH
        .into_iter()
        .map(|stage| Table3Row {
            stage,
            baseline_ms: baseline.get(stage),
            optimized_ms: optimized.get(stage),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tincy_nn::{Activation, ConvSpec, PoolSpec};
    use tincy_tensor::Shape3;

    fn conv(filters: usize, size: usize, stride: usize, precision: PrecisionConfig) -> LayerSpec {
        LayerSpec::Conv(ConvSpec {
            filters,
            size,
            stride,
            pad: size / 2,
            activation: Activation::Relu,
            batch_normalize: true,
            precision,
        })
    }

    fn pool(size: usize, stride: usize) -> LayerSpec {
        LayerSpec::MaxPool(PoolSpec { size, stride })
    }

    #[test]
    fn alignment_marks_removed_pool() {
        let tiny = NetworkSpec::new(Shape3::new(3, 8, 8))
            .with(conv(4, 3, 1, PrecisionConfig::FLOAT))
            .with(pool(2, 2))
            .with(conv(8, 3, 1, PrecisionConfig::FLOAT));
        let tincy = NetworkSpec::new(Shape3::new(3, 8, 8))
            .with(conv(4, 3, 2, PrecisionConfig::FLOAT))
            .with(conv(8, 3, 1, PrecisionConfig::FLOAT));
        let rows = table1(&tiny, &tincy);
        assert_eq!(rows.len(), 3);
        assert!(rows[0].tincy_ops.is_some());
        assert_eq!(rows[1].kind, "pool");
        assert!(
            rows[1].tincy_ops.is_none(),
            "removed pool must show as None"
        );
        assert!(rows[2].tincy_ops.is_some());
        assert_eq!(table1_total(&rows, false), tiny.total_ops());
        assert_eq!(table1_total(&rows, true), tincy.total_ops());
    }

    #[test]
    fn table2_splits_by_precision() {
        let spec = NetworkSpec::new(Shape3::new(3, 8, 8))
            .with(conv(4, 3, 1, PrecisionConfig::W8A8))
            .with(conv(8, 3, 1, PrecisionConfig::W1A3));
        let rows = table2(&[("probe", &spec)]);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].reduced_precision, "[W1A3]");
        assert!(rows[0].reduced_ops > 0);
        assert!(rows[0].eight_bit_ops > 0);
        assert_eq!(rows[0].total(), spec.total_ops());
    }

    #[test]
    fn table3_baseline_matches_calibration_and_optimized_shrinks() {
        let rows = table3();
        let baseline_total: f64 = rows.iter().map(|r| r.baseline_ms).sum();
        assert_eq!(baseline_total, calib::TOTAL_MS);
        let optimized_total: f64 = rows.iter().map(|r| r.optimized_ms).sum();
        // §III-E: "more than 5 fps was at hand" => < 200 ms.
        assert!(optimized_total < 200.0, "optimized total {optimized_total}");
        for row in &rows {
            assert!(row.optimized_ms <= row.baseline_ms, "{:?}", row.stage);
        }
    }
}
