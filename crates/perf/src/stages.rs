//! The frame-time stage budget (Table III) and its transformations.

use crate::calib;

/// The processing stages of one video frame (Table III rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StageId {
    /// Camera read + internal scaling.
    Acquisition,
    /// First convolutional layer.
    InputLayer,
    /// First max-pool layer.
    MaxPool,
    /// All hidden layers.
    HiddenLayers,
    /// Output (detection head) layer.
    OutputLayer,
    /// Object boxing.
    BoxDrawing,
    /// Frame drawing / display.
    ImageOutput,
    /// Packed CPU fallback kernels (`cpu.kernel.*` spans). Attribution
    /// only: these spans nest inside the hidden-layer / offload time, so
    /// the stage is excluded from frame-path totals to avoid counting the
    /// same milliseconds twice.
    CpuKernel,
}

impl StageId {
    /// Every stage the taxonomy can attribute time to: the frame path in
    /// pipeline order, then attribution-only stages.
    pub const ALL: [StageId; 8] = [
        StageId::Acquisition,
        StageId::InputLayer,
        StageId::MaxPool,
        StageId::HiddenLayers,
        StageId::OutputLayer,
        StageId::BoxDrawing,
        StageId::ImageOutput,
        StageId::CpuKernel,
    ];

    /// The stages a frame passes through exactly once (the Table III
    /// rows). Totals, frame rates and bottlenecks are computed over this
    /// subset.
    pub const FRAME_PATH: [StageId; 7] = [
        StageId::Acquisition,
        StageId::InputLayer,
        StageId::MaxPool,
        StageId::HiddenLayers,
        StageId::OutputLayer,
        StageId::BoxDrawing,
        StageId::ImageOutput,
    ];

    /// The Table III row label.
    pub fn label(&self) -> &'static str {
        match self {
            StageId::Acquisition => "Image Acquisition",
            StageId::InputLayer => "Input Layer",
            StageId::MaxPool => "Max Pool",
            StageId::HiddenLayers => "Hidden Layers",
            StageId::OutputLayer => "Output Layer",
            StageId::BoxDrawing => "Box Drawing",
            StageId::ImageOutput => "Image Output",
            StageId::CpuKernel => "CPU Kernels",
        }
    }
}

/// Per-stage frame-time budget in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageBudget {
    times: [f64; 8],
}

impl StageBudget {
    /// The calibrated generic-Darknet baseline (Table III). The baseline
    /// never ran packed kernels, so the attribution-only `CpuKernel` stage
    /// is zero.
    pub fn paper_baseline() -> Self {
        Self {
            times: [
                calib::ACQUISITION_MS,
                calib::INPUT_LAYER_MS,
                calib::MAX_POOL_MS,
                calib::HIDDEN_LAYERS_MS,
                calib::OUTPUT_LAYER_MS,
                calib::BOX_DRAWING_MS,
                calib::IMAGE_OUTPUT_MS,
                0.0,
            ],
        }
    }

    /// A budget calibrated from traced stage means — the inverse of
    /// [`crate::observed::model_diff`]. `observed` holds `(stage name,
    /// mean ms)` pairs as produced by a trace profile's stage summary
    /// (`Profile::stage_means_ms`); names sharing a [`StageId`] are
    /// summed, and stages without observations keep the paper baseline.
    /// Use [`crate::observed::measured_budget`] directly to learn which
    /// stages were covered.
    pub fn from_observed(observed: &[(String, f64)]) -> Self {
        crate::observed::measured_budget(observed, &Self::paper_baseline()).0
    }

    /// Time of one stage in ms.
    pub fn get(&self, stage: StageId) -> f64 {
        self.times[Self::index(stage)]
    }

    /// Returns a budget with one stage replaced.
    #[must_use]
    pub fn with(&self, stage: StageId, ms: f64) -> Self {
        let mut out = *self;
        out.times[Self::index(stage)] = ms;
        out
    }

    /// Returns a budget with one stage scaled by `1/speedup`.
    #[must_use]
    pub fn sped_up(&self, stage: StageId, speedup: f64) -> Self {
        self.with(stage, self.get(stage) / speedup)
    }

    /// Total sequential frame time in ms (frame-path stages only;
    /// attribution-only stages like [`StageId::CpuKernel`] nest inside
    /// them and would double-count).
    pub fn total_ms(&self) -> f64 {
        StageId::FRAME_PATH.iter().map(|&s| self.get(s)).sum()
    }

    /// Sequential frame rate.
    pub fn sequential_fps(&self) -> f64 {
        1000.0 / self.total_ms()
    }

    /// The slowest frame-path stage (the pipelined throughput bound).
    pub fn bottleneck(&self) -> (StageId, f64) {
        let mut best = (StageId::Acquisition, f64::NEG_INFINITY);
        for stage in StageId::FRAME_PATH {
            let t = self.get(stage);
            if t > best.1 {
                best = (stage, t);
            }
        }
        best
    }

    /// Iterates `(stage, ms)` over the frame path in pipeline order.
    pub fn iter(&self) -> impl Iterator<Item = (StageId, f64)> + '_ {
        StageId::FRAME_PATH.into_iter().map(|s| (s, self.get(s)))
    }

    fn index(stage: StageId) -> usize {
        StageId::ALL
            .iter()
            .position(|&s| s == stage)
            .expect("stage is in ALL")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table_three() {
        let b = StageBudget::paper_baseline();
        assert_eq!(b.total_ms(), calib::TOTAL_MS);
        assert_eq!(b.get(StageId::HiddenLayers), 9160.0);
        assert!((b.sequential_fps() - 0.0997).abs() < 0.001);
    }

    #[test]
    fn bottleneck_is_hidden_layers_at_baseline() {
        let (stage, ms) = StageBudget::paper_baseline().bottleneck();
        assert_eq!(stage, StageId::HiddenLayers);
        assert_eq!(ms, 9160.0);
    }

    #[test]
    fn transformations_compose() {
        let b = StageBudget::paper_baseline()
            .with(StageId::HiddenLayers, 30.0)
            .sped_up(StageId::InputLayer, 2.0);
        assert_eq!(b.get(StageId::HiddenLayers), 30.0);
        assert_eq!(b.get(StageId::InputLayer), 310.0);
        // Untouched stages unchanged.
        assert_eq!(b.get(StageId::Acquisition), 40.0);
    }

    #[test]
    fn cpu_kernel_stage_is_attribution_only() {
        let b = StageBudget::paper_baseline().with(StageId::CpuKernel, 99_999.0);
        // The packed-kernel time nests inside the hidden-layer time, so it
        // must not inflate totals or claim the bottleneck.
        assert_eq!(b.total_ms(), calib::TOTAL_MS);
        assert_eq!(b.bottleneck().0, StageId::HiddenLayers);
        assert_eq!(b.get(StageId::CpuKernel), 99_999.0);
        assert_eq!(b.iter().count(), StageId::FRAME_PATH.len());
    }

    #[test]
    fn offload_makes_input_layer_the_bottleneck() {
        // §III-C: after offloading the hidden layers, "it is the input
        // layer which now defines the bottleneck".
        let b = StageBudget::paper_baseline().with(StageId::HiddenLayers, 30.0);
        assert_eq!(b.bottleneck().0, StageId::InputLayer);
    }
}
