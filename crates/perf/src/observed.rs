//! Modeled-vs-observed stage comparison.
//!
//! The stage budget of [`crate::stages`] predicts per-frame stage times
//! (Table III); a traced run measures them. This module folds observed
//! per-stage means (as produced by a trace profile) onto the Table III
//! stage taxonomy and diffs them against a [`StageBudget`], flagging
//! stages whose observed time deviates from the model by more than a
//! caller-chosen threshold.
//!
//! The mapping from pipeline stage names to [`StageId`] follows the demo
//! pipeline layout (Fig 5): `source`/`letterbox` are acquisition, `L[0]`
//! is the input layer, standalone pools are the max-pool row, the offload
//! stage is the hidden stack, later convs and the region head are the
//! output layer, `object boxing` is box drawing, and `frame drawing`/
//! `sink` are image output.

use crate::stages::{StageBudget, StageId};

/// One row of the modeled-vs-observed table.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelDiffRow {
    /// The Table III stage.
    pub stage: StageId,
    /// Modeled per-frame time in ms.
    pub modeled_ms: f64,
    /// Observed per-frame time in ms (`None` when the trace carried no
    /// samples for this stage).
    pub observed_ms: Option<f64>,
    /// `observed / modeled` (`None` without an observation).
    pub ratio: Option<f64>,
    /// Whether the deviation exceeds the threshold.
    pub flagged: bool,
}

impl ModelDiffRow {
    /// Signed relative deviation `(observed - modeled) / modeled`.
    pub fn deviation(&self) -> Option<f64> {
        self.ratio.map(|r| r - 1.0)
    }
}

/// Classifies one pipeline stage name onto the Table III taxonomy.
/// Returns `None` for names outside the frame path (trace-internal
/// labels such as `slot.deposit` or `gemm.scalar`).
pub fn classify_stage(name: &str) -> Option<StageId> {
    match name {
        "source" | "letterbox" => return Some(StageId::Acquisition),
        "object boxing" => return Some(StageId::BoxDrawing),
        "frame drawing" | "sink" => return Some(StageId::ImageOutput),
        _ => {}
    }
    // Packed fallback kernels: `cpu.kernel.<variant>` spans (plus the
    // quantized `cpu.kernel.q8`). Attribution-only — they nest inside the
    // hidden-layer / offload time.
    if name.starts_with("cpu.kernel") {
        return Some(StageId::CpuKernel);
    }
    // Network layer stages are named "L[i] kind".
    let rest = name.strip_prefix("L[")?;
    let close = rest.find(']')?;
    let index: usize = rest[..close].parse().ok()?;
    let kind = rest[close + 1..].trim();
    match kind {
        "offload" => Some(StageId::HiddenLayers),
        "pool" => Some(StageId::MaxPool),
        "region" => Some(StageId::OutputLayer),
        "conv" => Some(if index == 0 {
            StageId::InputLayer
        } else {
            StageId::OutputLayer
        }),
        _ => None,
    }
}

/// Diffs observed per-stage means against a stage budget.
///
/// `observed` holds `(stage name, mean ms)` pairs — the shape produced by
/// a trace profile's stage summary. Stage names sharing a [`StageId`]
/// (e.g. `source` and `letterbox`) are summed before comparison, since
/// the budget models them as one row. `threshold` is the relative
/// deviation above which a row is flagged (`0.25` = flag stages off by
/// more than 25%); rows with no observation are never flagged.
pub fn model_diff(
    budget: &StageBudget,
    observed: &[(String, f64)],
    threshold: f64,
) -> Vec<ModelDiffRow> {
    let mut sums: [Option<f64>; 8] = [None; 8];
    for (name, ms) in observed {
        if let Some(stage) = classify_stage(name) {
            let slot = &mut sums[stage_index(stage)];
            *slot = Some(slot.unwrap_or(0.0) + ms);
        }
    }
    StageId::ALL
        .into_iter()
        .map(|stage| {
            let modeled_ms = budget.get(stage);
            let observed_ms = sums[stage_index(stage)];
            let ratio = observed_ms.and_then(|o| {
                if modeled_ms > 0.0 {
                    Some(o / modeled_ms)
                } else {
                    None
                }
            });
            let flagged = ratio.is_some_and(|r| (r - 1.0).abs() > threshold);
            ModelDiffRow {
                stage,
                modeled_ms,
                observed_ms,
                ratio,
                flagged,
            }
        })
        .collect()
}

/// The inverse of [`model_diff`]: folds observed per-stage means onto
/// the Table III taxonomy and builds a *measured* budget from them.
/// Stages the trace carried no samples for keep their `fallback` time —
/// the returned mask records which stages were actually observed.
/// `model_diff(&budget, observed, ..)` on the result reports a ratio of
/// 1 for every observed stage, which is what `tincy calibrate` asserts.
pub fn measured_budget(
    observed: &[(String, f64)],
    fallback: &StageBudget,
) -> (StageBudget, [bool; 8]) {
    let mut sums: [Option<f64>; 8] = [None; 8];
    for (name, ms) in observed {
        if let Some(stage) = classify_stage(name) {
            let slot = &mut sums[stage_index(stage)];
            *slot = Some(slot.unwrap_or(0.0) + ms);
        }
    }
    let mut budget = *fallback;
    let mut covered = [false; 8];
    for (i, stage) in StageId::ALL.into_iter().enumerate() {
        if let Some(ms) = sums[i] {
            budget = budget.with(stage, ms);
            covered[i] = true;
        }
    }
    (budget, covered)
}

pub(crate) fn stage_index(stage: StageId) -> usize {
    StageId::ALL
        .iter()
        .position(|&s| s == stage)
        .expect("stage is in ALL")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_stage_names_classify_onto_table_three() {
        assert_eq!(classify_stage("source"), Some(StageId::Acquisition));
        assert_eq!(classify_stage("letterbox"), Some(StageId::Acquisition));
        assert_eq!(classify_stage("L[0] conv"), Some(StageId::InputLayer));
        assert_eq!(classify_stage("L[1] offload"), Some(StageId::HiddenLayers));
        assert_eq!(classify_stage("L[2] conv"), Some(StageId::OutputLayer));
        assert_eq!(classify_stage("L[3] region"), Some(StageId::OutputLayer));
        assert_eq!(classify_stage("L[1] pool"), Some(StageId::MaxPool));
        assert_eq!(classify_stage("object boxing"), Some(StageId::BoxDrawing));
        assert_eq!(classify_stage("frame drawing"), Some(StageId::ImageOutput));
        assert_eq!(classify_stage("sink"), Some(StageId::ImageOutput));
        assert_eq!(classify_stage("slot.deposit"), None);
        assert_eq!(classify_stage("gemm.scalar"), None);
        assert_eq!(classify_stage("L[x] conv"), None);
        assert_eq!(
            classify_stage("cpu.kernel.unrolled4"),
            Some(StageId::CpuKernel)
        );
        assert_eq!(classify_stage("cpu.kernel.q8"), Some(StageId::CpuKernel));
    }

    #[test]
    fn diff_sums_shared_stages_and_flags_deviations() {
        let budget = StageBudget::paper_baseline()
            .with(StageId::Acquisition, 10.0)
            .with(StageId::InputLayer, 100.0);
        let observed = vec![
            ("source".to_owned(), 10.0),
            ("letterbox".to_owned(), 5.0),
            ("L[0] conv".to_owned(), 101.0),
            ("gemm.scalar".to_owned(), 50.0), // outside the frame path
        ];
        let rows = model_diff(&budget, &observed, 0.25);
        assert_eq!(rows.len(), 8);

        let acq = &rows[0];
        assert_eq!(acq.stage, StageId::Acquisition);
        assert_eq!(acq.observed_ms, Some(15.0), "source + letterbox sum");
        assert!(acq.flagged, "+50% exceeds the 25% threshold");
        assert!((acq.deviation().unwrap() - 0.5).abs() < 1e-12);
        let input = &rows[1];
        assert_eq!(input.stage, StageId::InputLayer);
        assert_eq!(input.observed_ms, Some(101.0));
        assert!(!input.flagged, "1% off is inside the threshold");
        // Stages without observations are present but never flagged.
        let hidden = &rows[3];
        assert_eq!(hidden.stage, StageId::HiddenLayers);
        assert_eq!(hidden.observed_ms, None);
        assert!(!hidden.flagged);
    }

    #[test]
    fn measured_budget_round_trips_through_model_diff() {
        // A calibrated budget diffed against the very observations that
        // produced it must report ratio 1 on every covered stage.
        let observed = vec![
            ("source".to_owned(), 3.0),
            ("letterbox".to_owned(), 1.5),
            ("L[0] conv".to_owned(), 12.0),
            ("L[1] offload".to_owned(), 7.25),
            ("L[1] pool".to_owned(), 0.5),
            ("L[2] conv".to_owned(), 4.0),
            ("L[3] region".to_owned(), 2.0),
            ("object boxing".to_owned(), 0.75),
            ("sink".to_owned(), 1.25),
            ("cpu.kernel.blocked".to_owned(), 6.5),
            ("slot.deposit".to_owned(), 99.0), // ignored: off the frame path
        ];
        let (budget, covered) = measured_budget(&observed, &StageBudget::paper_baseline());
        assert_eq!(covered, [true; 8]);
        assert!((budget.get(StageId::CpuKernel) - 6.5).abs() < 1e-12);
        assert_eq!(budget, StageBudget::from_observed(&observed));
        assert!((budget.get(StageId::Acquisition) - 4.5).abs() < 1e-12);
        assert!((budget.get(StageId::OutputLayer) - 6.0).abs() < 1e-12);
        for row in model_diff(&budget, &observed, 0.01) {
            let ratio = row.ratio.expect("every stage was observed");
            assert!(
                (ratio - 1.0).abs() < 1e-9,
                "{}: ratio {ratio}",
                row.stage.label()
            );
            assert!(!row.flagged);
        }
    }

    #[test]
    fn uncovered_stages_keep_the_fallback_budget() {
        let observed = vec![("L[1] offload".to_owned(), 8.0)];
        let (budget, covered) = measured_budget(&observed, &StageBudget::paper_baseline());
        assert_eq!(covered.iter().filter(|&&c| c).count(), 1);
        assert_eq!(budget.get(StageId::HiddenLayers), 8.0);
        assert_eq!(
            budget.get(StageId::Acquisition),
            StageBudget::paper_baseline().get(StageId::Acquisition)
        );
    }
}
