//! Fabric offload timing derived from the FINN cycle model (§III-C).

use tincy_finn::engine::{conv_layer_cycles, EngineConfig};
use tincy_tensor::{ConvGeom, Shape3};

/// Dimensions of one offloaded conv layer (weights not needed for timing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HiddenConvDims {
    /// Input feature-map shape.
    pub in_shape: Shape3,
    /// Output channels.
    pub out_channels: usize,
    /// Convolution geometry.
    pub geom: ConvGeom,
}

impl HiddenConvDims {
    /// Binary weight bits of this layer.
    pub fn weight_bits(&self) -> u64 {
        (self.out_channels * self.geom.dot_length(self.in_shape.channels)) as u64
    }
}

/// Predicts the accelerator time for a hidden-layer stack on one
/// time-multiplexed engine, including the weight-swap AXI traffic.
///
/// With the default 16×16 engine at 300 MHz this reproduces the paper's
/// ≈30 ms for Tincy YOLO's hidden layers.
pub fn fabric_hidden_ms(
    layers: &[HiddenConvDims],
    config: EngineConfig,
    axi_bits_per_cycle: u64,
) -> f64 {
    let compute: u64 = layers
        .iter()
        .map(|l| conv_layer_cycles(l.in_shape, l.out_channels, l.geom, config))
        .sum();
    let swap: u64 = layers
        .iter()
        .map(|l| l.weight_bits().div_ceil(axi_bits_per_cycle))
        .sum();
    (compute + swap) as f64 / config.clock_hz as f64 * 1000.0
}

/// The hidden conv layers of Tincy YOLO (L3–L14 of Table I).
pub fn tincy_hidden_dims() -> Vec<HiddenConvDims> {
    let conv = |c, hw, oc| HiddenConvDims {
        in_shape: Shape3::new(c, hw, hw),
        out_channels: oc,
        geom: ConvGeom::same(3, 1),
    };
    vec![
        conv(16, 208, 64),
        conv(64, 104, 64),
        conv(64, 52, 128),
        conv(128, 26, 256),
        conv(256, 13, 512),
        conv(512, 13, 512),
        conv(512, 13, 512),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tincy_hidden_time_reproduces_thirty_ms() {
        let ms = fabric_hidden_ms(&tincy_hidden_dims(), EngineConfig::default(), 128);
        // §III-C: "it reduces the processing time of all hidden layers
        // together to 30 ms".
        assert!((25.0..35.0).contains(&ms), "modelled hidden time {ms} ms");
    }

    #[test]
    fn stage_speedup_is_about_three_hundred_x() {
        let ms = fabric_hidden_ms(&tincy_hidden_dims(), EngineConfig::default(), 128);
        let speedup = crate::calib::HIDDEN_LAYERS_MS / ms;
        // §III-C: "a speedup of more than 300x for this particular stage".
        assert!(speedup > 300.0, "stage speedup {speedup}");
    }

    #[test]
    fn bigger_engine_is_faster() {
        let small = EngineConfig {
            pe: 8,
            simd: 8,
            ..Default::default()
        };
        let big = EngineConfig {
            pe: 32,
            simd: 32,
            ..Default::default()
        };
        let dims = tincy_hidden_dims();
        assert!(fabric_hidden_ms(&dims, big, 128) < fabric_hidden_ms(&dims, small, 128));
    }

    #[test]
    fn weight_bits_match_topology() {
        let dims = tincy_hidden_dims();
        let total: u64 = dims.iter().map(HiddenConvDims::weight_bits).sum();
        // 9216 + 36864 + 73728 + 294912 + 1179648 + 2359296 + 2359296
        assert_eq!(total, 6_312_960);
    }
}
