//! The paper's speedup ladder (§III narrative, summarized in §IV).

use crate::calib;
use crate::fabric::{fabric_hidden_ms, tincy_hidden_dims};
use crate::pipeline_model::{pipelined_fps, PipelineModel};
use crate::stages::{StageBudget, StageId};
use tincy_finn::engine::EngineConfig;

/// One rung of the speedup ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct LadderStep {
    /// Optimization name.
    pub name: &'static str,
    /// Paper section the step comes from.
    pub section: &'static str,
    /// Modelled frame time (sequential stages; ms).
    pub frame_ms: f64,
    /// Modelled frame rate (fps; pipelined for the final step).
    pub fps: f64,
    /// The paper's reported rate at this point, if stated.
    pub paper_fps: Option<f64>,
}

/// Builds the full ladder from the calibrated baseline, applying each §III
/// measure in order. The fabric time comes from the FINN cycle model; the
/// NEON steps use the paper's measured kernel times (our Rust kernels
/// cross-check the *ratios* in `tincy-bench`).
pub fn speedup_ladder() -> Vec<LadderStep> {
    let mut steps = Vec::new();
    let baseline = StageBudget::paper_baseline();
    steps.push(LadderStep {
        name: "generic Darknet inference (float, scalar)",
        section: "III-C",
        frame_ms: baseline.total_ms(),
        fps: baseline.sequential_fps(),
        paper_fps: Some(0.1),
    });

    // §III-C: offload all hidden layers to the QNN accelerator.
    let fabric_ms = fabric_hidden_ms(&tincy_hidden_dims(), EngineConfig::default(), 128);
    let offloaded = baseline.with(StageId::HiddenLayers, fabric_ms);
    steps.push(LadderStep {
        name: "+ FINN QNN accelerator for all hidden layers",
        section: "III-C",
        frame_ms: offloaded.total_ms(),
        fps: offloaded.sequential_fps(),
        paper_fps: Some(1.0),
    });

    // §III-D: gemmlowp input layer (2.2x on the input stage).
    let lowp = offloaded.sped_up(StageId::InputLayer, calib::GEMMLOWP_SPEEDUP);
    steps.push(LadderStep {
        name: "+ gemmlowp 8-bit input layer (2.2x)",
        section: "III-D",
        frame_ms: lowp.total_ms(),
        fps: lowp.sequential_fps(),
        paper_fps: None,
    });

    // §III-D: the fully customized 16x27 kernel with 16-bit accumulators.
    let custom = offloaded.with(StageId::InputLayer, calib::CUSTOM_I16_MS);
    steps.push(LadderStep {
        name: "+ custom 16x27 NEON kernel, i16 accumulators (620 -> 120 ms)",
        section: "III-D",
        frame_ms: custom.total_ms(),
        fps: custom.sequential_fps(),
        paper_fps: Some(2.5),
    });

    // §III-E: transformation (d) replaces input conv + max pool with one
    // lean stride-2 convolution.
    let lean = custom
        .with(StageId::InputLayer, calib::LEAN_INPUT_CONV_MS)
        .with(StageId::MaxPool, 0.0);
    steps.push(LadderStep {
        name: "+ algorithmic simplification (d): lean 35 ms input conv",
        section: "III-E",
        frame_ms: lean.total_ms(),
        fps: lean.sequential_fps(),
        paper_fps: Some(5.0),
    });

    // §III-F: pipelined demo mode over four cores.
    let fps = pipelined_fps(&lean, PipelineModel::default());
    steps.push(LadderStep {
        name: "+ pipelined demo mode (4 worker threads)",
        section: "III-F",
        frame_ms: 1000.0 / fps,
        fps,
        paper_fps: Some(calib::PIPELINED_FPS),
    });

    steps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_monotonically_faster() {
        let steps = speedup_ladder();
        for pair in steps.windows(2) {
            assert!(
                pair[1].fps > pair[0].fps,
                "{} ({} fps) not faster than {} ({} fps)",
                pair[1].name,
                pair[1].fps,
                pair[0].name,
                pair[0].fps
            );
        }
    }

    #[test]
    fn every_paper_milestone_is_within_shape() {
        for step in speedup_ladder() {
            if let Some(paper) = step.paper_fps {
                let ratio = step.fps / paper;
                assert!(
                    (0.65..1.6).contains(&ratio),
                    "{}: modelled {:.2} fps vs paper {:.2} fps (ratio {ratio:.2})",
                    step.name,
                    step.fps,
                    paper
                );
            }
        }
    }

    #[test]
    fn overall_speedup_matches_the_160x_claim() {
        let steps = speedup_ladder();
        let overall = steps.last().unwrap().fps / steps.first().unwrap().fps;
        assert!(
            (120.0..200.0).contains(&overall),
            "overall modelled speedup {overall:.0}x vs paper's 160x"
        );
    }

    #[test]
    fn offload_step_yields_eleven_x_net() {
        // §III-C: "the net effect reduces to an 11x speedup".
        let steps = speedup_ladder();
        let net = steps[1].fps / steps[0].fps;
        assert!((9.0..13.0).contains(&net), "net offload speedup {net:.1}x");
    }
}
