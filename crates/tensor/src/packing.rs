//! Bit-packed containers for aggressively quantized data (§I, §III-A).
//!
//! Tincy YOLO's hidden layers use *binary* weights (−1/+1) and *3-bit*
//! feature-map values. On the accelerator both are processed as packed bit
//! vectors: a binary weight row is one bitmask (bit set ⇔ weight +1), and a
//! 3-bit activation vector is decomposed into three bitplanes so that the
//! signed dot product reduces to XNOR-popcount arithmetic per plane.

use crate::TensorError;

const WORD_BITS: usize = 64;

/// A 2-D bit matrix with 64-bit word-aligned rows.
///
/// Bit `(r, c)` set means the binary weight at that position is **+1**;
/// clear means **−1**. Rows are padded with zero bits to a word boundary so
/// that popcount kernels can operate on whole words; the padding never
/// contributes because activation planes carry matching zero padding.
///
/// # Example
///
/// ```
/// use tincy_tensor::BitTensor;
///
/// let mut w = BitTensor::zeros(2, 70);
/// w.set(1, 69, true);
/// assert!(w.get(1, 69));
/// assert_eq!(w.row_words(1).len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitTensor {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    data: Vec<u64>,
}

impl BitTensor {
    /// Creates an all-clear bit matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let words_per_row = cols.div_ceil(WORD_BITS).max(1);
        Self {
            rows,
            cols,
            words_per_row,
            data: vec![0; rows * words_per_row],
        }
    }

    /// Builds a bit matrix from signed weights: positive ⇒ bit set.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `signs.len() != rows*cols`.
    pub fn from_signs(rows: usize, cols: usize, signs: &[i8]) -> Result<Self, TensorError> {
        if signs.len() != rows * cols {
            return Err(TensorError::LengthMismatch {
                expected: rows * cols,
                actual: signs.len(),
            });
        }
        let mut out = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                if signs[r * cols + c] > 0 {
                    out.set(r, c, true);
                }
            }
        }
        Ok(out)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of (logical) columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of 64-bit words backing each row.
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// Reads bit `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> bool {
        assert!(
            r < self.rows && c < self.cols,
            "bit index ({r},{c}) out of bounds"
        );
        let word = self.data[r * self.words_per_row + c / WORD_BITS];
        word >> (c % WORD_BITS) & 1 == 1
    }

    /// Writes bit `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, value: bool) {
        assert!(
            r < self.rows && c < self.cols,
            "bit index ({r},{c}) out of bounds"
        );
        let word = &mut self.data[r * self.words_per_row + c / WORD_BITS];
        let mask = 1u64 << (c % WORD_BITS);
        if value {
            *word |= mask;
        } else {
            *word &= !mask;
        }
    }

    /// The packed words of one row.
    pub fn row_words(&self, r: usize) -> &[u64] {
        &self.data[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    /// The signed weight at `(r, c)`: `+1` if the bit is set, else `-1`.
    #[inline]
    pub fn sign(&self, r: usize, c: usize) -> i32 {
        if self.get(r, c) {
            1
        } else {
            -1
        }
    }

    /// Number of set bits in a row.
    pub fn row_count_ones(&self, r: usize) -> u32 {
        self.row_words(r).iter().map(|w| w.count_ones()).sum()
    }

    /// Memory footprint of the packed representation in bytes.
    pub fn packed_bytes(&self) -> usize {
        self.data.len() * 8
    }
}

/// A vector of 3-bit unsigned values stored as three bitplanes.
///
/// Value `v ∈ 0..8` at index `i` satisfies
/// `v = Σ_p 2^p · plane_p[i]`. Planes are zero-padded to 64-bit words so
/// the accelerator's popcount kernels can consume them wholesale.
///
/// # Example
///
/// ```
/// use tincy_tensor::U3Tensor;
///
/// let t = U3Tensor::from_values(&[0, 7, 5, 2])?;
/// assert_eq!(t.get(2), 5);
/// assert_eq!(t.to_values(), vec![0, 7, 5, 2]);
/// # Ok::<(), tincy_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct U3Tensor {
    len: usize,
    planes: [Vec<u64>; 3],
}

impl U3Tensor {
    /// Maximum representable value (3 bits).
    pub const MAX: u8 = 7;

    /// Creates an all-zero vector of `len` elements.
    pub fn zeros(len: usize) -> Self {
        let words = len.div_ceil(WORD_BITS).max(1);
        Self {
            len,
            planes: [vec![0; words], vec![0; words], vec![0; words]],
        }
    }

    /// Packs a slice of values.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidShape`] if any value exceeds
    /// [`U3Tensor::MAX`].
    pub fn from_values(values: &[u8]) -> Result<Self, TensorError> {
        let mut out = Self::zeros(values.len());
        for (i, &v) in values.iter().enumerate() {
            if v > Self::MAX {
                return Err(TensorError::InvalidShape {
                    what: format!("value {v} at index {i} exceeds 3-bit range"),
                });
            }
            out.set(i, v);
        }
        Ok(out)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads the value at `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> u8 {
        assert!(
            i < self.len,
            "index {i} out of bounds for length {}",
            self.len
        );
        let word = i / WORD_BITS;
        let bit = i % WORD_BITS;
        let mut v = 0u8;
        for (p, plane) in self.planes.iter().enumerate() {
            v |= (((plane[word] >> bit) & 1) as u8) << p;
        }
        v
    }

    /// Writes the value at `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len` or `value > 7`.
    #[inline]
    pub fn set(&mut self, i: usize, value: u8) {
        assert!(
            i < self.len,
            "index {i} out of bounds for length {}",
            self.len
        );
        assert!(value <= Self::MAX, "value {value} exceeds 3-bit range");
        let word = i / WORD_BITS;
        let bit = i % WORD_BITS;
        for (p, plane) in self.planes.iter_mut().enumerate() {
            let mask = 1u64 << bit;
            if value >> p & 1 == 1 {
                plane[word] |= mask;
            } else {
                plane[word] &= !mask;
            }
        }
    }

    /// The packed words of bitplane `p` (0 = LSB).
    ///
    /// # Panics
    ///
    /// Panics if `p >= 3`.
    pub fn plane_words(&self, p: usize) -> &[u64] {
        &self.planes[p]
    }

    /// Unpacks into a plain byte vector.
    pub fn to_values(&self) -> Vec<u8> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Memory footprint of the packed representation in bytes.
    pub fn packed_bytes(&self) -> usize {
        self.planes.iter().map(|p| p.len() * 8).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_tensor_set_get_round_trip() {
        let mut t = BitTensor::zeros(3, 130);
        t.set(2, 129, true);
        t.set(0, 0, true);
        assert!(t.get(2, 129));
        assert!(t.get(0, 0));
        assert!(!t.get(1, 64));
        t.set(2, 129, false);
        assert!(!t.get(2, 129));
    }

    #[test]
    fn bit_tensor_rows_word_aligned() {
        let t = BitTensor::zeros(2, 65);
        assert_eq!(t.words_per_row(), 2);
        assert_eq!(t.row_words(1).len(), 2);
        assert_eq!(t.packed_bytes(), 32);
    }

    #[test]
    fn from_signs_maps_positive_to_set() {
        let t = BitTensor::from_signs(2, 3, &[1, -1, 1, -1, -1, 1]).unwrap();
        assert_eq!(t.sign(0, 0), 1);
        assert_eq!(t.sign(0, 1), -1);
        assert_eq!(t.sign(1, 2), 1);
        assert_eq!(t.row_count_ones(0), 2);
        assert_eq!(t.row_count_ones(1), 1);
    }

    #[test]
    fn from_signs_validates_length() {
        assert!(BitTensor::from_signs(2, 3, &[1; 5]).is_err());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bit_tensor_oob_panics() {
        let t = BitTensor::zeros(1, 8);
        t.get(0, 8);
    }

    #[test]
    fn u3_round_trip_all_values() {
        let values: Vec<u8> = (0..200).map(|i| (i % 8) as u8).collect();
        let t = U3Tensor::from_values(&values).unwrap();
        assert_eq!(t.to_values(), values);
    }

    #[test]
    fn u3_rejects_out_of_range() {
        assert!(U3Tensor::from_values(&[8]).is_err());
    }

    #[test]
    fn u3_planes_decompose_value() {
        let t = U3Tensor::from_values(&[5]).unwrap(); // 0b101
        assert_eq!(t.plane_words(0)[0] & 1, 1);
        assert_eq!(t.plane_words(1)[0] & 1, 0);
        assert_eq!(t.plane_words(2)[0] & 1, 1);
    }

    #[test]
    fn u3_overwrite_clears_old_bits() {
        let mut t = U3Tensor::zeros(4);
        t.set(1, 7);
        t.set(1, 2);
        assert_eq!(t.get(1), 2);
    }

    #[test]
    fn u3_packing_is_three_eighths_of_byte_storage() {
        // 3-bit packing is the memory reduction quantization buys (§I).
        let t = U3Tensor::zeros(64 * 100);
        assert_eq!(t.packed_bytes(), 3 * 100 * 8);
    }
}
