//! The `im2col` lowering of convolution to matrix multiplication (§I).
//!
//! The multiplicand matrix has one *column* per kernel application footprint
//! and one *row* per footprint element: its shape is `(K²·C) × (H_out·W_out)`.
//! With a small kernel at stride one the footprints overlap and the lowering
//! inflates the input volume by roughly `K²` — the memory cost that motivates
//! the fused, sliced implementation of §III-D, provided here as
//! [`Im2colSlices`].

use crate::{ConvGeom, Mat, Shape3, Tensor, TensorError};

/// Shape `(rows, cols)` of the `im2col` multiplicand for `input` and `geom`.
pub fn im2col_shape(input: Shape3, geom: ConvGeom) -> (usize, usize) {
    let out_h = geom.output_extent(input.height);
    let out_w = geom.output_extent(input.width);
    (geom.dot_length(input.channels), out_h * out_w)
}

/// Builds the explicit `im2col` multiplicand matrix.
///
/// Row order is channel-major, then kernel row, then kernel column, matching
/// the linearization used for the weight matrix rows.
///
/// # Errors
///
/// Returns [`TensorError::IncompatibleGeometry`] if `geom` cannot be applied
/// to the input shape.
///
/// # Example
///
/// ```
/// use tincy_tensor::{im2col, ConvGeom, Shape3, Tensor};
///
/// let input = Tensor::from_fn(Shape3::new(1, 3, 3), |_, y, x| (y * 3 + x) as f32);
/// let cols = im2col(&input, ConvGeom::new(2, 1, 0))?;
/// assert_eq!((cols.rows(), cols.cols()), (4, 4));
/// // First column is the top-left 2x2 footprint.
/// assert_eq!(
///     (0..4).map(|r| cols.at(r, 0)).collect::<Vec<_>>(),
///     vec![0.0, 1.0, 3.0, 4.0]
/// );
/// # Ok::<(), tincy_tensor::TensorError>(())
/// ```
pub fn im2col<T: Copy + Default>(input: &Tensor<T>, geom: ConvGeom) -> Result<Mat<T>, TensorError> {
    im2col_with_pad(input, geom, T::default())
}

/// [`im2col`] with an explicit padding value.
///
/// Quantized feature maps must pad with their *zero point* rather than the
/// numeric zero byte, since the byte 0 generally encodes a nonzero real
/// value in an affine quantization.
///
/// # Errors
///
/// Returns [`TensorError::IncompatibleGeometry`] if `geom` cannot be applied
/// to the input shape.
pub fn im2col_with_pad<T: Copy + Default>(
    input: &Tensor<T>,
    geom: ConvGeom,
    pad_value: T,
) -> Result<Mat<T>, TensorError> {
    geom.validate(input.shape())?;
    let shape = input.shape();
    let (rows, cols) = im2col_shape(shape, geom);
    let out_w = geom.output_extent(shape.width);
    let mut mat = Mat::zeros(rows, cols);
    for c in 0..shape.channels {
        for ky in 0..geom.kernel {
            for kx in 0..geom.kernel {
                let row = (c * geom.kernel + ky) * geom.kernel + kx;
                let dst = mat.row_mut(row);
                for (col, slot) in dst.iter_mut().enumerate() {
                    let oy = col / out_w;
                    let ox = col % out_w;
                    let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
                    let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
                    *slot = at_or(input, c, iy, ix, pad_value);
                }
            }
        }
    }
    Ok(mat)
}

/// Reads `(c, y, x)` or returns `pad_value` for out-of-bounds coordinates.
#[inline]
fn at_or<T: Copy>(input: &Tensor<T>, c: usize, y: isize, x: isize, pad_value: T) -> T {
    let shape = input.shape();
    if y < 0 || x < 0 || y as usize >= shape.height || x as usize >= shape.width {
        pad_value
    } else {
        input.at(c, y as usize, x as usize)
    }
}

/// Scatters a column matrix back onto a feature map, accumulating overlaps.
///
/// This is the adjoint of [`im2col`] and is used by the training crate for
/// the convolution backward pass.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] if `cols` does not have the
/// `im2col` shape for `(output_shape, geom)`.
pub fn col2im_accumulate(
    cols: &Mat<f32>,
    output_shape: Shape3,
    geom: ConvGeom,
) -> Result<Tensor<f32>, TensorError> {
    let (rows, n) = im2col_shape(output_shape, geom);
    if cols.rows() != rows || cols.cols() != n {
        return Err(TensorError::LengthMismatch {
            expected: rows * n,
            actual: cols.rows() * cols.cols(),
        });
    }
    let out_w = geom.output_extent(output_shape.width);
    let mut out = Tensor::zeros(output_shape);
    for c in 0..output_shape.channels {
        for ky in 0..geom.kernel {
            for kx in 0..geom.kernel {
                let row = (c * geom.kernel + ky) * geom.kernel + kx;
                let src = cols.row(row);
                for (col, &v) in src.iter().enumerate() {
                    let oy = col / out_w;
                    let ox = col % out_w;
                    let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
                    let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
                    if iy >= 0
                        && ix >= 0
                        && (iy as usize) < output_shape.height
                        && (ix as usize) < output_shape.width
                    {
                        *out.at_mut(c, iy as usize, ix as usize) += v;
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Iterator over vertical slices of the `im2col` multiplicand (§III-D).
///
/// Instead of materializing the whole `(K²·C) × (H_out·W_out)` matrix, the
/// fused NEON implementation produces it in vertical slices whose width
/// matches the vector lane count, re-using the same storage for every slice.
/// Each call to [`Im2colSlices::next_slice`] fills the internal buffer with
/// the next `width ≤ slice_width` columns and returns `(start_col, width)`.
#[derive(Debug)]
pub struct Im2colSlices<'a, T> {
    input: &'a Tensor<T>,
    geom: ConvGeom,
    slice_width: usize,
    rows: usize,
    total_cols: usize,
    out_w: usize,
    next_col: usize,
    pad_value: T,
    /// Row-major buffer of `rows × slice_width`, re-used across slices.
    buffer: Vec<T>,
}

impl<'a, T: Copy + Default> Im2colSlices<'a, T> {
    /// Creates a slice iterator with the given slice width (vector lanes).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleGeometry`] if `geom` cannot be
    /// applied to the input, or if `slice_width` is zero.
    pub fn new(
        input: &'a Tensor<T>,
        geom: ConvGeom,
        slice_width: usize,
    ) -> Result<Self, TensorError> {
        Self::with_pad(input, geom, slice_width, T::default())
    }

    /// [`Im2colSlices::new`] with an explicit padding value (see
    /// [`im2col_with_pad`]).
    ///
    /// # Errors
    ///
    /// Same as [`Im2colSlices::new`].
    pub fn with_pad(
        input: &'a Tensor<T>,
        geom: ConvGeom,
        slice_width: usize,
        pad_value: T,
    ) -> Result<Self, TensorError> {
        geom.validate(input.shape())?;
        if slice_width == 0 {
            return Err(TensorError::IncompatibleGeometry {
                what: "slice width must be nonzero".to_owned(),
            });
        }
        let (rows, total_cols) = im2col_shape(input.shape(), geom);
        Ok(Self {
            input,
            geom,
            slice_width,
            rows,
            total_cols,
            out_w: geom.output_extent(input.shape().width),
            next_col: 0,
            pad_value,
            buffer: vec![T::default(); rows * slice_width],
        })
    }

    /// Number of rows of the multiplicand (`K²·C`).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total number of columns (`H_out·W_out`).
    pub fn total_cols(&self) -> usize {
        self.total_cols
    }

    /// Fills the internal buffer with the next slice.
    ///
    /// Returns `Some((start_col, width))` while columns remain, then `None`.
    /// The slice contents are readable through [`Self::row`].
    pub fn next_slice(&mut self) -> Option<(usize, usize)> {
        if self.next_col >= self.total_cols {
            return None;
        }
        let start = self.next_col;
        let width = self.slice_width.min(self.total_cols - start);
        let shape = self.input.shape();
        for c in 0..shape.channels {
            for ky in 0..self.geom.kernel {
                for kx in 0..self.geom.kernel {
                    let row = (c * self.geom.kernel + ky) * self.geom.kernel + kx;
                    let base = row * self.slice_width;
                    for i in 0..width {
                        let col = start + i;
                        let oy = col / self.out_w;
                        let ox = col % self.out_w;
                        let iy = (oy * self.geom.stride + ky) as isize - self.geom.pad as isize;
                        let ix = (ox * self.geom.stride + kx) as isize - self.geom.pad as isize;
                        self.buffer[base + i] = at_or(self.input, c, iy, ix, self.pad_value);
                    }
                }
            }
        }
        self.next_col += width;
        Some((start, width))
    }

    /// One row of the current slice (length = `slice_width`; only the width
    /// reported by the last [`Self::next_slice`] call is meaningful).
    pub fn row(&self, row: usize) -> &[T] {
        &self.buffer[row * self.slice_width..(row + 1) * self.slice_width]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_input() -> Tensor<f32> {
        Tensor::from_fn(Shape3::new(2, 4, 4), |c, y, x| {
            (c * 100 + y * 10 + x) as f32
        })
    }

    #[test]
    fn shape_matches_inflation_formula() {
        // §I: stride-1 "same" conv inflates the data volume by ~K².
        let input = Shape3::new(16, 416, 416);
        let (rows, cols) = im2col_shape(input, ConvGeom::same(3, 1));
        assert_eq!(rows, 9 * 16);
        assert_eq!(cols, 416 * 416);
        assert_eq!(rows * cols, input.volume() * 9);
    }

    #[test]
    fn explicit_columns_are_footprints() {
        let input = sample_input();
        let cols = im2col(&input, ConvGeom::new(3, 1, 0)).unwrap();
        assert_eq!((cols.rows(), cols.cols()), (18, 4));
        // Column 3 = footprint at output (1, 1): input rows 1..4, cols 1..4.
        let footprint: Vec<f32> = (0..9).map(|r| cols.at(r, 3)).collect();
        assert_eq!(footprint, vec![11., 12., 13., 21., 22., 23., 31., 32., 33.]);
        // Channel 1 occupies rows 9..18.
        assert_eq!(cols.at(9, 3), 111.0);
    }

    #[test]
    fn padding_produces_zeros() {
        let input = sample_input();
        let cols = im2col(&input, ConvGeom::same(3, 1)).unwrap();
        // Output (0,0), kernel element (0,0) reads input (-1,-1) => 0.
        assert_eq!(cols.at(0, 0), 0.0);
        // Kernel element (1,1) reads input (0,0).
        assert_eq!(cols.at(4, 0), 0.0); // value at input (0,0) is 0 anyway
        assert_eq!(cols.at(5, 0), 1.0); // kernel (1,2) reads input (0,1)
    }

    #[test]
    fn sliced_equals_explicit() {
        let input = sample_input();
        for geom in [
            ConvGeom::new(3, 1, 0),
            ConvGeom::same(3, 2),
            ConvGeom::new(2, 2, 0),
        ] {
            let explicit = im2col(&input, geom).unwrap();
            for slice_width in [1, 2, 3, 4, 7, 64] {
                let mut slices = Im2colSlices::new(&input, geom, slice_width).unwrap();
                while let Some((start, width)) = slices.next_slice() {
                    for r in 0..slices.rows() {
                        for i in 0..width {
                            assert_eq!(
                                slices.row(r)[i],
                                explicit.at(r, start + i),
                                "geom {geom:?} slice_width {slice_width} row {r} col {}",
                                start + i
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn slices_cover_all_columns_once() {
        let input = sample_input();
        let mut slices = Im2colSlices::new(&input, ConvGeom::same(3, 1), 5).unwrap();
        let mut seen = 0;
        while let Some((start, width)) = slices.next_slice() {
            assert_eq!(start, seen);
            seen += width;
        }
        assert_eq!(seen, slices.total_cols());
    }

    #[test]
    fn zero_slice_width_rejected() {
        let input = sample_input();
        assert!(Im2colSlices::new(&input, ConvGeom::same(3, 1), 0).is_err());
    }

    #[test]
    fn col2im_is_adjoint_of_im2col_on_ones() {
        // Scattering a matrix of ones counts how many footprints cover each
        // input element.
        let shape = Shape3::new(1, 3, 3);
        let geom = ConvGeom::new(2, 1, 0);
        let (rows, cols) = im2col_shape(shape, geom);
        let ones = Mat::from_fn(rows, cols, |_, _| 1.0f32);
        let cover = col2im_accumulate(&ones, shape, geom).unwrap();
        // Centre element is covered by all 4 footprints.
        assert_eq!(cover.at(0, 1, 1), 4.0);
        assert_eq!(cover.at(0, 0, 0), 1.0);
        assert_eq!(cover.at(0, 0, 1), 2.0);
    }

    #[test]
    fn col2im_rejects_wrong_shape() {
        let shape = Shape3::new(1, 3, 3);
        let geom = ConvGeom::new(2, 1, 0);
        let wrong = Mat::zeros(3, 3);
        assert!(col2im_accumulate(&wrong, shape, geom).is_err());
    }
}
