//! Feature-map tensors and supporting data structures.
//!
//! The convolutional workloads of the paper operate on 3-dimensional data
//! volumes called *feature maps* (§I, Fig 1). This crate provides:
//!
//! * [`Shape3`] / [`ConvGeom`] — feature-map and convolution geometry,
//! * [`Tensor`] — a dense CHW-layout tensor generic over its element type,
//! * [`Mat`] — a dense row-major matrix used by the GEMM lowering,
//! * [`im2col`] — the explicit multiplicand construction described in §I and
//!   its sliced variant from §III-D (the fused NEON implementation),
//! * [`BitTensor`] / [`U3Tensor`] — bit-packed containers for binary weights
//!   and 3-bit activations as processed by the QNN accelerator.
//!
//! # Example
//!
//! ```
//! use tincy_tensor::{ConvGeom, Shape3, Tensor};
//!
//! let input = Shape3::new(3, 416, 416);
//! let geom = ConvGeom::new(3, 2, 1);
//! let out = geom.output_shape(input, 16);
//! assert_eq!((out.height, out.width), (208, 208));
//!
//! let fmap: Tensor<f32> = Tensor::zeros(input);
//! assert_eq!(fmap.len(), 3 * 416 * 416);
//! ```

mod error;
mod im2col_impl;
mod matrix;
mod packing;
mod shape;
mod tensor_impl;

pub use error::TensorError;
pub use im2col_impl::{col2im_accumulate, im2col, im2col_shape, im2col_with_pad, Im2colSlices};
pub use matrix::Mat;
pub use packing::{BitTensor, U3Tensor};
pub use shape::{ConvGeom, PoolGeom, Shape3};
pub use tensor_impl::Tensor;
