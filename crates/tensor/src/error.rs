use std::fmt;

/// Errors raised by tensor construction and geometry checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// A shape dimension was zero or otherwise unusable.
    InvalidShape {
        /// Human-readable description of the offending dimension.
        what: String,
    },
    /// The supplied buffer length does not match the shape volume.
    LengthMismatch {
        /// Number of elements required by the shape.
        expected: usize,
        /// Number of elements actually supplied.
        actual: usize,
    },
    /// A convolution/pool geometry cannot be applied to the given input.
    IncompatibleGeometry {
        /// Human-readable description of the mismatch.
        what: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::InvalidShape { what } => write!(f, "invalid shape: {what}"),
            TensorError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "buffer length {actual} does not match shape volume {expected}"
                )
            }
            TensorError::IncompatibleGeometry { what } => {
                write!(f, "incompatible geometry: {what}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let err = TensorError::LengthMismatch {
            expected: 4,
            actual: 2,
        };
        assert_eq!(
            err.to_string(),
            "buffer length 2 does not match shape volume 4"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Send + Sync + std::error::Error>() {}
        assert_traits::<TensorError>();
    }
}
