use crate::{Shape3, TensorError};

/// A dense feature map in CHW layout.
///
/// The element type is generic so the same container carries `f32` maps,
/// `u8`/`i8` quantized maps, and `i32` accumulator maps.
///
/// # Example
///
/// ```
/// use tincy_tensor::{Shape3, Tensor};
///
/// let mut t: Tensor<f32> = Tensor::zeros(Shape3::new(2, 3, 3));
/// *t.at_mut(1, 2, 2) = 5.0;
/// assert_eq!(t.at(1, 2, 2), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor<T> {
    shape: Shape3,
    data: Vec<T>,
}

impl<T: Copy + Default> Tensor<T> {
    /// Creates a tensor filled with `T::default()` (zero for numeric types).
    pub fn zeros(shape: Shape3) -> Self {
        Self {
            shape,
            data: vec![T::default(); shape.volume()],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn filled(shape: Shape3, value: T) -> Self {
        Self {
            shape,
            data: vec![value; shape.volume()],
        }
    }

    /// Creates a tensor from a generator `f(channel, y, x)`.
    pub fn from_fn(shape: Shape3, mut f: impl FnMut(usize, usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(shape.volume());
        for c in 0..shape.channels {
            for y in 0..shape.height {
                for x in 0..shape.width {
                    data.push(f(c, y, x));
                }
            }
        }
        Self { shape, data }
    }

    /// Reads the element at `(channel, y, x)`, returning the padding value
    /// `T::default()` for out-of-bounds *signed* coordinates.
    ///
    /// This mirrors zero padding during convolution without materializing a
    /// padded copy.
    pub fn at_padded(&self, c: usize, y: isize, x: isize) -> T {
        if y < 0 || x < 0 || y as usize >= self.shape.height || x as usize >= self.shape.width {
            T::default()
        } else {
            self.at(c, y as usize, x as usize)
        }
    }
}

impl<T: Copy> Tensor<T> {
    /// Wraps an existing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` differs from
    /// the shape volume.
    pub fn from_vec(shape: Shape3, data: Vec<T>) -> Result<Self, TensorError> {
        if data.len() != shape.volume() {
            return Err(TensorError::LengthMismatch {
                expected: shape.volume(),
                actual: data.len(),
            });
        }
        Ok(Self { shape, data })
    }

    /// Reads the element at `(channel, y, x)`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of bounds.
    #[inline]
    pub fn at(&self, c: usize, y: usize, x: usize) -> T {
        self.data[self.index(c, y, x)]
    }

    /// Mutable access to the element at `(channel, y, x)`.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of bounds.
    #[inline]
    pub fn at_mut(&mut self, c: usize, y: usize, x: usize) -> &mut T {
        let i = self.index(c, y, x);
        &mut self.data[i]
    }

    /// Linear CHW index of `(channel, y, x)`.
    #[inline]
    pub fn index(&self, c: usize, y: usize, x: usize) -> usize {
        debug_assert!(c < self.shape.channels && y < self.shape.height && x < self.shape.width);
        (c * self.shape.height + y) * self.shape.width + x
    }

    /// The shape of this tensor.
    pub fn shape(&self) -> Shape3 {
        self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying CHW buffer.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the underlying CHW buffer.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the tensor and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// One channel plane as a contiguous slice.
    pub fn channel(&self, c: usize) -> &[T] {
        let plane = self.shape.spatial();
        &self.data[c * plane..(c + 1) * plane]
    }

    /// Applies `f` elementwise, producing a tensor of a new element type.
    pub fn map<U: Copy>(&self, f: impl Fn(T) -> U) -> Tensor<U> {
        Tensor {
            shape: self.shape,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }
}

impl Tensor<f32> {
    /// Maximum absolute difference against another tensor of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Self) -> f32 {
        assert_eq!(self.shape, other.shape, "shape mismatch in max_abs_diff");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_fill() {
        let t: Tensor<i32> = Tensor::zeros(Shape3::new(2, 2, 2));
        assert!(t.as_slice().iter().all(|&v| v == 0));
        let t = Tensor::filled(Shape3::new(2, 2, 2), 7u8);
        assert!(t.as_slice().iter().all(|&v| v == 7));
    }

    #[test]
    fn chw_layout_indexing() {
        let t = Tensor::from_fn(Shape3::new(2, 3, 4), |c, y, x| {
            (c * 100 + y * 10 + x) as i32
        });
        assert_eq!(t.at(0, 0, 0), 0);
        assert_eq!(t.at(1, 2, 3), 123);
        // Channel plane 1 starts after 12 elements of channel 0.
        assert_eq!(t.as_slice()[12], 100);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(Shape3::new(1, 2, 2), vec![0f32; 3]).is_err());
        assert!(Tensor::from_vec(Shape3::new(1, 2, 2), vec![0f32; 4]).is_ok());
    }

    #[test]
    fn padded_access_returns_default() {
        let t = Tensor::filled(Shape3::new(1, 2, 2), 5i32);
        assert_eq!(t.at_padded(0, -1, 0), 0);
        assert_eq!(t.at_padded(0, 0, 2), 0);
        assert_eq!(t.at_padded(0, 1, 1), 5);
    }

    #[test]
    fn channel_slice() {
        let t = Tensor::from_fn(Shape3::new(3, 2, 2), |c, _, _| c as u8);
        assert_eq!(t.channel(2), &[2, 2, 2, 2]);
    }

    #[test]
    fn map_changes_element_type() {
        let t = Tensor::filled(Shape3::new(1, 1, 3), 2u8);
        let f = t.map(|v| v as f32 * 0.5);
        assert_eq!(f.as_slice(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn max_abs_diff_detects_divergence() {
        let a = Tensor::filled(Shape3::new(1, 1, 2), 1.0f32);
        let mut b = a.clone();
        *b.at_mut(0, 0, 1) = 1.5;
        assert_eq!(a.max_abs_diff(&b), 0.5);
    }
}
