use crate::TensorError;

/// A dense row-major matrix.
///
/// Used for the GEMM lowering of convolution (§I): the multiplier holds one
/// linearized kernel per row, the multiplicand is produced by `im2col`.
///
/// # Example
///
/// ```
/// use tincy_tensor::Mat;
///
/// let m = Mat::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
/// assert_eq!(m.at(1, 2), 5.0);
/// assert_eq!(m.row(0), &[0.0, 1.0, 2.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mat<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Copy + Default> Mat<T> {
    /// Creates a matrix filled with `T::default()`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![T::default(); rows * cols],
        }
    }
}

impl<T: Copy> Mat<T> {
    /// Creates a matrix from a generator `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Wraps an existing row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Result<Self, TensorError> {
        if data.len() != rows * cols {
            return Err(TensorError::LengthMismatch {
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> T {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Mutable element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut T {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }

    /// One row as a contiguous slice.
    pub fn row(&self, r: usize) -> &[T] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// One row as a mutable contiguous slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Immutable view of the row-major buffer.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable view of the row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the matrix, returning the buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Applies `f` elementwise, producing a matrix of a new element type.
    pub fn map<U: Copy>(&self, f: impl Fn(T) -> U) -> Mat<U> {
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// The transpose of this matrix.
    pub fn transposed(&self) -> Mat<T> {
        Mat::from_fn(self.cols, self.rows, |r, c| self.at(c, r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_layout() {
        let m = Mat::from_fn(2, 2, |r, c| r * 10 + c);
        assert_eq!(m.as_slice(), &[0, 1, 10, 11]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Mat::from_vec(2, 2, vec![1u8; 3]).is_err());
        assert!(Mat::from_vec(2, 2, vec![1u8; 4]).is_ok());
    }

    #[test]
    fn rows_are_contiguous() {
        let m = Mat::from_fn(3, 4, |r, c| (r, c));
        assert_eq!(m.row(1), &[(1, 0), (1, 1), (1, 2), (1, 3)]);
    }

    #[test]
    fn transpose_round_trip() {
        let m = Mat::from_fn(2, 3, |r, c| r * 3 + c);
        assert_eq!(m.transposed().transposed(), m);
        assert_eq!(m.transposed().at(2, 1), m.at(1, 2));
    }
}
