use crate::TensorError;

/// Shape of a 3-dimensional feature map in channel–height–width order.
///
/// The paper's convolutions consume an input feature map of `C` channels and
/// spatial size `N×N` (Fig 1); this type generalizes to rectangular maps.
///
/// # Example
///
/// ```
/// use tincy_tensor::Shape3;
///
/// let s = Shape3::new(16, 208, 208);
/// assert_eq!(s.volume(), 16 * 208 * 208);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Shape3 {
    /// Number of channels (`C` in the paper).
    pub channels: usize,
    /// Spatial height.
    pub height: usize,
    /// Spatial width.
    pub width: usize,
}

impl Shape3 {
    /// Creates a new shape.
    pub const fn new(channels: usize, height: usize, width: usize) -> Self {
        Self {
            channels,
            height,
            width,
        }
    }

    /// Total number of elements.
    pub const fn volume(&self) -> usize {
        self.channels * self.height * self.width
    }

    /// Number of spatial positions (`H·W`).
    pub const fn spatial(&self) -> usize {
        self.height * self.width
    }

    /// Returns an error if any dimension is zero.
    pub fn validate(&self) -> Result<(), TensorError> {
        if self.channels == 0 || self.height == 0 || self.width == 0 {
            return Err(TensorError::InvalidShape {
                what: format!("{self:?} has a zero dimension"),
            });
        }
        Ok(())
    }
}

impl std::fmt::Display for Shape3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x{}", self.channels, self.height, self.width)
    }
}

/// Geometry of a convolutional kernel application: size, stride and padding.
///
/// # Example
///
/// ```
/// use tincy_tensor::{ConvGeom, Shape3};
///
/// // Tincy YOLO's first layer: 3x3 kernel, stride 2, "same" padding.
/// let geom = ConvGeom::new(3, 2, 1);
/// let out = geom.output_shape(Shape3::new(3, 416, 416), 16);
/// assert_eq!(out, Shape3::new(16, 208, 208));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvGeom {
    /// Kernel side length (`K`).
    pub kernel: usize,
    /// Application stride.
    pub stride: usize,
    /// Zero padding applied on every border.
    pub pad: usize,
}

impl ConvGeom {
    /// Creates a new convolution geometry.
    pub const fn new(kernel: usize, stride: usize, pad: usize) -> Self {
        Self {
            kernel,
            stride,
            pad,
        }
    }

    /// Convenience constructor for "same" padding at stride 1 or the darknet
    /// convention `pad = kernel / 2`.
    pub const fn same(kernel: usize, stride: usize) -> Self {
        Self {
            kernel,
            stride,
            pad: kernel / 2,
        }
    }

    /// Output spatial extent for a 1-D input extent.
    pub const fn output_extent(&self, input: usize) -> usize {
        (input + 2 * self.pad - self.kernel) / self.stride + 1
    }

    /// Output shape for a given input shape and output channel count.
    pub const fn output_shape(&self, input: Shape3, out_channels: usize) -> Shape3 {
        Shape3::new(
            out_channels,
            self.output_extent(input.height),
            self.output_extent(input.width),
        )
    }

    /// Validates that the geometry is applicable to `input`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleGeometry`] if the kernel is larger
    /// than the padded input or stride is zero.
    pub fn validate(&self, input: Shape3) -> Result<(), TensorError> {
        if self.kernel == 0 || self.stride == 0 {
            return Err(TensorError::IncompatibleGeometry {
                what: format!(
                    "kernel {} / stride {} must be nonzero",
                    self.kernel, self.stride
                ),
            });
        }
        if input.height + 2 * self.pad < self.kernel || input.width + 2 * self.pad < self.kernel {
            return Err(TensorError::IncompatibleGeometry {
                what: format!("kernel {} exceeds padded input {input}", self.kernel),
            });
        }
        Ok(())
    }

    /// Number of multiply–accumulate inputs per output element (`K²·C`).
    pub const fn dot_length(&self, in_channels: usize) -> usize {
        self.kernel * self.kernel * in_channels
    }
}

/// Geometry of a max-pooling window.
///
/// Darknet's maxpool uses implicit "same"-style padding when the stride does
/// not evenly divide the input (e.g. the `size=2, stride=1` pool before the
/// 13×13 layers of Tiny YOLO, which preserves spatial extent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PoolGeom {
    /// Window side length.
    pub size: usize,
    /// Application stride.
    pub stride: usize,
}

impl PoolGeom {
    /// Creates a new pooling geometry.
    pub const fn new(size: usize, stride: usize) -> Self {
        Self { size, stride }
    }

    /// Output spatial extent following darknet's convention
    /// `out = ceil(in / stride)` (achieved with asymmetric padding).
    pub const fn output_extent(&self, input: usize) -> usize {
        input.div_ceil(self.stride)
    }

    /// Output shape: channel count is preserved.
    pub const fn output_shape(&self, input: Shape3) -> Shape3 {
        Shape3::new(
            input.channels,
            self.output_extent(input.height),
            self.output_extent(input.width),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_and_spatial() {
        let s = Shape3::new(3, 4, 5);
        assert_eq!(s.volume(), 60);
        assert_eq!(s.spatial(), 20);
    }

    #[test]
    fn zero_dimension_rejected() {
        assert!(Shape3::new(0, 4, 4).validate().is_err());
        assert!(Shape3::new(1, 4, 4).validate().is_ok());
    }

    #[test]
    fn conv_same_padding_preserves_extent_at_stride_one() {
        let geom = ConvGeom::same(3, 1);
        assert_eq!(geom.output_extent(416), 416);
    }

    #[test]
    fn conv_stride_two_halves_extent() {
        let geom = ConvGeom::same(3, 2);
        assert_eq!(geom.output_extent(416), 208);
    }

    #[test]
    fn one_by_one_conv() {
        let geom = ConvGeom::new(1, 1, 0);
        let out = geom.output_shape(Shape3::new(1024, 13, 13), 125);
        assert_eq!(out, Shape3::new(125, 13, 13));
    }

    #[test]
    fn degenerate_full_size_kernel_is_fully_connected() {
        // §I: a kernel of the input size degenerates into a single
        // application, i.e. a fully connected layer.
        let geom = ConvGeom::new(13, 1, 0);
        let out = geom.output_shape(Shape3::new(1024, 13, 13), 125);
        assert_eq!(out, Shape3::new(125, 1, 1));
    }

    #[test]
    fn geometry_validation() {
        let input = Shape3::new(3, 4, 4);
        assert!(ConvGeom::new(3, 1, 0).validate(input).is_ok());
        assert!(ConvGeom::new(7, 1, 0).validate(input).is_err());
        assert!(ConvGeom::new(3, 0, 0).validate(input).is_err());
        assert!(ConvGeom::new(0, 1, 0).validate(input).is_err());
    }

    #[test]
    fn pool_halves_extent() {
        let geom = PoolGeom::new(2, 2);
        assert_eq!(geom.output_extent(416), 208);
        assert_eq!(geom.output_extent(13), 7);
    }

    #[test]
    fn pool_stride_one_preserves_extent() {
        // The Tiny YOLO maxpool at 13x13 with stride 1 keeps 13x13.
        let geom = PoolGeom::new(2, 1);
        assert_eq!(geom.output_extent(13), 13);
    }

    #[test]
    fn dot_length_matches_paper_formula() {
        // K²·C multiplications per kernel application (§I).
        assert_eq!(ConvGeom::same(3, 1).dot_length(16), 144);
    }
}
