//! Property-based tests for tensor invariants.

use proptest::prelude::*;
use tincy_tensor::{im2col, BitTensor, ConvGeom, Im2colSlices, Shape3, Tensor, U3Tensor};

fn small_shape() -> impl Strategy<Value = Shape3> {
    (1usize..4, 2usize..10, 2usize..10).prop_map(|(c, h, w)| Shape3::new(c, h, w))
}

fn geom_for(shape: Shape3) -> impl Strategy<Value = ConvGeom> {
    let max_k = shape.height.min(shape.width).min(3);
    (1usize..=max_k, 1usize..3, 0usize..2).prop_map(|(k, s, p)| ConvGeom::new(k, s, p))
}

proptest! {
    #[test]
    fn tensor_round_trip(shape in small_shape(), seed in any::<u32>()) {
        let t = Tensor::from_fn(shape, |c, y, x| {
            (c as u32).wrapping_mul(31).wrapping_add((y * 7 + x) as u32).wrapping_add(seed) as i32
        });
        let data = t.clone().into_vec();
        let back = Tensor::from_vec(shape, data).unwrap();
        prop_assert_eq!(t, back);
    }

    #[test]
    fn im2col_column_count_equals_output_positions(
        (shape, geom) in small_shape().prop_flat_map(|s| geom_for(s).prop_map(move |g| (s, g)))
    ) {
        let input: Tensor<f32> = Tensor::from_fn(shape, |c, y, x| (c + y + x) as f32);
        let cols = im2col(&input, geom).unwrap();
        let out = geom.output_shape(shape, 1);
        prop_assert_eq!(cols.cols(), out.spatial());
        prop_assert_eq!(cols.rows(), geom.dot_length(shape.channels));
    }

    #[test]
    fn sliced_im2col_matches_explicit(
        (shape, geom) in small_shape().prop_flat_map(|s| geom_for(s).prop_map(move |g| (s, g))),
        slice_width in 1usize..9
    ) {
        let input: Tensor<f32> = Tensor::from_fn(shape, |c, y, x| (c * 97 + y * 13 + x) as f32);
        let explicit = im2col(&input, geom).unwrap();
        let mut slices = Im2colSlices::new(&input, geom, slice_width).unwrap();
        let mut covered = 0usize;
        while let Some((start, width)) = slices.next_slice() {
            prop_assert_eq!(start, covered);
            for r in 0..slices.rows() {
                for i in 0..width {
                    prop_assert_eq!(slices.row(r)[i], explicit.at(r, start + i));
                }
            }
            covered += width;
        }
        prop_assert_eq!(covered, explicit.cols());
    }

    #[test]
    fn u3_pack_unpack_round_trip(values in proptest::collection::vec(0u8..8, 0..300)) {
        let t = U3Tensor::from_values(&values).unwrap();
        prop_assert_eq!(t.to_values(), values);
    }

    #[test]
    fn bit_tensor_sign_consistency(
        rows in 1usize..5,
        cols in 1usize..140,
        seed in any::<u64>()
    ) {
        let signs: Vec<i8> = (0..rows * cols)
            .map(|i| if (seed.wrapping_mul(6364136223846793005).wrapping_add(i as u64)) & 2 == 0 { 1 } else { -1 })
            .collect();
        let t = BitTensor::from_signs(rows, cols, &signs).unwrap();
        for r in 0..rows {
            for c in 0..cols {
                prop_assert_eq!(t.sign(r, c), signs[r * cols + c] as i32);
            }
        }
        // Padding bits beyond `cols` must stay clear so popcount kernels
        // can consume whole words.
        for r in 0..rows {
            let total: u32 = t.row_count_ones(r);
            let logical = (0..cols).filter(|&c| t.get(r, c)).count() as u32;
            prop_assert_eq!(total, logical);
        }
    }
}
