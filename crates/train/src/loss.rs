//! A YOLOv1-style single-anchor detection loss and its decoder.
//!
//! The head emits `(5 + classes)` channels per grid cell:
//! `[tx, ty, tw, th, to, class logits…]`. Cells containing a ground-truth
//! center are *responsible* and receive coordinate, size, objectness and
//! class terms; all other cells receive only a down-weighted no-object
//! term — the classic YOLO loss shape, reduced to one anchor so the
//! scaled-down study trains quickly and stably.

use tincy_eval::{BBox, Detection, GroundTruth};
use tincy_tensor::Tensor;

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Binary cross entropy of a sigmoid probability against a 0/1 target,
/// clamped away from the log singularities.
#[inline]
fn bce(p: f32, target: f32) -> f32 {
    let p = p.clamp(1e-6, 1.0 - 1e-6);
    -(target * p.ln() + (1.0 - target) * (1.0 - p).ln())
}

/// Loss term breakdown for monitoring.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LossParts {
    /// Coordinate (x, y) term.
    pub coord: f32,
    /// Size (w, h) term.
    pub size: f32,
    /// Objectness term (responsible cells).
    pub obj: f32,
    /// No-object term.
    pub noobj: f32,
    /// Classification term.
    pub class: f32,
}

impl LossParts {
    /// Total scalar loss.
    pub fn total(&self) -> f32 {
        self.coord + self.size + self.obj + self.noobj + self.class
    }
}

/// The detection loss configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionLoss {
    /// Number of object classes.
    pub classes: usize,
    /// The single anchor prior `(w, h)` in relative image units.
    pub anchor: (f32, f32),
    /// Weight of the coordinate/size terms (YOLO uses 5).
    pub lambda_coord: f32,
    /// Weight of the no-object term (YOLO uses 0.5).
    pub lambda_noobj: f32,
}

impl DetectionLoss {
    /// Creates the loss with YOLO's classic weights.
    pub fn new(classes: usize, anchor: (f32, f32)) -> Self {
        Self {
            classes,
            anchor,
            lambda_coord: 5.0,
            lambda_noobj: 0.5,
        }
    }

    /// Channels the head must emit.
    pub fn channels(&self) -> usize {
        5 + self.classes
    }

    /// Computes the loss and its gradient with respect to the raw head.
    ///
    /// # Panics
    ///
    /// Panics if the head channel count does not match
    /// [`DetectionLoss::channels`].
    pub fn compute(&self, head: &Tensor<f32>, truth: &[GroundTruth]) -> (LossParts, Tensor<f32>) {
        let shape = head.shape();
        assert_eq!(
            shape.channels,
            self.channels(),
            "head channel count mismatch"
        );
        let (gw, gh) = (shape.width, shape.height);
        // Responsible object per cell (first ground truth wins).
        let mut responsible: Vec<Option<&GroundTruth>> = vec![None; gw * gh];
        for gt in truth {
            let gx = ((gt.bbox.x * gw as f32) as usize).min(gw - 1);
            let gy = ((gt.bbox.y * gh as f32) as usize).min(gh - 1);
            let slot = &mut responsible[gy * gw + gx];
            if slot.is_none() {
                *slot = Some(gt);
            }
        }

        let mut parts = LossParts::default();
        let mut grad = Tensor::zeros(shape);
        for gy in 0..gh {
            for gx in 0..gw {
                let to = head.at(4, gy, gx);
                let so = sigmoid(to);
                match responsible[gy * gw + gx] {
                    Some(gt) => {
                        // Coordinates: sigmoid offsets within the cell.
                        let ox_t = gt.bbox.x * gw as f32 - gx as f32;
                        let oy_t = gt.bbox.y * gh as f32 - gy as f32;
                        let sx = sigmoid(head.at(0, gy, gx));
                        let sy = sigmoid(head.at(1, gy, gx));
                        parts.coord +=
                            self.lambda_coord * ((sx - ox_t).powi(2) + (sy - oy_t).powi(2));
                        *grad.at_mut(0, gy, gx) +=
                            2.0 * self.lambda_coord * (sx - ox_t) * sx * (1.0 - sx);
                        *grad.at_mut(1, gy, gx) +=
                            2.0 * self.lambda_coord * (sy - oy_t) * sy * (1.0 - sy);
                        // Sizes: log-space against the anchor.
                        let tw_t = (gt.bbox.w.max(1e-4) / self.anchor.0).ln();
                        let th_t = (gt.bbox.h.max(1e-4) / self.anchor.1).ln();
                        let tw = head.at(2, gy, gx);
                        let th = head.at(3, gy, gx);
                        parts.size +=
                            self.lambda_coord * ((tw - tw_t).powi(2) + (th - th_t).powi(2));
                        *grad.at_mut(2, gy, gx) += 2.0 * self.lambda_coord * (tw - tw_t);
                        *grad.at_mut(3, gy, gx) += 2.0 * self.lambda_coord * (th - th_t);
                        // Objectness target 1, as cross entropy: the
                        // gradient with respect to the logit is σ − t,
                        // which does not vanish when the network starts
                        // out confidently wrong.
                        parts.obj += bce(so, 1.0);
                        *grad.at_mut(4, gy, gx) += so - 1.0;
                        // One-vs-all class cross entropies.
                        for c in 0..self.classes {
                            let target = if c == gt.class { 1.0 } else { 0.0 };
                            let sc = sigmoid(head.at(5 + c, gy, gx));
                            parts.class += bce(sc, target);
                            *grad.at_mut(5 + c, gy, gx) += sc - target;
                        }
                    }
                    None => {
                        parts.noobj += self.lambda_noobj * bce(so, 0.0);
                        *grad.at_mut(4, gy, gx) += self.lambda_noobj * so;
                    }
                }
            }
        }
        (parts, grad)
    }

    /// Decodes the raw head into detections with `score ≥ threshold`.
    pub fn decode(&self, head: &Tensor<f32>, threshold: f32) -> Vec<Detection> {
        let shape = head.shape();
        let (gw, gh) = (shape.width, shape.height);
        let mut out = Vec::new();
        for gy in 0..gh {
            for gx in 0..gw {
                let obj = sigmoid(head.at(4, gy, gx));
                if obj < threshold {
                    continue;
                }
                let bx = (gx as f32 + sigmoid(head.at(0, gy, gx))) / gw as f32;
                let by = (gy as f32 + sigmoid(head.at(1, gy, gx))) / gh as f32;
                let bw = self.anchor.0 * head.at(2, gy, gx).exp();
                let bh = self.anchor.1 * head.at(3, gy, gx).exp();
                for c in 0..self.classes {
                    let score = obj * sigmoid(head.at(5 + c, gy, gx));
                    if score >= threshold {
                        out.push(Detection::new(BBox::new(bx, by, bw, bh), c, score));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tincy_tensor::Shape3;

    fn loss() -> DetectionLoss {
        DetectionLoss::new(3, (0.3, 0.3))
    }

    fn gt(x: f32, y: f32, class: usize) -> GroundTruth {
        GroundTruth::new(BBox::new(x, y, 0.3, 0.3), class)
    }

    #[test]
    fn perfect_prediction_has_near_zero_loss() {
        let l = loss();
        let shape = Shape3::new(l.channels(), 2, 2);
        let mut head = Tensor::filled(shape, 0.0f32);
        // Object centered in cell (0,0): offsets 0.5 -> tx = ty = 0 is
        // exact; size equals anchor -> tw = th = 0; strong objectness and
        // class 1; strong negatives elsewhere.
        for gy in 0..2 {
            for gx in 0..2 {
                *head.at_mut(4, gy, gx) = -12.0;
            }
        }
        *head.at_mut(4, 0, 0) = 12.0;
        *head.at_mut(5, 0, 0) = -12.0;
        *head.at_mut(6, 0, 0) = 12.0;
        *head.at_mut(7, 0, 0) = -12.0;
        let truth = vec![gt(0.25, 0.25, 1)];
        let (parts, _) = l.compute(&head, &truth);
        assert!(parts.total() < 1e-3, "loss {parts:?}");
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let l = loss();
        let shape = Shape3::new(l.channels(), 2, 2);
        let head = Tensor::from_fn(shape, |c, y, x| {
            ((c * 7 + y * 3 + x) % 5) as f32 * 0.3 - 0.6
        });
        let truth = vec![gt(0.3, 0.7, 2)];
        let (_, grad) = l.compute(&head, &truth);
        let eps = 1e-3f32;
        for idx in [0usize, 5, 13, 20, head.len() - 1] {
            let mut hp = head.clone();
            hp.as_mut_slice()[idx] += eps;
            let (lp, _) = l.compute(&hp, &truth);
            let mut hm = head.clone();
            hm.as_mut_slice()[idx] -= eps;
            let (lm, _) = l.compute(&hm, &truth);
            let numeric = (lp.total() - lm.total()) / (2.0 * eps);
            assert!(
                (grad.as_slice()[idx] - numeric).abs() < 1e-2 * numeric.abs().max(1.0),
                "grad[{idx}] analytic {} vs numeric {numeric}",
                grad.as_slice()[idx]
            );
        }
    }

    #[test]
    fn decode_inverts_targets() {
        let l = loss();
        let shape = Shape3::new(l.channels(), 4, 4);
        let mut head = Tensor::filled(shape, -10.0f32);
        // Object at (0.3, 0.7) of size (0.3, 0.3) in cell (1, 2):
        // offsets: 0.3*4-1 = 0.2, 0.7*4-2 = 0.8.
        let (gx, gy) = (1, 2);
        *head.at_mut(0, gy, gx) = (0.2f32 / 0.8).ln(); // sigmoid^-1(0.2)
        *head.at_mut(1, gy, gx) = (0.8f32 / 0.2).ln();
        *head.at_mut(2, gy, gx) = 0.0;
        *head.at_mut(3, gy, gx) = 0.0;
        *head.at_mut(4, gy, gx) = 10.0;
        *head.at_mut(5 + 2, gy, gx) = 10.0;
        let dets = l.decode(&head, 0.5);
        assert_eq!(dets.len(), 1);
        let d = dets[0];
        assert_eq!(d.class, 2);
        assert!((d.bbox.x - 0.3).abs() < 1e-3);
        assert!((d.bbox.y - 0.7).abs() < 1e-3);
        assert!((d.bbox.w - 0.3).abs() < 1e-5);
    }

    #[test]
    fn training_signal_reduces_loss_one_gradient_step() {
        // One explicit gradient-descent step on the head must reduce loss.
        let l = loss();
        let shape = Shape3::new(l.channels(), 2, 2);
        let head = Tensor::from_fn(shape, |c, y, x| ((c + y + x) % 3) as f32 * 0.5 - 0.5);
        let truth = vec![gt(0.25, 0.25, 0)];
        let (before, grad) = l.compute(&head, &truth);
        let mut stepped = head.clone();
        for (v, g) in stepped.as_mut_slice().iter_mut().zip(grad.as_slice()) {
            *v -= 0.1 * g;
        }
        let (after, _) = l.compute(&stepped, &truth);
        assert!(after.total() < before.total());
    }

    #[test]
    fn two_objects_same_cell_first_wins() {
        let l = loss();
        let shape = Shape3::new(l.channels(), 2, 2);
        let head = Tensor::filled(shape, 0.0f32);
        let truth = vec![gt(0.2, 0.2, 0), gt(0.22, 0.22, 1)];
        // Must not panic; loss counts one responsible object.
        let (parts, _) = l.compute(&head, &truth);
        assert!(parts.total() > 0.0);
    }
}
