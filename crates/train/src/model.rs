//! Deriving a trainable network from a serializable [`ModelSpec`].
//!
//! The design-space explorer emits `ModelSpec` documents; this module
//! turns one into the QAT training recipe the deployment flow expects:
//! offloadable convs train as `[W1A3]` STE layers, the conv feeding the
//! quantized stack trains with 3-bit output quantization (`A3Only`) so
//! the fabric sees the feature map the model trained on, everything else
//! trains in float, and the region head (not trainable — the loss decodes
//! raw logits) is dropped.

use crate::layers::{Act, QuantMode, TrainConvSpec, TrainLayerSpec};
use crate::net::{TrainError, TrainNet};
use tincy_nn::{Activation, LayerSpec, ModelSpec};
use tincy_quant::WeightPrecision;
use tincy_tensor::Shape3;

fn act_of(activation: Activation) -> Act {
    match activation {
        Activation::Linear => Act::Linear,
        Activation::Relu => Act::Relu,
        Activation::Leaky => Act::Leaky,
    }
}

/// Lowers a model description to trainable layer specs (plus the input
/// shape). The trailing region head is dropped; the net ends in the raw
/// logit map the detection loss consumes.
///
/// # Errors
///
/// Returns [`TrainError`] if the model contains an `[offload]` section
/// (train the expanded per-layer topology, not the deployed collapse).
pub fn train_specs_for(model: &ModelSpec) -> Result<(Shape3, Vec<TrainLayerSpec>), TrainError> {
    let convs_offloadable: Vec<bool> = model
        .network
        .layers
        .iter()
        .filter_map(|l| match l {
            LayerSpec::Conv(c) => Some(c.precision.offloadable()),
            _ => None,
        })
        .collect();
    let mut specs = Vec::new();
    let mut conv_idx = 0usize;
    for layer in &model.network.layers {
        match layer {
            LayerSpec::Conv(c) => {
                let feeds_fabric = convs_offloadable.get(conv_idx + 1) == Some(&true);
                let quant = if c.precision.offloadable() {
                    match c.precision.weights {
                        WeightPrecision::W2 => QuantMode::W2A3 {
                            act_step: model.act_step,
                        },
                        _ => QuantMode::W1A3 {
                            act_step: model.act_step,
                        },
                    }
                } else if feeds_fabric {
                    QuantMode::A3Only {
                        act_step: model.act_step,
                    }
                } else {
                    QuantMode::Float
                };
                specs.push(TrainLayerSpec::Conv(TrainConvSpec {
                    filters: c.filters,
                    size: c.size,
                    stride: c.stride,
                    pad: c.pad,
                    act: act_of(c.activation),
                    quant,
                }));
                conv_idx += 1;
            }
            LayerSpec::MaxPool(p) => specs.push(TrainLayerSpec::MaxPool {
                size: p.size,
                stride: p.stride,
            }),
            LayerSpec::Region(_) => {}
            LayerSpec::Offload(_) => {
                return Err(TrainError {
                    what: "cannot train a collapsed [offload] section; use the expanded \
                           per-layer topology"
                        .to_owned(),
                })
            }
        }
    }
    Ok((model.network.input, specs))
}

impl TrainNet {
    /// Builds a trainable network straight from a model description, with
    /// the model's own weight seed.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] for untrainable models (see
    /// [`train_specs_for`]) or invalid layer geometry.
    pub fn from_model(model: &ModelSpec) -> Result<Self, TrainError> {
        let (input, specs) = train_specs_for(model)?;
        TrainNet::new(input, &specs, model.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tincy_nn::{ConvSpec, NetworkSpec, OffloadSpec, PoolSpec, RegionSpec};
    use tincy_quant::PrecisionConfig;

    fn conv(filters: usize, precision: PrecisionConfig, activation: Activation) -> LayerSpec {
        LayerSpec::Conv(ConvSpec {
            filters,
            size: 3,
            stride: 1,
            pad: 1,
            activation,
            batch_normalize: false,
            precision,
        })
    }

    fn model() -> ModelSpec {
        let network = NetworkSpec::new(Shape3::new(3, 16, 16))
            .with(conv(4, PrecisionConfig::W8A8, Activation::Relu))
            .with(LayerSpec::MaxPool(PoolSpec { size: 2, stride: 2 }))
            .with(conv(8, PrecisionConfig::W1A3, Activation::Relu))
            .with(conv(7, PrecisionConfig::W8A8, Activation::Linear))
            .with(LayerSpec::Region(RegionSpec {
                classes: 2,
                num: 1,
                anchors: vec![(1.0, 1.0)],
            }));
        ModelSpec {
            name: "t".to_owned(),
            network,
            fold: Default::default(),
            act_step: 0.25,
            seed: 3,
        }
    }

    #[test]
    fn lowering_matches_the_qat_recipe() {
        let (input, specs) = train_specs_for(&model()).unwrap();
        assert_eq!(input, Shape3::new(3, 16, 16));
        // Region head dropped: conv, pool, conv, conv.
        assert_eq!(specs.len(), 4);
        let quants: Vec<QuantMode> = specs
            .iter()
            .filter_map(|s| match s {
                TrainLayerSpec::Conv(c) => Some(c.quant),
                TrainLayerSpec::MaxPool { .. } => None,
            })
            .collect();
        assert_eq!(
            quants,
            vec![
                QuantMode::A3Only { act_step: 0.25 },
                QuantMode::W1A3 { act_step: 0.25 },
                QuantMode::Float,
            ]
        );
    }

    #[test]
    fn from_model_builds_and_runs() {
        let net = TrainNet::from_model(&model()).unwrap();
        let image = tincy_tensor::Tensor::from_fn(Shape3::new(3, 16, 16), |c, y, x| {
            ((c + y + x) % 5) as f32 / 5.0
        });
        let mut net = net;
        let out = net.forward(&image);
        assert_eq!(out.shape().channels, 7);
    }

    #[test]
    fn offload_sections_are_rejected() {
        let mut m = model();
        m.network.layers[2] = LayerSpec::Offload(OffloadSpec {
            library: "fabric.so".to_owned(),
            network: "x".to_owned(),
            weights: "y".to_owned(),
            out_shape: Shape3::new(8, 8, 8),
            ops: 1,
        });
        assert!(TrainNet::from_model(&m).is_err());
    }
}
