//! Training and evaluation loops for the Table IV reproduction.

use crate::loss::DetectionLoss;
use crate::net::TrainNet;
use crate::sgd::Sgd;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tincy_eval::{mean_average_precision, nms, ApMethod, EvalSummary};
use tincy_trace::static_label;
use tincy_video::Sample;

/// Training-run configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the dataset.
    pub epochs: usize,
    /// Initial learning rate.
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Multiplicative learning-rate decay per epoch.
    pub lr_decay: f32,
    /// Global gradient-norm clip applied per sample (0 disables).
    pub grad_clip: f32,
    /// Shuffling seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 30,
            lr: 0.01,
            momentum: 0.9,
            weight_decay: 1e-4,
            lr_decay: 0.97,
            grad_clip: 5.0,
            seed: 0,
        }
    }
}

/// Result of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean loss per epoch.
    pub epoch_losses: Vec<f32>,
}

impl TrainReport {
    /// Final epoch's mean loss.
    pub fn final_loss(&self) -> f32 {
        *self.epoch_losses.last().unwrap_or(&f32::INFINITY)
    }
}

/// Trains a detector with plain SGD over the dataset.
pub fn train(
    net: &mut TrainNet,
    loss: &DetectionLoss,
    data: &[Sample],
    config: &TrainConfig,
) -> TrainReport {
    let mut opt = Sgd::new(config.lr, config.momentum, config.weight_decay);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut order: Vec<usize> = (0..data.len()).collect();
    let mut epoch_losses = Vec::with_capacity(config.epochs);
    for epoch in 0..config.epochs {
        // Epoch and step spans put the retraining loop on the same
        // timeline as inference: `frame` carries the epoch, steps add the
        // within-epoch position via `request` and the sweep size via
        // `batch` (each step is one sample here).
        let _epoch_span = tincy_trace::span(static_label!("train.epoch"))
            .frame(epoch as u64)
            .batch(u32::try_from(data.len()).unwrap_or(u32::MAX))
            .start();
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f32;
        for (step, &i) in order.iter().enumerate() {
            let _step_span = tincy_trace::span(static_label!("train.step"))
                .frame(epoch as u64)
                .request(step as u64)
                .batch(1)
                .start();
            let sample = &data[i];
            net.zero_grad();
            let head = net.forward(sample.image.as_tensor());
            let (parts, grad) = loss.compute(&head, &sample.truth);
            net.backward(&grad);
            if config.grad_clip > 0.0 {
                clip_gradients(net, config.grad_clip);
            }
            opt.step(net);
            epoch_loss += parts.total();
        }
        epoch_losses.push(epoch_loss / data.len().max(1) as f32);
        opt.lr *= config.lr_decay;
    }
    TrainReport { epoch_losses }
}

/// Rescales gradients so their global norm does not exceed `max_norm`.
fn clip_gradients(net: &mut TrainNet, max_norm: f32) {
    let norm = net.grad_norm();
    if norm.is_finite() && norm > max_norm {
        net.scale_gradients(max_norm / norm);
    } else if !norm.is_finite() {
        // A non-finite gradient would poison the weights; drop the step.
        net.scale_gradients(0.0);
    }
}

/// Evaluates a detector's mAP over a dataset (VOC 11-point, with NMS).
pub fn evaluate_map(
    net: &mut TrainNet,
    loss: &DetectionLoss,
    data: &[Sample],
    score_threshold: f32,
    iou_threshold: f32,
) -> EvalSummary {
    let mut detections = Vec::with_capacity(data.len());
    let mut truths = Vec::with_capacity(data.len());
    for sample in data {
        let head = net.forward(sample.image.as_tensor());
        let dets = nms(loss.decode(&head, score_threshold), 0.45);
        detections.push(dets);
        truths.push(sample.truth.clone());
    }
    mean_average_precision(
        &detections,
        &truths,
        loss.classes,
        iou_threshold,
        ApMethod::Voc11Point,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Act, QuantMode, TrainConvSpec, TrainLayerSpec};
    use tincy_tensor::Shape3;
    use tincy_video::{generate_dataset, DatasetConfig, SceneConfig};

    fn detector_specs(classes: usize) -> Vec<TrainLayerSpec> {
        let conv = |filters, stride, act| {
            TrainLayerSpec::Conv(TrainConvSpec {
                filters,
                size: 3,
                stride,
                pad: 1,
                act,
                quant: QuantMode::Float,
            })
        };
        vec![
            conv(8, 2, Act::Relu),                          // 32 -> 16
            TrainLayerSpec::MaxPool { size: 2, stride: 2 }, // -> 8
            conv(16, 1, Act::Relu),
            TrainLayerSpec::MaxPool { size: 2, stride: 2 }, // -> 4
            TrainLayerSpec::Conv(TrainConvSpec {
                filters: 5 + classes,
                size: 1,
                stride: 1,
                pad: 0,
                act: Act::Linear,
                quant: QuantMode::Float,
            }),
        ]
    }

    fn small_dataset(samples: usize) -> Vec<Sample> {
        generate_dataset(&DatasetConfig {
            scene: SceneConfig {
                width: 32,
                height: 32,
                num_objects: 1,
                num_classes: 2,
                size_range: (0.3, 0.5),
                speed: 0.0,
            },
            samples,
            seed: 7,
            input_size: 32,
        })
    }

    #[test]
    fn loss_decreases_over_training() {
        let mut net = TrainNet::new(Shape3::new(3, 32, 32), &detector_specs(2), 1).unwrap();
        let loss = DetectionLoss::new(2, (0.4, 0.4));
        let data = small_dataset(16);
        let report = train(
            &mut net,
            &loss,
            &data,
            &TrainConfig {
                epochs: 8,
                lr: 0.02,
                ..Default::default()
            },
        );
        assert!(
            report.final_loss() < report.epoch_losses[0] * 0.8,
            "losses {:?} did not descend",
            report.epoch_losses
        );
    }

    #[test]
    fn training_improves_map_over_untrained() {
        let loss = DetectionLoss::new(2, (0.4, 0.4));
        let data = small_dataset(24);
        let mut untrained = TrainNet::new(Shape3::new(3, 32, 32), &detector_specs(2), 1).unwrap();
        let before = evaluate_map(&mut untrained, &loss, &data, 0.3, 0.4);
        let mut net = TrainNet::new(Shape3::new(3, 32, 32), &detector_specs(2), 1).unwrap();
        train(
            &mut net,
            &loss,
            &data,
            &TrainConfig {
                epochs: 25,
                lr: 0.02,
                ..Default::default()
            },
        );
        let after = evaluate_map(&mut net, &loss, &data, 0.3, 0.4);
        assert!(
            after.map > before.map + 0.1,
            "mAP {} -> {} shows no learning",
            before.map,
            after.map
        );
    }

    #[test]
    fn training_emits_epoch_and_step_spans() {
        let mut net = TrainNet::new(Shape3::new(3, 32, 32), &detector_specs(2), 1).unwrap();
        let loss = DetectionLoss::new(2, (0.4, 0.4));
        let data = small_dataset(4);
        tincy_trace::start();
        train(
            &mut net,
            &loss,
            &data,
            &TrainConfig {
                epochs: 3,
                ..Default::default()
            },
        );
        let trace = tincy_trace::finish();
        let spans = trace.spans().expect("well-formed trace");
        let named = |name: &str| {
            spans
                .iter()
                .filter(|s| trace.label_name(s.label) == name)
                .count()
        };
        assert_eq!(named("train.epoch"), 3, "one span per epoch");
        assert_eq!(named("train.step"), 12, "one span per sample step");
        let epoch_frames: Vec<_> = spans
            .iter()
            .filter(|s| trace.label_name(s.label) == "train.epoch")
            .filter_map(|s| s.attrs.frame)
            .collect();
        assert_eq!(epoch_frames, vec![0, 1, 2]);
    }

    #[test]
    fn evaluation_is_deterministic() {
        let loss = DetectionLoss::new(2, (0.4, 0.4));
        let data = small_dataset(8);
        let mut net = TrainNet::new(Shape3::new(3, 32, 32), &detector_specs(2), 5).unwrap();
        let a = evaluate_map(&mut net, &loss, &data, 0.3, 0.4);
        let b = evaluate_map(&mut net, &loss, &data, 0.3, 0.4);
        assert_eq!(a, b);
    }
}
