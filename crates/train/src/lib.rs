//! From-scratch training for the Table IV accuracy study.
//!
//! The paper retrains its quantized networks to recuperate the accuracy
//! lost to quantization — "we perform this important but single-time effort
//! on standard GPU hardware" (§I). This reproduction has no GPU and no
//! Pascal VOC, so the study runs at reduced scale: a YOLO-style detector
//! trained with plain SGD on the synthetic dataset of `tincy-video`, with
//! straight-through-estimator (STE) quantization-aware retraining for the
//! `[W1A3]` variants.
//!
//! * [`layers`] — trainable conv/pool layers with explicit backward passes
//!   (convolution gradients via `im2col`/`col2im`),
//! * [`ste`] — binary-weight and 3-bit-activation fake quantization with
//!   straight-through gradients,
//! * [`net`] — the trainable network container,
//! * [`loss`] — a YOLOv1-style single-anchor detection loss and its
//!   matching decoder,
//! * [`sgd`] — SGD with momentum,
//! * [`trainer`] — the training/evaluation loops used by the Table IV
//!   reproduction.

pub mod layers;
pub mod loss;
pub mod model;
pub mod net;
pub mod sgd;
pub mod ste;
pub mod trainer;

pub use layers::{Act, QuantMode, TrainConvSpec, TrainLayerSpec};
pub use loss::{DetectionLoss, LossParts};
pub use model::train_specs_for;
pub use net::{ExportedLayer, TrainError, TrainNet};
pub use sgd::Sgd;
pub use trainer::{evaluate_map, train, TrainConfig, TrainReport};
