//! Trainable layers with explicit backward passes.
//!
//! Convolution gradients follow the classic `im2col` formulation: with
//! `Y = W·X_cols + b`, the gradients are `dW = dY·X_colsᵀ`,
//! `db = Σ dY` and `dX = col2im(Wᵀ·dY)`.

use crate::ste::{binarize_grad, binarize_weights, quantize_act3, quantize_act3_grad};
use rand::rngs::StdRng;
use rand::Rng;
use tincy_quant::ternarize;
use tincy_tensor::{col2im_accumulate, im2col, ConvGeom, Mat, PoolGeom, Shape3, Tensor};

/// Training-time activation function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Act {
    /// Identity (detection heads).
    Linear,
    /// `max(0, x)` — transformation (a) of §III-E.
    #[default]
    Relu,
    /// Leaky ReLU with slope 0.1 — Tiny YOLO's original activation.
    Leaky,
}

impl Act {
    #[inline]
    fn apply(&self, x: f32) -> f32 {
        match self {
            Act::Linear => x,
            Act::Relu => x.max(0.0),
            Act::Leaky => {
                if x > 0.0 {
                    x
                } else {
                    0.1 * x
                }
            }
        }
    }

    /// Derivative as a function of the *output* (sign-preserving
    /// activations make this well defined).
    #[inline]
    fn grad_from_output(&self, y: f32) -> f32 {
        match self {
            Act::Linear => 1.0,
            Act::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Act::Leaky => {
                if y > 0.0 {
                    1.0
                } else {
                    0.1
                }
            }
        }
    }
}

/// Quantization mode of a trainable conv layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QuantMode {
    /// Plain float training.
    Float,
    /// Binary weights + 3-bit activations with STE gradients (`[W1A3]`).
    W1A3 {
        /// Activation quantization step.
        act_step: f32,
    },
    /// Float weights, 3-bit *output* activations — used on the layer that
    /// feeds the quantized hidden stack so the deployed fabric sees the
    /// same discretized feature map the QAT model trained on.
    A3Only {
        /// Activation quantization step.
        act_step: f32,
    },
    /// Ternary weights {−α, 0, +α} (Li et al. — the paper's §II "smallest
    /// possible retreat" from full binarization) + 3-bit activations.
    W2A3 {
        /// Activation quantization step.
        act_step: f32,
    },
}

impl QuantMode {
    /// The activation quantization step, if the mode quantizes outputs.
    pub fn act_step(&self) -> Option<f32> {
        match self {
            QuantMode::Float => None,
            QuantMode::W1A3 { act_step }
            | QuantMode::A3Only { act_step }
            | QuantMode::W2A3 { act_step } => Some(*act_step),
        }
    }
}

/// Specification of a trainable convolution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConvSpec {
    /// Output channels.
    pub filters: usize,
    /// Kernel side length.
    pub size: usize,
    /// Stride.
    pub stride: usize,
    /// Zero padding.
    pub pad: usize,
    /// Activation.
    pub act: Act,
    /// Quantization mode.
    pub quant: QuantMode,
}

/// One layer of a trainable network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrainLayerSpec {
    /// Convolution + activation (+ optional fake quantization).
    Conv(TrainConvSpec),
    /// Max pooling.
    MaxPool {
        /// Window size.
        size: usize,
        /// Stride.
        stride: usize,
    },
}

/// A trainable convolution layer.
#[derive(Debug)]
pub(crate) struct ConvT {
    pub(crate) in_shape: Shape3,
    pub(crate) out_shape: Shape3,
    pub(crate) geom: ConvGeom,
    pub(crate) act: Act,
    pub(crate) quant: QuantMode,
    /// Weights, row-major `filters × K²·C`.
    pub(crate) w: Vec<f32>,
    pub(crate) b: Vec<f32>,
    pub(crate) dw: Vec<f32>,
    pub(crate) db: Vec<f32>,
    filters: usize,
    cols: usize,
    // Forward caches for the backward pass.
    cache_x_cols: Option<Mat<f32>>,
    cache_post_act: Option<Tensor<f32>>,
    cache_w_used: Option<Vec<f32>>,
}

impl ConvT {
    pub(crate) fn new(in_shape: Shape3, spec: &TrainConvSpec, rng: &mut StdRng) -> Self {
        let geom = ConvGeom::new(spec.size, spec.stride, spec.pad);
        let cols = geom.dot_length(in_shape.channels);
        let std = (2.0 / cols as f32).sqrt();
        ConvT {
            in_shape,
            out_shape: geom.output_shape(in_shape, spec.filters),
            geom,
            act: spec.act,
            quant: spec.quant,
            w: (0..spec.filters * cols)
                .map(|_| rng.gen_range(-1.0f32..1.0) * std)
                .collect(),
            b: vec![0.0; spec.filters],
            dw: vec![0.0; spec.filters * cols],
            db: vec![0.0; spec.filters],
            filters: spec.filters,
            cols,
            cache_x_cols: None,
            cache_post_act: None,
            cache_w_used: None,
        }
    }

    pub(crate) fn forward(&mut self, x: &Tensor<f32>) -> Tensor<f32> {
        let x_cols = im2col(x, self.geom).expect("geometry validated at construction");
        let w_used: Vec<f32> = match self.quant {
            QuantMode::Float | QuantMode::A3Only { .. } => self.w.clone(),
            QuantMode::W1A3 { .. } => binarize_weights(&self.w).0,
            QuantMode::W2A3 { .. } => ternarize(&self.w).expect("finite weights").to_dense(),
        };
        let n = x_cols.cols();
        let spatial = self.out_shape.spatial();
        debug_assert_eq!(n, spatial);
        let mut out = Tensor::zeros(self.out_shape);
        {
            let data = out.as_mut_slice();
            for f in 0..self.filters {
                let w_row = &w_used[f * self.cols..(f + 1) * self.cols];
                let base = f * spatial;
                for (k, &wv) in w_row.iter().enumerate() {
                    let col_row = x_cols.row(k);
                    for j in 0..n {
                        data[base + j] += wv * col_row[j];
                    }
                }
                for v in &mut data[base..base + spatial] {
                    *v = self.act.apply(*v + self.b[f]);
                }
            }
        }
        self.cache_x_cols = Some(x_cols);
        self.cache_post_act = Some(out.clone());
        self.cache_w_used = Some(w_used);
        if let Some(act_step) = self.quant.act_step() {
            out = out.map(|v| quantize_act3(v, act_step));
        }
        out
    }

    pub(crate) fn backward(&mut self, dout: &Tensor<f32>) -> Tensor<f32> {
        let x_cols = self
            .cache_x_cols
            .take()
            .expect("backward requires a prior forward");
        let post_act = self
            .cache_post_act
            .take()
            .expect("backward requires a prior forward");
        let w_used = self
            .cache_w_used
            .take()
            .expect("backward requires a prior forward");
        let spatial = self.out_shape.spatial();
        let n = spatial;

        // dz = upstream through (optional) activation quantizer and the
        // activation function.
        let mut dz = vec![0.0f32; self.filters * spatial];
        for f in 0..self.filters {
            for j in 0..spatial {
                let idx = f * spatial + j;
                let a = post_act.as_slice()[idx];
                let mut g = dout.as_slice()[idx];
                if let Some(act_step) = self.quant.act_step() {
                    g = quantize_act3_grad(a, act_step, g);
                }
                dz[idx] = g * self.act.grad_from_output(a);
            }
        }

        // Parameter gradients.
        for f in 0..self.filters {
            let dz_row = &dz[f * spatial..(f + 1) * spatial];
            self.db[f] += dz_row.iter().sum::<f32>();
            for k in 0..self.cols {
                let col_row = x_cols.row(k);
                let mut acc = 0.0f32;
                for j in 0..n {
                    acc += dz_row[j] * col_row[j];
                }
                let raw = self.w[f * self.cols + k];
                self.dw[f * self.cols + k] += match self.quant {
                    QuantMode::Float | QuantMode::A3Only { .. } => acc,
                    // Both weight quantizers share the STE clip rule.
                    QuantMode::W1A3 { .. } | QuantMode::W2A3 { .. } => binarize_grad(raw, acc),
                };
            }
        }

        // Input gradient: dX_cols = W_usedᵀ · dZ, scattered by col2im.
        let mut dx_cols = Mat::zeros(self.cols, n);
        for f in 0..self.filters {
            let dz_row = &dz[f * spatial..(f + 1) * spatial];
            let w_row = &w_used[f * self.cols..(f + 1) * self.cols];
            for (k, &wv) in w_row.iter().enumerate() {
                let dst = dx_cols.row_mut(k);
                for j in 0..n {
                    dst[j] += wv * dz_row[j];
                }
            }
        }
        col2im_accumulate(&dx_cols, self.in_shape, self.geom)
            .expect("geometry validated at construction")
    }
}

/// A trainable max-pool layer.
#[derive(Debug)]
pub(crate) struct PoolT {
    pub(crate) in_shape: Shape3,
    pub(crate) out_shape: Shape3,
    pub(crate) geom: PoolGeom,
    /// Argmax input index per output element.
    cache_argmax: Option<Vec<usize>>,
}

impl PoolT {
    pub(crate) fn new(in_shape: Shape3, size: usize, stride: usize) -> Self {
        let geom = PoolGeom::new(size, stride);
        PoolT {
            in_shape,
            out_shape: geom.output_shape(in_shape),
            geom,
            cache_argmax: None,
        }
    }

    pub(crate) fn forward(&mut self, x: &Tensor<f32>) -> Tensor<f32> {
        let mut out = Tensor::zeros(self.out_shape);
        let mut argmax = vec![0usize; self.out_shape.volume()];
        for c in 0..self.out_shape.channels {
            for oy in 0..self.out_shape.height {
                for ox in 0..self.out_shape.width {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0;
                    for ky in 0..self.geom.size {
                        for kx in 0..self.geom.size {
                            let iy = oy * self.geom.stride + ky;
                            let ix = ox * self.geom.stride + kx;
                            if iy < self.in_shape.height && ix < self.in_shape.width {
                                let v = x.at(c, iy, ix);
                                if v > best {
                                    best = v;
                                    best_idx = x.index(c, iy, ix);
                                }
                            }
                        }
                    }
                    *out.at_mut(c, oy, ox) = best;
                    argmax[out.index(c, oy, ox)] = best_idx;
                }
            }
        }
        self.cache_argmax = Some(argmax);
        out
    }

    pub(crate) fn backward(&mut self, dout: &Tensor<f32>) -> Tensor<f32> {
        let argmax = self
            .cache_argmax
            .take()
            .expect("backward requires a prior forward");
        let mut dx = Tensor::zeros(self.in_shape);
        for (i, &src) in argmax.iter().enumerate() {
            dx.as_mut_slice()[src] += dout.as_slice()[i];
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn conv_spec(filters: usize, quant: QuantMode) -> TrainConvSpec {
        TrainConvSpec {
            filters,
            size: 3,
            stride: 1,
            pad: 1,
            act: Act::Relu,
            quant,
        }
    }

    #[test]
    fn conv_forward_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut conv = ConvT::new(
            Shape3::new(2, 5, 5),
            &conv_spec(4, QuantMode::Float),
            &mut rng,
        );
        let x = Tensor::filled(Shape3::new(2, 5, 5), 0.3f32);
        let y = conv.forward(&x);
        assert_eq!(y.shape(), Shape3::new(4, 5, 5));
        assert!(y.as_slice().iter().all(|&v| v >= 0.0));
    }

    /// Finite-difference check of the convolution weight/bias/input
    /// gradients — the load-bearing correctness test of this crate.
    #[test]
    fn conv_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(2);
        let in_shape = Shape3::new(2, 4, 4);
        let mut conv = ConvT::new(
            in_shape,
            &TrainConvSpec {
                filters: 3,
                size: 3,
                stride: 1,
                pad: 1,
                act: Act::Leaky, // differentiable almost everywhere
                quant: QuantMode::Float,
            },
            &mut rng,
        );
        let x = Tensor::from_fn(in_shape, |_, _, _| rng.gen_range(-1.0f32..1.0));
        // Scalar loss: L = 0.5 * Σ y².
        let loss = |conv: &mut ConvT, x: &Tensor<f32>| -> f32 {
            let y = conv.forward(x);
            0.5 * y.as_slice().iter().map(|v| v * v).sum::<f32>()
        };
        let y = conv.forward(&x);
        let dx = conv.backward(&y); // dL/dy = y

        let eps = 1e-3f32;
        // Weight gradients.
        for k in [0usize, 7, 20, conv.w.len() - 1] {
            let orig = conv.w[k];
            conv.w[k] = orig + eps;
            let lp = loss(&mut conv, &x);
            conv.w[k] = orig - eps;
            let lm = loss(&mut conv, &x);
            conv.w[k] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (conv.dw[k] - numeric).abs() < 2e-2 * numeric.abs().max(1.0),
                "dw[{k}] analytic {} vs numeric {numeric}",
                conv.dw[k]
            );
        }
        // Bias gradient.
        let orig = conv.b[1];
        conv.b[1] = orig + eps;
        let lp = loss(&mut conv, &x);
        conv.b[1] = orig - eps;
        let lm = loss(&mut conv, &x);
        conv.b[1] = orig;
        let numeric = (lp - lm) / (2.0 * eps);
        assert!((conv.db[1] - numeric).abs() < 2e-2 * numeric.abs().max(1.0));
        // Input gradient (spot check).
        let mut x2 = x.clone();
        let idx = 5;
        x2.as_mut_slice()[idx] += eps;
        let lp = loss(&mut conv, &x2);
        x2.as_mut_slice()[idx] -= 2.0 * eps;
        let lm = loss(&mut conv, &x2);
        let numeric = (lp - lm) / (2.0 * eps);
        assert!(
            (dx.as_slice()[idx] - numeric).abs() < 2e-2 * numeric.abs().max(1.0),
            "dx analytic {} vs numeric {numeric}",
            dx.as_slice()[idx]
        );
    }

    #[test]
    fn quantized_forward_emits_levels() {
        let mut rng = StdRng::seed_from_u64(3);
        let step = 0.25f32;
        let mut conv = ConvT::new(
            Shape3::new(2, 4, 4),
            &conv_spec(4, QuantMode::W1A3 { act_step: step }),
            &mut rng,
        );
        let x = Tensor::from_fn(Shape3::new(2, 4, 4), |_, _, _| rng.gen_range(0.0f32..1.0));
        let y = conv.forward(&x);
        for &v in y.as_slice() {
            let level = v / step;
            assert!((level - level.round()).abs() < 1e-5);
            assert!((0.0..=7.0).contains(&level));
        }
    }

    #[test]
    fn quantized_backward_produces_finite_grads() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut conv = ConvT::new(
            Shape3::new(2, 4, 4),
            &conv_spec(4, QuantMode::W1A3 { act_step: 0.25 }),
            &mut rng,
        );
        let x = Tensor::from_fn(Shape3::new(2, 4, 4), |_, _, _| rng.gen_range(0.0f32..1.0));
        let y = conv.forward(&x);
        let dx = conv.backward(&y);
        assert!(dx.as_slice().iter().all(|v| v.is_finite()));
        assert!(
            conv.dw.iter().any(|&v| v != 0.0),
            "STE must pass some gradient through"
        );
    }

    #[test]
    fn ternary_forward_uses_three_weight_levels() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut conv = ConvT::new(
            Shape3::new(1, 1, 1),
            &TrainConvSpec {
                filters: 1,
                size: 1,
                stride: 1,
                pad: 0,
                act: Act::Linear,
                quant: QuantMode::W2A3 { act_step: 0.25 },
            },
            &mut rng,
        );
        // A single weight below the ternary threshold quantizes to zero:
        // output = bias regardless of input.
        conv.w = vec![0.0];
        conv.b = vec![0.5];
        let y = conv.forward(&Tensor::filled(Shape3::new(1, 1, 1), 123.0f32));
        assert_eq!(y.at(0, 0, 0), 0.5);
    }

    #[test]
    fn ternary_backward_produces_finite_grads() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut conv = ConvT::new(
            Shape3::new(2, 4, 4),
            &conv_spec(4, QuantMode::W2A3 { act_step: 0.25 }),
            &mut rng,
        );
        let x = Tensor::from_fn(Shape3::new(2, 4, 4), |_, _, _| rng.gen_range(0.0f32..1.0));
        let y = conv.forward(&x);
        let dx = conv.backward(&y);
        assert!(dx.as_slice().iter().all(|v| v.is_finite()));
        assert!(conv.dw.iter().any(|&v| v != 0.0));
    }

    #[test]
    fn pool_routes_gradient_to_argmax() {
        let mut pool = PoolT::new(Shape3::new(1, 2, 2), 2, 2);
        let x = Tensor::from_vec(Shape3::new(1, 2, 2), vec![1.0f32, 5.0, 3.0, 2.0]).unwrap();
        let y = pool.forward(&x);
        assert_eq!(y.as_slice(), &[5.0]);
        let dout = Tensor::filled(Shape3::new(1, 1, 1), 2.0f32);
        let dx = pool.backward(&dout);
        assert_eq!(dx.as_slice(), &[0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn pool_clipped_window_stride_one() {
        let mut pool = PoolT::new(Shape3::new(1, 3, 3), 2, 1);
        let x = Tensor::from_fn(Shape3::new(1, 3, 3), |_, y, z| (y * 3 + z) as f32);
        let y = pool.forward(&x);
        assert_eq!(y.shape(), Shape3::new(1, 3, 3));
        assert_eq!(y.at(0, 2, 2), 8.0);
    }
}
