//! Straight-through-estimator fake quantization.
//!
//! Quantization functions have zero gradient almost everywhere; STE
//! training (Hubara et al. \[8\], the lineage the paper builds on) runs the
//! quantizer in the forward pass but passes gradients through as if it were
//! the identity — clipped to the quantizer's active range so weights and
//! activations outside it stop receiving spurious updates.

/// Binary-weight fake quantization: `w ↦ α·sign(w)` with the per-tensor
/// mean-absolute scale `α` (XNOR-Net style).
///
/// Returns the quantized weights and `α`.
pub fn binarize_weights(weights: &[f32]) -> (Vec<f32>, f32) {
    let n = weights.len().max(1);
    let alpha = weights.iter().map(|w| w.abs()).sum::<f32>() / n as f32;
    (
        weights
            .iter()
            .map(|&w| if w < 0.0 { -alpha } else { alpha })
            .collect(),
        alpha,
    )
}

/// STE gradient for [`binarize_weights`]: identity inside the clip range
/// `|w| ≤ 1`, zero outside.
#[inline]
pub fn binarize_grad(w: f32, upstream: f32) -> f32 {
    if w.abs() <= 1.0 {
        upstream
    } else {
        0.0
    }
}

/// 3-bit activation fake quantization with step `s`:
/// `x ↦ s·clamp(round(x/s), 0, 7)`.
#[inline]
pub fn quantize_act3(x: f32, step: f32) -> f32 {
    step * (x / step).round().clamp(0.0, 7.0)
}

/// STE gradient for [`quantize_act3`]: identity inside the active range
/// `0 ≤ x ≤ 7s` (half a step of slack at each end), zero where the
/// quantizer saturates.
#[inline]
pub fn quantize_act3_grad(x: f32, step: f32, upstream: f32) -> f32 {
    if (-0.5 * step..=7.5 * step).contains(&x) {
        upstream
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binarize_preserves_sign_and_scale() {
        let (q, alpha) = binarize_weights(&[0.5, -1.5, 1.0]);
        assert!((alpha - 1.0).abs() < 1e-6);
        assert_eq!(q, vec![1.0, -1.0, 1.0]);
    }

    #[test]
    fn binarize_grad_clips() {
        assert_eq!(binarize_grad(0.5, 2.0), 2.0);
        assert_eq!(binarize_grad(-0.9, 2.0), 2.0);
        assert_eq!(binarize_grad(1.5, 2.0), 0.0);
    }

    #[test]
    fn act3_levels() {
        let s = 0.25;
        assert_eq!(quantize_act3(0.0, s), 0.0);
        assert_eq!(quantize_act3(0.26, s), 0.25);
        assert_eq!(quantize_act3(10.0, s), 7.0 * s);
        assert_eq!(quantize_act3(-1.0, s), 0.0);
    }

    #[test]
    fn act3_error_bounded_inside_range() {
        let s = 0.125;
        for i in 0..=70 {
            let x = i as f32 * 0.0125;
            if x <= 7.0 * s {
                assert!((quantize_act3(x, s) - x).abs() <= s / 2.0 + 1e-6);
            }
        }
    }

    #[test]
    fn act3_grad_saturates() {
        let s = 0.25;
        assert_eq!(quantize_act3_grad(0.5, s, 3.0), 3.0);
        assert_eq!(quantize_act3_grad(-0.2, s, 3.0), 0.0);
        assert_eq!(quantize_act3_grad(2.0, s, 3.0), 0.0);
    }
}
