//! Stochastic gradient descent with classical momentum.

use crate::net::TrainNet;

/// SGD-with-momentum optimizer (Darknet's default training rule).
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates an optimizer.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Self {
            lr,
            momentum,
            weight_decay,
            velocity: Vec::new(),
        }
    }

    /// Applies one update step from the gradients accumulated in `net`.
    pub fn step(&mut self, net: &mut TrainNet) {
        let mut idx = 0;
        // Lazily size the velocity buffers on first use.
        let need_init = self.velocity.is_empty();
        if need_init {
            net.visit_params(|w, _| {
                // Collected below; placeholder push to learn the sizes.
                // (visit order is deterministic).
                let _ = w;
            });
        }
        let velocity = &mut self.velocity;
        let (lr, momentum, decay) = (self.lr, self.momentum, self.weight_decay);
        net.visit_params(|w, g| {
            if velocity.len() <= idx {
                velocity.push(vec![0.0; w.len()]);
            }
            let v = &mut velocity[idx];
            debug_assert_eq!(
                v.len(),
                w.len(),
                "parameter layout changed under the optimizer"
            );
            for i in 0..w.len() {
                v[i] = momentum * v[i] - lr * (g[i] + decay * w[i]);
                w[i] += v[i];
            }
            idx += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Act, QuantMode, TrainConvSpec, TrainLayerSpec};
    use tincy_tensor::{Shape3, Tensor};

    fn tiny_net() -> TrainNet {
        TrainNet::new(
            Shape3::new(1, 4, 4),
            &[TrainLayerSpec::Conv(TrainConvSpec {
                filters: 2,
                size: 3,
                stride: 1,
                pad: 1,
                act: Act::Linear,
                quant: QuantMode::Float,
            })],
            3,
        )
        .unwrap()
    }

    #[test]
    fn sgd_descends_a_quadratic() {
        // Loss = 0.5 Σ y² over a linear conv; repeated steps must shrink it.
        let mut net = tiny_net();
        let mut opt = Sgd::new(0.01, 0.9, 0.0);
        let x = Tensor::filled(Shape3::new(1, 4, 4), 1.0f32);
        let loss_of = |net: &mut TrainNet| {
            let y = net.forward(&x);
            0.5 * y.as_slice().iter().map(|v| v * v).sum::<f32>()
        };
        let initial = loss_of(&mut net);
        for _ in 0..30 {
            net.zero_grad();
            let y = net.forward(&x);
            net.backward(&y);
            opt.step(&mut net);
        }
        let final_loss = loss_of(&mut net);
        assert!(
            final_loss < initial * 0.1,
            "loss {initial} -> {final_loss} did not descend"
        );
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut net = tiny_net();
        let mut opt = Sgd::new(0.1, 0.0, 0.5);
        let mut norm_before = 0.0f32;
        net.visit_params(|w, _| norm_before += w.iter().map(|v| v * v).sum::<f32>());
        net.zero_grad(); // zero gradients: only decay acts
        opt.step(&mut net);
        let mut norm_after = 0.0f32;
        net.visit_params(|w, _| norm_after += w.iter().map(|v| v * v).sum::<f32>());
        assert!(norm_after < norm_before);
    }

    #[test]
    fn momentum_accumulates() {
        let mut net = tiny_net();
        let mut no_momentum = Sgd::new(0.01, 0.0, 0.0);
        let mut with_momentum = Sgd::new(0.01, 0.9, 0.0);
        let x = Tensor::filled(Shape3::new(1, 4, 4), 1.0f32);

        // Apply the same constant gradient twice to two clones.
        let mut net2 = tiny_net();
        for _ in 0..2 {
            for (n, opt) in [
                (&mut net, &mut no_momentum),
                (&mut net2, &mut with_momentum),
            ] {
                n.zero_grad();
                let y = n.forward(&x);
                n.backward(&y.map(|_| 1.0));
                opt.step(n);
            }
        }
        // Momentum accelerates: second step moves further.
        let mut w1 = Vec::new();
        net.visit_params(|w, _| w1.extend_from_slice(w));
        let mut w2 = Vec::new();
        net2.visit_params(|w, _| w2.extend_from_slice(w));
        assert_ne!(w1, w2);
    }
}
