//! The trainable network container.

use crate::layers::{Act, ConvT, PoolT, QuantMode, TrainLayerSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use tincy_tensor::{ConvGeom, PoolGeom, Shape3, Tensor};

/// One trained layer's parameters, exported for deployment.
#[derive(Debug, Clone)]
pub enum ExportedLayer {
    /// A convolution with its trained parameters.
    Conv {
        /// Row-major `filters × K²·C` weights.
        weights: Vec<f32>,
        /// Per-filter bias.
        bias: Vec<f32>,
        /// Input feature-map shape.
        in_shape: Shape3,
        /// Output feature-map shape.
        out_shape: Shape3,
        /// Convolution geometry.
        geom: ConvGeom,
        /// Activation function.
        act: Act,
        /// Quantization mode the layer was trained with.
        quant: QuantMode,
    },
    /// A max-pooling layer.
    Pool {
        /// Input feature-map shape.
        in_shape: Shape3,
        /// Output feature-map shape.
        out_shape: Shape3,
        /// Pooling geometry.
        geom: PoolGeom,
    },
}

/// Training-time errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrainError {
    /// Human-readable description.
    pub what: String,
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "training error: {}", self.what)
    }
}

impl std::error::Error for TrainError {}

enum TLayer {
    // Boxed: a ConvT carries full weight/gradient buffers and dwarfs PoolT.
    Conv(Box<ConvT>),
    Pool(PoolT),
}

/// A small trainable feed-forward network (convs + pools), ending in the
/// detection head's raw logit map.
pub struct TrainNet {
    input_shape: Shape3,
    layers: Vec<TLayer>,
    specs: Vec<TrainLayerSpec>,
}

impl fmt::Debug for TrainNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TrainNet")
            .field("input_shape", &self.input_shape)
            .field("specs", &self.specs)
            .finish()
    }
}

impl TrainNet {
    /// Builds a network with deterministic He initialization.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] if a layer geometry cannot be applied.
    pub fn new(
        input_shape: Shape3,
        specs: &[TrainLayerSpec],
        seed: u64,
    ) -> Result<Self, TrainError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers = Vec::with_capacity(specs.len());
        let mut shape = input_shape;
        for spec in specs {
            match spec {
                TrainLayerSpec::Conv(c) => {
                    let geom = tincy_tensor::ConvGeom::new(c.size, c.stride, c.pad);
                    geom.validate(shape).map_err(|e| TrainError {
                        what: e.to_string(),
                    })?;
                    let conv = ConvT::new(shape, c, &mut rng);
                    shape = conv.out_shape;
                    layers.push(TLayer::Conv(Box::new(conv)));
                }
                TrainLayerSpec::MaxPool { size, stride } => {
                    if *size == 0 || *stride == 0 {
                        return Err(TrainError {
                            what: "zero pool geometry".to_owned(),
                        });
                    }
                    let pool = PoolT::new(shape, *size, *stride);
                    shape = pool.out_shape;
                    layers.push(TLayer::Pool(pool));
                }
            }
        }
        Ok(Self {
            input_shape,
            layers,
            specs: specs.to_vec(),
        })
    }

    /// The expected input shape.
    pub fn input_shape(&self) -> Shape3 {
        self.input_shape
    }

    /// The head output shape.
    pub fn output_shape(&self) -> Shape3 {
        self.layers
            .last()
            .map(|l| match l {
                TLayer::Conv(c) => c.out_shape,
                TLayer::Pool(p) => p.out_shape,
            })
            .unwrap_or(self.input_shape)
    }

    /// The layer specifications this network was built from.
    pub fn specs(&self) -> &[TrainLayerSpec] {
        &self.specs
    }

    /// Forward pass, caching intermediates for [`TrainNet::backward`].
    pub fn forward(&mut self, x: &Tensor<f32>) -> Tensor<f32> {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = match layer {
                TLayer::Conv(c) => c.forward(&cur),
                TLayer::Pool(p) => p.forward(&cur),
            };
        }
        cur
    }

    /// Backward pass from the head gradient; accumulates parameter
    /// gradients.
    ///
    /// # Panics
    ///
    /// Panics if called without a preceding [`TrainNet::forward`].
    pub fn backward(&mut self, dhead: &Tensor<f32>) {
        let mut grad = dhead.clone();
        for layer in self.layers.iter_mut().rev() {
            grad = match layer {
                TLayer::Conv(c) => c.backward(&grad),
                TLayer::Pool(p) => p.backward(&grad),
            };
        }
    }

    /// Clears all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            if let TLayer::Conv(c) = layer {
                c.dw.iter_mut().for_each(|v| *v = 0.0);
                c.db.iter_mut().for_each(|v| *v = 0.0);
            }
        }
    }

    /// Visits every `(parameters, gradients)` pair — the optimizer hook.
    pub fn visit_params(&mut self, mut f: impl FnMut(&mut [f32], &[f32])) {
        for layer in &mut self.layers {
            if let TLayer::Conv(c) = layer {
                f(&mut c.w, &c.dw);
                f(&mut c.b, &c.db);
            }
        }
    }

    /// Global L2 norm of the accumulated gradients.
    pub fn grad_norm(&mut self) -> f32 {
        let mut sum = 0.0f32;
        self.visit_params(|_, g| sum += g.iter().map(|v| v * v).sum::<f32>());
        sum.sqrt()
    }

    /// Scales all accumulated gradients by `factor` (gradient clipping).
    pub fn scale_gradients(&mut self, factor: f32) {
        for layer in &mut self.layers {
            if let TLayer::Conv(c) = layer {
                c.dw.iter_mut().for_each(|v| *v *= factor);
                c.db.iter_mut().for_each(|v| *v *= factor);
            }
        }
    }

    /// Total trainable parameters.
    pub fn num_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(|w, _| n += w.len());
        n
    }

    /// Exports the trained parameters layer by layer for deployment (the
    /// FINN offline flow consumes this to build the fabric configuration).
    pub fn export(&self) -> Vec<ExportedLayer> {
        self.layers
            .iter()
            .map(|layer| match layer {
                TLayer::Conv(c) => ExportedLayer::Conv {
                    weights: c.w.clone(),
                    bias: c.b.clone(),
                    in_shape: c.in_shape,
                    out_shape: c.out_shape,
                    geom: c.geom,
                    act: c.act,
                    quant: c.quant,
                },
                TLayer::Pool(p) => ExportedLayer::Pool {
                    in_shape: p.in_shape,
                    out_shape: p.out_shape,
                    geom: p.geom,
                },
            })
            .collect()
    }

    /// Sets the quantization mode of the layer that *feeds* the hidden
    /// stack (the first conv): its output activations are discretized so
    /// the deployed fabric sees exactly the QAT feature map.
    pub fn quantize_input_activations(&mut self, act_step: f32) {
        if let Some(TLayer::Conv(c)) = self
            .layers
            .iter_mut()
            .find(|l| matches!(l, TLayer::Conv(_)))
        {
            if c.quant == QuantMode::Float {
                c.quant = QuantMode::A3Only { act_step };
            }
        }
    }

    /// Switches the quantization mode of the *hidden* conv layers (all conv
    /// layers except the first and the last) — the paper's quantization
    /// boundary: input and output layers are quantization sensitive and stay
    /// high precision (§III-A).
    pub fn set_hidden_quant(&mut self, quant: QuantMode) {
        let conv_indices: Vec<usize> = self
            .layers
            .iter()
            .enumerate()
            .filter_map(|(i, l)| matches!(l, TLayer::Conv(_)).then_some(i))
            .collect();
        if conv_indices.len() <= 2 {
            return;
        }
        for &i in &conv_indices[1..conv_indices.len() - 1] {
            if let TLayer::Conv(c) = &mut self.layers[i] {
                c.quant = quant;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Act, TrainConvSpec};

    fn specs() -> Vec<TrainLayerSpec> {
        vec![
            TrainLayerSpec::Conv(TrainConvSpec {
                filters: 4,
                size: 3,
                stride: 2,
                pad: 1,
                act: Act::Relu,
                quant: QuantMode::Float,
            }),
            TrainLayerSpec::MaxPool { size: 2, stride: 2 },
            TrainLayerSpec::Conv(TrainConvSpec {
                filters: 6,
                size: 3,
                stride: 1,
                pad: 1,
                act: Act::Relu,
                quant: QuantMode::Float,
            }),
            TrainLayerSpec::Conv(TrainConvSpec {
                filters: 7,
                size: 1,
                stride: 1,
                pad: 0,
                act: Act::Linear,
                quant: QuantMode::Float,
            }),
        ]
    }

    #[test]
    fn shapes_chain() {
        let net = TrainNet::new(Shape3::new(3, 16, 16), &specs(), 1).unwrap();
        assert_eq!(net.output_shape(), Shape3::new(7, 4, 4));
    }

    #[test]
    fn forward_backward_round_trip() {
        let mut net = TrainNet::new(Shape3::new(3, 16, 16), &specs(), 1).unwrap();
        let x = Tensor::filled(Shape3::new(3, 16, 16), 0.4f32);
        let y = net.forward(&x);
        net.backward(&y);
        let mut total_grad = 0.0f32;
        net.visit_params(|_, g| total_grad += g.iter().map(|v| v.abs()).sum::<f32>());
        assert!(total_grad > 0.0);
        net.zero_grad();
        let mut after = 0.0f32;
        net.visit_params(|_, g| after += g.iter().map(|v| v.abs()).sum::<f32>());
        assert_eq!(after, 0.0);
    }

    #[test]
    fn deterministic_init() {
        let mut a = TrainNet::new(Shape3::new(3, 16, 16), &specs(), 5).unwrap();
        let mut b = TrainNet::new(Shape3::new(3, 16, 16), &specs(), 5).unwrap();
        let x = Tensor::filled(Shape3::new(3, 16, 16), 0.4f32);
        assert_eq!(a.forward(&x), b.forward(&x));
    }

    #[test]
    fn hidden_quant_spares_first_and_last_conv() {
        let mut net = TrainNet::new(Shape3::new(3, 16, 16), &specs(), 1).unwrap();
        net.set_hidden_quant(QuantMode::W1A3 { act_step: 0.25 });
        let modes: Vec<QuantMode> = net
            .layers
            .iter()
            .filter_map(|l| match l {
                TLayer::Conv(c) => Some(c.quant),
                TLayer::Pool(_) => None,
            })
            .collect();
        assert_eq!(modes[0], QuantMode::Float);
        assert_eq!(modes[1], QuantMode::W1A3 { act_step: 0.25 });
        assert_eq!(modes[2], QuantMode::Float);
    }

    #[test]
    fn invalid_geometry_rejected() {
        let bad = vec![TrainLayerSpec::Conv(TrainConvSpec {
            filters: 2,
            size: 9,
            stride: 1,
            pad: 0,
            act: Act::Relu,
            quant: QuantMode::Float,
        })];
        assert!(TrainNet::new(Shape3::new(1, 4, 4), &bad, 0).is_err());
    }
}
