//! Frontier → servable variant set.
//!
//! `tincy explore --frontier-out` writes the Pareto frontier as JSON;
//! this module turns that file back into instantiable design points so
//! a serve process can host several frontier picks as one variant
//! ladder (`tincy serve --variants frontier.json`). Point ids are the
//! stable `"{edits}/{profile}/pe{P}x{S}"` form, so the round trip needs
//! no extra serialization — the id *is* the design point.

use crate::design::{DesignPoint, EditSet, HiddenProfile};
use tincy_nn::ModelSpec;
use tincy_tensor::Shape3;

/// One frontier pick, parsed back into an instantiable design point.
#[derive(Debug, Clone)]
pub struct FrontierVariant {
    /// Stable point id (`"a+bc+d/w1a3/pe16x16"`).
    pub id: String,
    /// Accuracy proxy from the report (the ladder ordering key).
    pub accuracy: f64,
    /// Modeled pipelined throughput from the report.
    pub fps: f64,
    /// The reconstructed design point.
    pub point: DesignPoint,
}

impl FrontierVariant {
    /// The servable model at a given square input size: the design
    /// point's `ModelSpec`, rescaled from the sweep's 416×416 to the
    /// serve input (the topology, folds, precisions and weight seed are
    /// size-independent, so bit-exactness probes carry over).
    pub fn model_at(&self, input: usize) -> ModelSpec {
        let mut model = self.point.model();
        let channels = model.network.input.channels;
        model.network.input = Shape3::new(channels, input, input);
        model
    }
}

/// Parses a stable point id back into its design point.
///
/// # Errors
///
/// Describes the malformed component (edit label, profile label or fold
/// geometry).
pub fn point_from_id(id: &str) -> Result<DesignPoint, String> {
    let mut parts = id.split('/');
    let (edits_label, profile_label, fold_label) =
        match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(e), Some(p), Some(f), None) => (e, p, f),
            _ => {
                return Err(format!(
                    "malformed point id {id:?}: want edits/profile/peNxM"
                ))
            }
        };
    let edits = EditSet::ALL
        .into_iter()
        .find(|e| e.label() == edits_label)
        .ok_or_else(|| format!("unknown edit set {edits_label:?} in {id:?}"))?;
    let profile = HiddenProfile::ALL
        .into_iter()
        .find(|p| p.label() == profile_label)
        .ok_or_else(|| format!("unknown precision profile {profile_label:?} in {id:?}"))?;
    let fold = fold_label
        .strip_prefix("pe")
        .ok_or_else(|| format!("malformed fold {fold_label:?} in {id:?}"))?;
    let (pe, simd) = fold
        .split_once('x')
        .ok_or_else(|| format!("malformed fold {fold_label:?} in {id:?}"))?;
    let pe: usize = pe
        .parse()
        .map_err(|_| format!("bad pe in {fold_label:?}"))?;
    let simd: usize = simd
        .parse()
        .map_err(|_| format!("bad simd in {fold_label:?}"))?;
    Ok(DesignPoint {
        edits,
        profile,
        pe,
        simd,
    })
}

/// Parses a frontier report (the `tincy explore --frontier-out` JSON)
/// into servable variants: frontier points only, offloadable profiles
/// only (serving needs a fabric segment for the FINN path), fastest
/// first as the report orders them.
///
/// # Errors
///
/// Propagates JSON parse failures, a missing/empty `frontier` array and
/// malformed point ids.
pub fn servable_variants(json: &str) -> Result<Vec<FrontierVariant>, String> {
    let root = tincy_json::parse(json)?;
    let frontier = root
        .get("frontier")
        .and_then(|f| f.as_arr())
        .ok_or_else(|| "frontier report has no \"frontier\" array".to_string())?;
    let mut variants = Vec::new();
    for entry in frontier {
        let id = entry
            .get("id")
            .and_then(|v| v.as_str())
            .ok_or_else(|| "frontier point without an \"id\"".to_string())?;
        let point = point_from_id(id)?;
        if !point.profile.offloadable() {
            continue;
        }
        point.legal_fold()?;
        let accuracy = entry
            .get("accuracy_proxy")
            .and_then(|v| v.as_f64())
            .ok_or_else(|| format!("frontier point {id:?} without accuracy_proxy"))?;
        let fps = entry.get("fps").and_then(|v| v.as_f64()).unwrap_or(0.0);
        variants.push(FrontierVariant {
            id: id.to_string(),
            accuracy,
            fps,
            point,
        });
    }
    if variants.is_empty() {
        return Err("frontier has no servable (offloadable) points".to_string());
    }
    Ok(variants)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::report_json;
    use crate::sweep::{run_sweep, SweepConfig};

    #[test]
    fn point_id_round_trips() {
        for edits in EditSet::ALL {
            for profile in HiddenProfile::ALL {
                let point = DesignPoint {
                    edits,
                    profile,
                    pe: 8,
                    simd: 4,
                };
                assert_eq!(point_from_id(&point.id()).unwrap(), point);
            }
        }
        assert!(point_from_id("a+bc+d/w1a3").is_err());
        assert!(point_from_id("zz/w1a3/pe4x4").is_err());
        assert!(point_from_id("a/w9a9/pe4x4").is_err());
        assert!(point_from_id("a/w1a3/4x4").is_err());
    }

    #[test]
    fn frontier_report_yields_servable_variants() {
        let report = run_sweep(&SweepConfig {
            pe_bounds: (4, 16),
            simd_bounds: (4, 16),
            ..SweepConfig::default()
        });
        let variants = servable_variants(&report_json(&report)).unwrap();
        assert!(!variants.is_empty());
        for v in &variants {
            assert!(v.point.profile.offloadable(), "{} not servable", v.id);
            assert_eq!(v.point.id(), v.id);
            let model = v.model_at(64);
            assert_eq!(model.network.input.height, 64);
            model.validate().unwrap();
        }
        // The paper's shipped point is on the frontier and comes back.
        assert!(variants.iter().any(|v| v.point == DesignPoint::PAPER));
    }

    #[test]
    fn malformed_reports_are_rejected() {
        assert!(servable_variants("{}").is_err());
        assert!(servable_variants("{\"frontier\":[]}").is_err());
        assert!(servable_variants("{\"frontier\":[{\"fps\":1.0}]}").is_err());
    }
}
