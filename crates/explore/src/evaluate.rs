//! Design-point evaluation: throughput from the calibrated stage budget
//! and the FINN cycle model, accuracy from a Table IV-calibrated proxy,
//! resources from the `tincy-finn` bill-of-materials estimator.

use crate::design::{hidden_convs, hidden_offloadable};
use tincy_finn::engine::EngineConfig;
use tincy_finn::{model_estimate, ResourceEstimate};
use tincy_nn::{LayerSpec, ModelSpec, NetworkSpec};
use tincy_perf::calib;
use tincy_perf::fabric::{fabric_hidden_ms, HiddenConvDims};
use tincy_perf::pipeline_model::{pipelined_fps, PipelineModel};
use tincy_perf::stages::{StageBudget, StageId};
use tincy_quant::ActPrecision;

/// AXI stream width used for weight swaps, bits per cycle (matches the
/// ladder's assumption).
const AXI_BITS_PER_CYCLE: u64 = 128;

/// Table IV: Tiny YOLO floating-point baseline, mAP %.
const BASE_MAP: f64 = 57.1;
/// Table IV: 47.8 → 47.2 across "+(b)(c)" — slimming layers 13/14 costs
/// more than widening layer 3 recovers.
const SLIM_DELTA: f64 = -0.6;
/// Table IV: 47.2 → 48.5 across "+(d)" — the lean input convolution
/// *gains* accuracy (retraining absorbs the removed pool).
const LEAN_DELTA: f64 = 1.3;
/// Table IV: 57.1 → 47.8 from quantizing the hidden layers to `[W1A3]`
/// (the first/last layers' `[W8A8]` is modelled as lossless).
const A3_PENALTY: f64 = 9.3;
/// Severity multiplier for binary activations relative to 3-bit ones
/// (§II: accuracy degrades steeply below 3 bits).
const A1_SEVERITY: f64 = 1.8;

/// Reference operation counts anchoring the measured per-stage kernel
/// times, derived from the paper's own topologies: CPU stage costs scale
/// linearly in ops from these anchors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Calibration {
    /// Tiny YOLO first conv (stride 1) ops ↔ [`calib::CUSTOM_I16_MS`].
    pub input_stride1_ops: u64,
    /// Tincy YOLO first conv (stride 2) ops ↔ [`calib::LEAN_INPUT_CONV_MS`].
    pub input_stride2_ops: u64,
    /// Tiny YOLO first max-pool ops ↔ [`calib::MAX_POOL_MS`].
    pub pool_ops: u64,
    /// Tiny YOLO hidden segment ops ↔ [`calib::HIDDEN_LAYERS_MS`].
    pub hidden_ops: u64,
    /// Tincy YOLO output conv ops ↔ [`calib::OUTPUT_LAYER_MS`] (the
    /// ladder carries the Table III output time through unchanged, so the
    /// anchor is the shipped network's head).
    pub output_ops: u64,
}

impl Calibration {
    /// Derives the anchors from the paper's Tiny and Tincy topologies.
    pub fn paper() -> Self {
        let tiny = Segments::of(&tincy_core::tiny_yolo());
        let tincy = Segments::of(&tincy_core::tincy_yolo());
        Self {
            input_stride1_ops: tiny.input_ops,
            input_stride2_ops: tincy.input_ops,
            pool_ops: tiny.pool_ops,
            hidden_ops: tiny.hidden_ops,
            output_ops: tincy.output_ops,
        }
    }
}

/// A network cut into the Table III stages: input conv, first pool,
/// hidden segment, output conv.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Segments {
    input_ops: u64,
    input_stride: usize,
    pool_ops: u64,
    hidden_ops: u64,
    output_ops: u64,
}

impl Segments {
    fn of(spec: &NetworkSpec) -> Self {
        let conv_positions: Vec<usize> = spec
            .layers
            .iter()
            .enumerate()
            .filter_map(|(i, l)| matches!(l, LayerSpec::Conv(_)).then_some(i))
            .collect();
        let first = *conv_positions.first().expect("network has a conv");
        let last = *conv_positions.last().expect("network has a conv");
        let ops = spec.ops_per_layer();
        let input_stride = match &spec.layers[first] {
            LayerSpec::Conv(c) => c.stride,
            _ => unreachable!("position filtered to convs"),
        };
        // The first pool is part of the Max Pool stage; every other layer
        // between the input and output convs belongs to the hidden stage.
        let first_pool = spec
            .layers
            .get(first + 1)
            .filter(|l| matches!(l, LayerSpec::MaxPool(_)))
            .map(|_| first + 1);
        let hidden_start = first_pool.map_or(first + 1, |p| p + 1);
        Self {
            input_ops: ops[first],
            input_stride,
            pool_ops: first_pool.map_or(0, |p| ops[p]),
            hidden_ops: ops[hidden_start..last].iter().sum(),
            output_ops: ops[last],
        }
    }
}

/// The evaluated objectives and their supporting detail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// Pipelined throughput (§III-F model), fps.
    pub fps: f64,
    /// Table IV-calibrated accuracy proxy, mAP %.
    pub accuracy: f64,
    /// Fabric bill of materials (zero when nothing is offloaded).
    pub resource: ResourceEstimate,
    /// Whether the hidden segment runs on the fabric.
    pub offloaded: bool,
    /// Modelled hidden-segment time, ms.
    pub hidden_ms: f64,
    /// Modelled sequential frame time, ms.
    pub frame_ms: f64,
}

/// Evaluates a design point's model against the calibrated performance,
/// accuracy and resource models. Works on any [`ModelSpec`] in the Tiny
/// YOLO family — including explore-selected designs re-loaded from JSON.
pub fn evaluate(model: &ModelSpec, calib: &Calibration) -> Evaluation {
    let budget = stage_budget(model, calib);
    Evaluation {
        fps: pipelined_fps(&budget, PipelineModel::default()),
        accuracy: accuracy_proxy(&model.network),
        resource: model_estimate(model),
        offloaded: hidden_offloadable(&model.network),
        hidden_ms: budget.get(StageId::HiddenLayers),
        frame_ms: budget.total_ms(),
    }
}

/// Assembles the per-stage frame budget for a model: the measured kernel
/// anchors scaled by operation count for CPU stages, the FINN cycle model
/// for an offloaded hidden segment. At the paper's shipped configuration
/// this reproduces the final rung of [`tincy_perf::ladder::speedup_ladder`]
/// exactly.
pub fn stage_budget(model: &ModelSpec, calib: &Calibration) -> StageBudget {
    let spec = &model.network;
    let seg = Segments::of(spec);
    let input_ms = if seg.input_stride >= 2 {
        calib::LEAN_INPUT_CONV_MS * seg.input_ops as f64 / calib.input_stride2_ops as f64
    } else {
        calib::CUSTOM_I16_MS * seg.input_ops as f64 / calib.input_stride1_ops as f64
    };
    let pool_ms = calib::MAX_POOL_MS * seg.pool_ops as f64 / calib.pool_ops as f64;
    let hidden_ms = if hidden_offloadable(spec) {
        let dims: Vec<HiddenConvDims> = hidden_convs(spec)
            .iter()
            .map(|(c, in_shape)| HiddenConvDims {
                in_shape: *in_shape,
                out_channels: c.filters,
                geom: c.geom(),
            })
            .collect();
        fabric_hidden_ms(&dims, EngineConfig::from(model.fold), AXI_BITS_PER_CYCLE)
    } else {
        calib::HIDDEN_LAYERS_MS * seg.hidden_ops as f64 / calib.hidden_ops as f64
    };
    let output_ms = calib::OUTPUT_LAYER_MS * seg.output_ops as f64 / calib.output_ops as f64;
    StageBudget::paper_baseline()
        .with(StageId::InputLayer, input_ms)
        .with(StageId::MaxPool, pool_ms)
        .with(StageId::HiddenLayers, hidden_ms)
        .with(StageId::OutputLayer, output_ms)
}

/// Accuracy proxy calibrated on Table IV: the float Tiny YOLO baseline,
/// per-edit deltas, and a hidden-quantization penalty proportional to how
/// hard the hidden activations are quantized. Reproduces all four
/// published columns.
pub fn accuracy_proxy(spec: &NetworkSpec) -> f64 {
    let hidden = hidden_convs(spec);
    let mut map = BASE_MAP;
    // (b)+(c): no hidden layer is 1024 wide any more.
    if !hidden.is_empty() && hidden.iter().all(|(c, _)| c.filters < 1024) {
        map += SLIM_DELTA;
    }
    // (d): the network opens with a stride-2 convolution.
    if let Some(LayerSpec::Conv(c)) = spec.layers.first() {
        if c.stride >= 2 {
            map += LEAN_DELTA;
        }
    }
    if !hidden.is_empty() {
        let mean_severity = hidden
            .iter()
            .map(|(c, _)| match c.precision.activations {
                ActPrecision::A3 => 1.0,
                ActPrecision::A1 => A1_SEVERITY,
                // 8-bit and float hidden activations are modelled as
                // lossless (the Table IV calibration attributes the whole
                // 9.3-point drop to the [W1A3] hidden stack).
                ActPrecision::A8 | ActPrecision::Float => 0.0,
            })
            .sum::<f64>()
            / hidden.len() as f64;
        map -= A3_PENALTY * mean_severity;
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::{DesignPoint, EditSet, HiddenProfile};
    use tincy_perf::ladder::speedup_ladder;

    fn eval(point: DesignPoint) -> Evaluation {
        evaluate(&point.model(), &Calibration::paper())
    }

    #[test]
    fn calibration_anchors_match_the_paper_op_counts() {
        let c = Calibration::paper();
        assert_eq!(c.input_stride1_ops, 149_520_384);
        assert_eq!(c.input_stride2_ops, 37_380_096);
        assert_eq!(c.output_ops, 21_632_000);
    }

    #[test]
    fn paper_point_matches_the_ladder_exactly() {
        let ladder_fps = speedup_ladder().last().unwrap().fps;
        let eval = eval(DesignPoint::PAPER);
        assert_eq!(eval.fps, ladder_fps);
        assert!(eval.offloaded);
    }

    #[test]
    fn paper_point_budget_reproduces_the_optimized_stages() {
        let budget = stage_budget(&DesignPoint::PAPER.model(), &Calibration::paper());
        assert_eq!(budget.get(StageId::InputLayer), calib::LEAN_INPUT_CONV_MS);
        assert_eq!(budget.get(StageId::MaxPool), 0.0);
        assert_eq!(budget.get(StageId::OutputLayer), calib::OUTPUT_LAYER_MS);
        let hidden = budget.get(StageId::HiddenLayers);
        assert!((25.0..35.0).contains(&hidden), "hidden {hidden} ms");
    }

    #[test]
    fn accuracy_proxy_reproduces_table_four() {
        let col = |edits| {
            accuracy_proxy(
                &DesignPoint {
                    edits,
                    profile: HiddenProfile::W1A3,
                    pe: 16,
                    simd: 16,
                }
                .network(),
            )
        };
        let a_only = EditSet {
            a: true,
            bc: false,
            d: false,
        };
        let abc = EditSet {
            a: true,
            bc: true,
            d: false,
        };
        assert!((col(a_only) - 47.8).abs() < 1e-9);
        assert!((col(abc) - 47.2).abs() < 1e-9);
        assert!((col(EditSet::PAPER) - 48.5).abs() < 1e-9);
    }

    #[test]
    fn float_tiny_baseline_scores_the_published_map() {
        let tiny = tincy_core::tiny_yolo();
        assert!((accuracy_proxy(&tiny) - BASE_MAP).abs() < 1e-9);
    }

    #[test]
    fn cpu_hidden_stack_is_orders_of_magnitude_slower() {
        let cpu = eval(DesignPoint {
            profile: HiddenProfile::W8A8,
            ..DesignPoint::PAPER
        });
        let fabric = eval(DesignPoint::PAPER);
        assert!(!cpu.offloaded);
        assert_eq!(cpu.resource, ResourceEstimate::default());
        assert!(cpu.hidden_ms > 100.0 * fabric.hidden_ms);
        assert!(cpu.fps < fabric.fps / 10.0);
    }

    #[test]
    fn bigger_folds_are_not_slower_and_cost_more_luts() {
        let small = eval(DesignPoint {
            pe: 8,
            simd: 8,
            ..DesignPoint::PAPER
        });
        let big = eval(DesignPoint {
            pe: 32,
            simd: 16,
            ..DesignPoint::PAPER
        });
        assert!(big.hidden_ms < small.hidden_ms);
        assert!(big.fps >= small.fps);
        assert!(big.resource.luts > small.resource.luts);
    }

    #[test]
    fn binary_activations_trade_accuracy_for_luts() {
        let a3 = eval(DesignPoint::PAPER);
        let a1 = eval(DesignPoint {
            profile: HiddenProfile::W1A1,
            ..DesignPoint::PAPER
        });
        assert!(a1.accuracy < a3.accuracy);
        assert!(a1.resource.luts < a3.resource.luts);
        // Same engine fold, same cycle count: throughput unchanged.
        assert_eq!(a1.fps, a3.fps);
    }
}
