//! Pareto dominance over (throughput ↑, accuracy ↑, utilization ↓) and a
//! deterministic frontier fingerprint.

/// The three objective values of one feasible design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Objectives {
    /// Pipelined throughput, fps (maximize).
    pub fps: f64,
    /// Accuracy proxy, mAP % (maximize).
    pub accuracy: f64,
    /// Mean fraction of the resource budget (minimize).
    pub utilization: f64,
}

/// Whether `a` Pareto-dominates `b`: no worse on every objective and
/// strictly better on at least one.
pub fn dominates(a: &Objectives, b: &Objectives) -> bool {
    let no_worse = a.fps >= b.fps && a.accuracy >= b.accuracy && a.utilization <= b.utilization;
    let better = a.fps > b.fps || a.accuracy > b.accuracy || a.utilization < b.utilization;
    no_worse && better
}

/// Indices of the non-dominated points, in input order. Of a group of
/// duplicates (identical objectives) only the first index is kept, so the
/// frontier is both minimal and deterministic.
pub fn pareto_frontier(points: &[Objectives]) -> Vec<usize> {
    let mut frontier = Vec::new();
    'candidate: for (i, p) in points.iter().enumerate() {
        for (j, q) in points.iter().enumerate() {
            if i != j && (dominates(q, p) || (q == p && j < i)) {
                continue 'candidate;
            }
        }
        frontier.push(i);
    }
    frontier
}

/// FNV-1a 64-bit hash over the sorted lines — a stable fingerprint for a
/// frontier summary that is independent of enumeration order.
pub fn fingerprint(lines: &[String]) -> u64 {
    let mut sorted: Vec<&String> = lines.iter().collect();
    sorted.sort();
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for line in sorted {
        for byte in line.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash ^= u64::from(b'\n');
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn obj(fps: f64, accuracy: f64, utilization: f64) -> Objectives {
        Objectives {
            fps,
            accuracy,
            utilization,
        }
    }

    #[test]
    fn dominance_requires_strict_improvement() {
        let a = obj(10.0, 50.0, 0.5);
        assert!(!dominates(&a, &a));
        assert!(dominates(&obj(11.0, 50.0, 0.5), &a));
        assert!(dominates(&obj(10.0, 50.0, 0.4), &a));
        // Trade-offs do not dominate.
        assert!(!dominates(&obj(11.0, 49.0, 0.5), &a));
        assert!(!dominates(&a, &obj(11.0, 49.0, 0.5)));
    }

    #[test]
    fn frontier_drops_dominated_and_duplicate_points() {
        let points = vec![
            obj(10.0, 50.0, 0.5),
            obj(5.0, 40.0, 0.6),  // dominated by the first
            obj(12.0, 45.0, 0.7), // trade-off: kept
            obj(10.0, 50.0, 0.5), // duplicate: dropped
        ];
        assert_eq!(pareto_frontier(&points), vec![0, 2]);
    }

    #[test]
    fn fingerprint_is_order_insensitive_and_collision_averse() {
        let a = vec!["x|1".to_owned(), "y|2".to_owned()];
        let b = vec!["y|2".to_owned(), "x|1".to_owned()];
        assert_eq!(fingerprint(&a), fingerprint(&b));
        let c = vec!["x|1".to_owned(), "y|3".to_owned()];
        assert_ne!(fingerprint(&a), fingerprint(&c));
        // Line boundaries matter: ["ab"] != ["a", "b"].
        assert_ne!(
            fingerprint(&["ab".to_owned()]),
            fingerprint(&["a".to_owned(), "b".to_owned()])
        );
    }

    proptest! {
        #[test]
        fn frontier_invariants_hold(
            raw in proptest::collection::vec((0u32..40, 0u32..40, 0u32..40), 1..60)
        ) {
            let points: Vec<Objectives> = raw
                .iter()
                .map(|&(f, a, u)| obj(f64::from(f), f64::from(a), f64::from(u) / 40.0))
                .collect();
            let frontier = pareto_frontier(&points);
            prop_assert!(!frontier.is_empty());
            // No frontier point is dominated by any point.
            for &i in &frontier {
                for q in &points {
                    prop_assert!(!dominates(q, &points[i]));
                }
            }
            // Every excluded point is dominated by (or duplicates) a
            // frontier point.
            for (j, q) in points.iter().enumerate() {
                if !frontier.contains(&j) {
                    prop_assert!(
                        frontier
                            .iter()
                            .any(|&i| dominates(&points[i], q) || points[i] == *q),
                        "point {j} excluded but neither dominated nor duplicate"
                    );
                }
            }
        }
    }
}
