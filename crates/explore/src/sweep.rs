//! The sweep driver: enumerate candidate designs, prune infeasible ones,
//! evaluate the rest and extract the Pareto frontier.

use crate::design::{hidden_has_leaky, DesignPoint, EditSet, HiddenProfile};
use crate::evaluate::{evaluate, Calibration, Evaluation};
use crate::frontier::{fingerprint, pareto_frontier, Objectives};
use tincy_finn::{FpgaDevice, ResourceEstimate};
use tincy_nn::FoldSpec;

/// Per-axis caps the fabric bill of materials must stay within.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceBudget {
    /// 6-input look-up tables.
    pub luts: u64,
    /// 36 Kib block RAMs.
    pub bram36: u64,
    /// DSP48 slices.
    pub dsps: u64,
}

impl ResourceBudget {
    /// A device's budget at a utilization ceiling (routable occupation).
    pub fn of_device(device: &FpgaDevice, ceiling: f64) -> Self {
        Self {
            luts: (device.luts as f64 * ceiling) as u64,
            bram36: (device.bram36 as f64 * ceiling) as u64,
            dsps: (device.dsps as f64 * ceiling) as u64,
        }
    }

    /// Whether an estimate fits within every axis cap.
    pub fn admits(&self, estimate: &ResourceEstimate) -> bool {
        estimate.luts <= self.luts && estimate.bram36 <= self.bram36 && estimate.dsps <= self.dsps
    }

    /// Mean fraction of the budget an estimate consumes, averaged over
    /// the LUT/BRAM/DSP axes. The mean (rather than the worst axis) keeps
    /// the utilization objective sensitive to LUT growth even when BRAM —
    /// fixed by the largest layer's weight store — is the critical axis.
    /// An axis with a zero cap contributes 0 when unused and `inf` when
    /// used.
    pub fn utilization(&self, estimate: &ResourceEstimate) -> f64 {
        let frac = |used: u64, cap: u64| {
            if used == 0 {
                0.0
            } else if cap == 0 {
                f64::INFINITY
            } else {
                used as f64 / cap as f64
            }
        };
        (frac(estimate.luts, self.luts)
            + frac(estimate.bram36, self.bram36)
            + frac(estimate.dsps, self.dsps))
            / 3.0
    }
}

/// Sweep bounds and feasibility budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepConfig {
    /// Inclusive power-of-two PE range.
    pub pe_bounds: (usize, usize),
    /// Inclusive power-of-two SIMD range.
    pub simd_bounds: (usize, usize),
    /// Target device (named in the report; the default budget derives
    /// from it).
    pub device: FpgaDevice,
    /// Resource caps candidate engines must fit.
    pub budget: ResourceBudget,
}

impl Default for SweepConfig {
    fn default() -> Self {
        let device = FpgaDevice::XCZU3EG;
        Self {
            pe_bounds: (4, 64),
            simd_bounds: (4, 64),
            device,
            budget: ResourceBudget::of_device(&device, 0.9),
        }
    }
}

impl SweepConfig {
    fn powers(bounds: (usize, usize)) -> Vec<usize> {
        let mut out = Vec::new();
        let mut v = bounds.0.max(1).next_power_of_two();
        while v <= bounds.1 {
            out.push(v);
            v *= 2;
        }
        out
    }

    /// Every candidate design within the bounds, in deterministic sweep
    /// order. Non-offloadable profiles need no engine, so they are
    /// enumerated once per edit subset at the shipped fold rather than
    /// once per fold.
    pub fn enumerate(&self) -> Vec<DesignPoint> {
        let pes = Self::powers(self.pe_bounds);
        let simds = Self::powers(self.simd_bounds);
        let mut points = Vec::new();
        for edits in EditSet::ALL {
            for profile in HiddenProfile::ALL {
                if !profile.offloadable() {
                    points.push(DesignPoint {
                        edits,
                        profile,
                        pe: FoldSpec::SHIPPED.pe,
                        simd: FoldSpec::SHIPPED.simd,
                    });
                    continue;
                }
                for &pe in &pes {
                    for &simd in &simds {
                        points.push(DesignPoint {
                            edits,
                            profile,
                            pe,
                            simd,
                        });
                    }
                }
            }
        }
        points
    }
}

/// Why a candidate was pruned before (or at) evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PruneCounts {
    /// Fold does not divide some offloaded layer's geometry.
    pub illegal_fold: usize,
    /// Offloadable precision but leaky ReLU in the hidden stack — the
    /// threshold activations cannot express it (needs edit (a)).
    pub undeployable: usize,
    /// Engine estimate exceeds the resource budget.
    pub over_budget: usize,
}

impl PruneCounts {
    /// Total pruned candidates.
    pub fn total(&self) -> usize {
        self.illegal_fold + self.undeployable + self.over_budget
    }
}

/// One feasible, evaluated design point.
#[derive(Debug, Clone, PartialEq)]
pub struct EvaluatedPoint {
    /// The design coordinates.
    pub point: DesignPoint,
    /// Modelled objectives and detail.
    pub eval: Evaluation,
    /// Mean budget fraction across the resource axes.
    pub utilization: f64,
    /// Whether the point survived Pareto pruning.
    pub on_frontier: bool,
}

impl EvaluatedPoint {
    fn objectives(&self) -> Objectives {
        Objectives {
            fps: self.eval.fps,
            accuracy: self.eval.accuracy,
            utilization: self.utilization,
        }
    }

    /// The canonical summary line fingerprints are built from.
    pub fn summary(&self) -> String {
        format!(
            "{}|{:.4}|{:.4}|{:.6}|{}|{}|{}",
            self.point.id(),
            self.eval.fps,
            self.eval.accuracy,
            self.utilization,
            self.eval.resource.luts,
            self.eval.resource.bram36,
            self.eval.resource.dsps,
        )
    }
}

/// The result of one sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreReport {
    /// The sweep configuration that produced the report.
    pub config: SweepConfig,
    /// Candidates enumerated.
    pub enumerated: usize,
    /// Candidates pruned, by reason.
    pub pruned: PruneCounts,
    /// Feasible evaluated points, in sweep order.
    pub feasible: Vec<EvaluatedPoint>,
    /// Indices into `feasible` of the Pareto frontier, in sweep order.
    pub frontier: Vec<usize>,
    /// FNV-1a fingerprint of the frontier summaries (order-independent).
    pub fingerprint: u64,
}

impl ExploreReport {
    /// The frontier points, in sweep order.
    pub fn frontier_points(&self) -> impl Iterator<Item = &EvaluatedPoint> {
        self.frontier.iter().map(|&i| &self.feasible[i])
    }

    /// Index (into `feasible`) of the paper's shipped configuration.
    pub fn paper_index(&self) -> Option<usize> {
        self.feasible
            .iter()
            .position(|p| p.point == DesignPoint::PAPER)
    }

    /// Distinct edit-subset labels on the frontier.
    pub fn frontier_edit_subsets(&self) -> Vec<String> {
        let mut labels: Vec<String> = self
            .frontier_points()
            .map(|p| p.point.edits.label())
            .collect();
        labels.sort();
        labels.dedup();
        labels
    }

    /// Asserts the reproduction invariants: the paper's shipped design is
    /// feasible, reproduces the ladder's pipelined frame rate, sits on
    /// the frontier, and the frontier is substantial (≥ 10 points over
    /// ≥ 2 edit subsets) and deterministic.
    ///
    /// # Errors
    ///
    /// Describes the first violated invariant.
    pub fn check(&self) -> Result<(), String> {
        let paper = self
            .paper_index()
            .ok_or("paper design point is not in the feasible set")?;
        let paper = &self.feasible[paper];
        let ladder_fps = tincy_perf::ladder::speedup_ladder()
            .last()
            .expect("ladder is non-empty")
            .fps;
        if (paper.eval.fps - ladder_fps).abs() > 1e-9 {
            return Err(format!(
                "paper point models {:.4} fps but the ladder says {ladder_fps:.4}",
                paper.eval.fps
            ));
        }
        if !paper.on_frontier {
            return Err("paper design point is dominated".to_owned());
        }
        if self.frontier.len() < 10 {
            return Err(format!(
                "frontier has only {} points (expected >= 10)",
                self.frontier.len()
            ));
        }
        let subsets = self.frontier_edit_subsets();
        if subsets.len() < 2 {
            return Err(format!(
                "frontier spans only the {subsets:?} edit subset(s)"
            ));
        }
        let rerun = run_sweep(&self.config);
        if rerun.fingerprint != self.fingerprint {
            return Err(format!(
                "sweep is not deterministic: fingerprint {:016x} vs {:016x}",
                self.fingerprint, rerun.fingerprint
            ));
        }
        Ok(())
    }
}

/// Runs a full sweep: enumerate, prune, evaluate, extract the frontier.
pub fn run_sweep(config: &SweepConfig) -> ExploreReport {
    let calib = Calibration::paper();
    let mut pruned = PruneCounts::default();
    let mut feasible = Vec::new();
    let candidates = config.enumerate();
    let enumerated = candidates.len();
    for point in candidates {
        if point.legal_fold().is_err() {
            pruned.illegal_fold += 1;
            continue;
        }
        let model = point.model();
        if point.profile.offloadable() && hidden_has_leaky(&model.network) {
            pruned.undeployable += 1;
            continue;
        }
        let eval = evaluate(&model, &calib);
        if !config.budget.admits(&eval.resource) {
            pruned.over_budget += 1;
            continue;
        }
        feasible.push(EvaluatedPoint {
            point,
            eval,
            utilization: config.budget.utilization(&eval.resource),
            on_frontier: false,
        });
    }
    let objectives: Vec<Objectives> = feasible.iter().map(EvaluatedPoint::objectives).collect();
    let frontier = pareto_frontier(&objectives);
    for &i in &frontier {
        feasible[i].on_frontier = true;
    }
    let summaries: Vec<String> = frontier.iter().map(|&i| feasible[i].summary()).collect();
    let fingerprint = fingerprint(&summaries);
    ExploreReport {
        config: *config,
        enumerated,
        pruned,
        feasible,
        frontier,
        fingerprint,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontier::dominates;
    use tincy_nn::ModelSpec;

    #[test]
    fn default_sweep_passes_its_own_check() {
        let report = run_sweep(&SweepConfig::default());
        report.check().unwrap();
    }

    #[test]
    fn sweep_prunes_for_every_reason() {
        let report = run_sweep(&SweepConfig::default());
        assert!(report.pruned.illegal_fold > 0, "{:?}", report.pruned);
        assert!(report.pruned.undeployable > 0, "{:?}", report.pruned);
        assert_eq!(
            report.enumerated,
            report.pruned.total() + report.feasible.len()
        );
    }

    #[test]
    fn no_frontier_point_is_dominated_and_every_cut_point_is() {
        let report = run_sweep(&SweepConfig::default());
        let objectives: Vec<Objectives> = report
            .feasible
            .iter()
            .map(EvaluatedPoint::objectives)
            .collect();
        for &i in &report.frontier {
            for q in &objectives {
                assert!(!dominates(q, &objectives[i]));
            }
        }
        for (j, q) in objectives.iter().enumerate() {
            if !report.frontier.contains(&j) {
                assert!(
                    report
                        .frontier
                        .iter()
                        .any(|&i| dominates(&objectives[i], q) || objectives[i] == *q),
                    "feasible point {j} neither on the frontier nor dominated"
                );
            }
        }
    }

    #[test]
    fn identically_configured_sweeps_are_identical() {
        let a = run_sweep(&SweepConfig::default());
        let b = run_sweep(&SweepConfig::default());
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a, b);
    }

    #[test]
    fn frontier_models_round_trip_through_json() {
        let report = run_sweep(&SweepConfig::default());
        for point in report.frontier_points() {
            let model = point.point.model();
            let back = ModelSpec::from_json(&model.to_json()).unwrap();
            assert_eq!(back, model, "{} does not round-trip", point.point.id());
        }
    }

    #[test]
    fn starved_budget_evicts_the_paper_point() {
        let config = SweepConfig {
            budget: ResourceBudget {
                luts: 12_000,
                bram36: 16,
                dsps: 0,
            },
            ..SweepConfig::default()
        };
        let report = run_sweep(&config);
        assert!(report.paper_index().is_none());
        assert!(report.check().is_err());
        assert!(report.pruned.over_budget > 0);
    }

    #[test]
    fn tight_bounds_still_contain_the_paper_point() {
        let config = SweepConfig {
            pe_bounds: (4, 16),
            simd_bounds: (4, 16),
            ..SweepConfig::default()
        };
        let report = run_sweep(&config);
        report.check().unwrap();
    }
}
