//! Design-point vocabulary: topology-edit subsets, hidden precision
//! profiles and engine folds, and their mapping to a [`ModelSpec`].

use tincy_core::{tiny_yolo, transform_a, transform_bc, transform_d};
use tincy_nn::{Activation, FoldSpec, LayerSpec, ModelSpec, NetworkSpec};
use tincy_quant::PrecisionConfig;

/// A subset of the paper's §III-E algorithmic transformations. (b) and
/// (c) travel together, as in [`tincy_core::transform_bc`]: widening
/// layer 3 compensates for slimming layers 13/14.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EditSet {
    /// (a): leaky ReLU → ReLU.
    pub a: bool,
    /// (b)+(c): widen layer 3 to 64 channels, slim layers 13/14 to 512.
    pub bc: bool,
    /// (d): drop the first max-pool, stride-2 first convolution.
    pub d: bool,
}

impl EditSet {
    /// Every subset, in a fixed enumeration order (the sweep order).
    pub const ALL: [EditSet; 8] = [
        EditSet::of(false, false, false),
        EditSet::of(true, false, false),
        EditSet::of(false, true, false),
        EditSet::of(false, false, true),
        EditSet::of(true, true, false),
        EditSet::of(true, false, true),
        EditSet::of(false, true, true),
        EditSet::of(true, true, true),
    ];

    const fn of(a: bool, bc: bool, d: bool) -> Self {
        Self { a, bc, d }
    }

    /// The paper's shipped subset: all four transformations.
    pub const PAPER: EditSet = EditSet {
        a: true,
        bc: true,
        d: true,
    };

    /// Human/JSON label, e.g. `"a+bc+d"`; `"none"` for the empty set.
    pub fn label(&self) -> String {
        let mut parts = Vec::new();
        if self.a {
            parts.push("a");
        }
        if self.bc {
            parts.push("bc");
        }
        if self.d {
            parts.push("d");
        }
        if parts.is_empty() {
            "none".to_owned()
        } else {
            parts.join("+")
        }
    }

    /// Applies the subset's rewrites to a network.
    pub fn apply(&self, mut spec: NetworkSpec) -> NetworkSpec {
        if self.a {
            spec = transform_a(spec);
        }
        if self.bc {
            spec = transform_bc(spec);
        }
        if self.d {
            spec = transform_d(spec);
        }
        spec
    }
}

/// Precision assignment for the hidden convolutions (the first and last
/// convolution always stay `[W8A8]` — quantization sensitive, §III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HiddenProfile {
    /// Uniform `[W1A3]` — the paper's shipped choice.
    W1A3,
    /// Uniform `[W1A1]` — the most aggressive offloadable profile.
    W1A1,
    /// Early layers `[W1A3]`, late layers `[W1A1]` (late feature maps
    /// tolerate harder quantization).
    MixedA3A1,
    /// Conservative `[W8A8]` everywhere: no fabric engine, hidden layers
    /// stay on the CPU.
    W8A8,
}

impl HiddenProfile {
    /// Every profile, in sweep order.
    pub const ALL: [HiddenProfile; 4] = [
        HiddenProfile::W1A3,
        HiddenProfile::W1A1,
        HiddenProfile::MixedA3A1,
        HiddenProfile::W8A8,
    ];

    /// Lowercase label used in point ids and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            HiddenProfile::W1A3 => "w1a3",
            HiddenProfile::W1A1 => "w1a1",
            HiddenProfile::MixedA3A1 => "mixed",
            HiddenProfile::W8A8 => "w8a8",
        }
    }

    /// Whether the profile's hidden layers can run on the QNN engine.
    pub fn offloadable(&self) -> bool {
        !matches!(self, HiddenProfile::W8A8)
    }

    /// Precision of hidden convolution `i` of `n`.
    fn precision(&self, i: usize, n: usize) -> PrecisionConfig {
        match self {
            HiddenProfile::W1A3 => PrecisionConfig::W1A3,
            HiddenProfile::W1A1 => PrecisionConfig::W1A1,
            HiddenProfile::MixedA3A1 => {
                if i < n.div_ceil(2) {
                    PrecisionConfig::W1A3
                } else {
                    PrecisionConfig::W1A1
                }
            }
            HiddenProfile::W8A8 => PrecisionConfig::W8A8,
        }
    }

    /// Quantizes a network under this profile: first and last conv to
    /// `[W8A8]`, hidden convs per the profile. The `W1A3` profile
    /// reproduces [`tincy_core::quantize_for_fabric`] exactly.
    pub fn quantize(&self, mut spec: NetworkSpec) -> NetworkSpec {
        let conv_positions: Vec<usize> = spec
            .layers
            .iter()
            .enumerate()
            .filter_map(|(i, l)| matches!(l, LayerSpec::Conv(_)).then_some(i))
            .collect();
        let hidden = conv_positions.len().saturating_sub(2);
        for (n, &i) in conv_positions.iter().enumerate() {
            if let LayerSpec::Conv(c) = &mut spec.layers[i] {
                c.precision = if n == 0 || n + 1 == conv_positions.len() {
                    PrecisionConfig::W8A8
                } else {
                    self.precision(n - 1, hidden)
                };
            }
        }
        spec
    }
}

/// One candidate design: a topology-edit subset, a hidden precision
/// profile and an engine fold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DesignPoint {
    /// Applied topology rewrites.
    pub edits: EditSet,
    /// Hidden-layer precision profile.
    pub profile: HiddenProfile,
    /// Engine output-channel parallelism.
    pub pe: usize,
    /// Engine dot-product parallelism.
    pub simd: usize,
}

impl DesignPoint {
    /// The paper's shipped configuration: (a)–(d), `[W1A3]` hidden
    /// layers, a 16×16 engine.
    pub const PAPER: DesignPoint = DesignPoint {
        edits: EditSet::PAPER,
        profile: HiddenProfile::W1A3,
        pe: 16,
        simd: 16,
    };

    /// Stable identifier, e.g. `"a+bc+d/w1a3/pe16x16"`.
    pub fn id(&self) -> String {
        format!(
            "{}/{}/pe{}x{}",
            self.edits.label(),
            self.profile.label(),
            self.pe,
            self.simd
        )
    }

    /// The quantized network this point describes (Tiny YOLO family,
    /// 416×416 input).
    pub fn network(&self) -> NetworkSpec {
        self.profile.quantize(self.edits.apply(tiny_yolo()))
    }

    /// The engine folding this point describes (clock and pipeline depth
    /// stay at the shipped values; only the parallelism varies).
    pub fn fold(&self) -> FoldSpec {
        FoldSpec {
            pe: self.pe,
            simd: self.simd,
            ..FoldSpec::SHIPPED
        }
    }

    /// The full serializable design point, instantiable by every layer of
    /// the stack (`tincy-train`, `tincy-serve`, …).
    pub fn model(&self) -> ModelSpec {
        ModelSpec {
            name: format!(
                "tincy-dse-{}-{}-pe{}x{}",
                self.edits.label().replace('+', "_"),
                self.profile.label(),
                self.pe,
                self.simd
            ),
            network: self.network(),
            fold: self.fold(),
            act_step: 0.125,
            seed: 1,
        }
    }

    /// Checks fold legality against the network: the fold must divide
    /// every offloaded layer's geometry so the engine schedule has no
    /// ragged remainder. Non-offloadable profiles have no engine and any
    /// fold is trivially legal.
    ///
    /// # Errors
    ///
    /// Describes the first violated constraint.
    pub fn legal_fold(&self) -> Result<(), String> {
        if self.pe == 0 || self.simd == 0 {
            return Err("fold parallelism must be positive".to_owned());
        }
        if !self.profile.offloadable() {
            return Ok(());
        }
        let spec = self.network();
        for (conv, in_shape) in hidden_convs(&spec) {
            if !conv.filters.is_multiple_of(self.pe) {
                return Err(format!(
                    "pe {} does not divide {} output channels",
                    self.pe, conv.filters
                ));
            }
            let dot = conv.geom().dot_length(in_shape.channels);
            if !dot.is_multiple_of(self.simd) {
                return Err(format!(
                    "simd {} does not divide dot length {dot}",
                    self.simd
                ));
            }
        }
        Ok(())
    }
}

/// The hidden convolutions of a network (every conv except the first and
/// last), paired with their input shapes.
pub fn hidden_convs(spec: &NetworkSpec) -> Vec<(&tincy_nn::ConvSpec, tincy_tensor::Shape3)> {
    let conv_positions: Vec<usize> = spec
        .layers
        .iter()
        .enumerate()
        .filter_map(|(i, l)| matches!(l, LayerSpec::Conv(_)).then_some(i))
        .collect();
    if conv_positions.len() < 3 {
        return Vec::new();
    }
    conv_positions[1..conv_positions.len() - 1]
        .iter()
        .map(|&i| match &spec.layers[i] {
            LayerSpec::Conv(c) => (c, spec.input_shape_of(i)),
            _ => unreachable!("position filtered to convs"),
        })
        .collect()
}

/// Whether every hidden convolution carries an offloadable precision.
pub fn hidden_offloadable(spec: &NetworkSpec) -> bool {
    let hidden = hidden_convs(spec);
    !hidden.is_empty() && hidden.iter().all(|(c, _)| c.precision.offloadable())
}

/// Whether any hidden convolution still uses leaky ReLU — the FINN
/// engine's threshold activations cannot express it (the motivation for
/// transformation (a), §III-E).
pub fn hidden_has_leaky(spec: &NetworkSpec) -> bool {
    hidden_convs(spec)
        .iter()
        .any(|(c, _)| c.activation == Activation::Leaky)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tincy_core::tincy_yolo;

    #[test]
    fn paper_point_network_is_tincy_yolo() {
        assert_eq!(DesignPoint::PAPER.network(), tincy_yolo());
        assert_eq!(DesignPoint::PAPER.fold(), FoldSpec::SHIPPED);
    }

    #[test]
    fn every_subset_and_profile_validates() {
        for edits in EditSet::ALL {
            for profile in HiddenProfile::ALL {
                let point = DesignPoint {
                    edits,
                    profile,
                    pe: 16,
                    simd: 16,
                };
                point.network().validate().unwrap_or_else(|e| {
                    panic!("{} fails validation: {e}", point.id());
                });
            }
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(EditSet::PAPER.label(), "a+bc+d");
        assert_eq!(
            EditSet {
                a: false,
                bc: false,
                d: false
            }
            .label(),
            "none"
        );
        assert_eq!(DesignPoint::PAPER.id(), "a+bc+d/w1a3/pe16x16");
    }

    #[test]
    fn fold_legality_tracks_layer_geometry() {
        // The first hidden layer sees 16 input channels: dot length 144.
        // SIMD 16 divides it, 32 does not.
        assert!(DesignPoint::PAPER.legal_fold().is_ok());
        let wide_simd = DesignPoint {
            simd: 32,
            ..DesignPoint::PAPER
        };
        assert!(wide_simd.legal_fold().is_err());
        // Without (b), layer 3 keeps 32 output channels: PE 64 is ragged.
        let no_bc = DesignPoint {
            edits: EditSet {
                bc: false,
                ..EditSet::PAPER
            },
            pe: 64,
            simd: 16,
            profile: HiddenProfile::W1A3,
        };
        assert!(no_bc.legal_fold().is_err());
        let with_bc = DesignPoint {
            pe: 64,
            simd: 16,
            ..DesignPoint::PAPER
        };
        assert!(with_bc.legal_fold().is_ok());
    }

    #[test]
    fn cpu_profile_accepts_any_fold() {
        let point = DesignPoint {
            profile: HiddenProfile::W8A8,
            pe: 7,
            simd: 1000,
            ..DesignPoint::PAPER
        };
        assert!(point.legal_fold().is_ok());
    }

    #[test]
    fn mixed_profile_splits_early_late() {
        let point = DesignPoint {
            profile: HiddenProfile::MixedA3A1,
            ..DesignPoint::PAPER
        };
        let spec = point.network();
        let acts: Vec<_> = hidden_convs(&spec)
            .iter()
            .map(|(c, _)| c.precision.activations)
            .collect();
        assert_eq!(acts.len(), 7);
        assert!(acts[..4]
            .iter()
            .all(|a| *a == tincy_quant::ActPrecision::A3));
        assert!(acts[4..]
            .iter()
            .all(|a| *a == tincy_quant::ActPrecision::A1));
    }

    #[test]
    fn leaky_detection_requires_edit_a() {
        let without_a = DesignPoint {
            edits: EditSet {
                a: false,
                ..EditSet::PAPER
            },
            ..DesignPoint::PAPER
        };
        assert!(hidden_has_leaky(&without_a.network()));
        assert!(!hidden_has_leaky(&DesignPoint::PAPER.network()));
    }

    #[test]
    fn model_round_trips_through_json() {
        let model = DesignPoint::PAPER.model();
        let back = ModelSpec::from_json(&model.to_json()).unwrap();
        assert_eq!(back, model);
    }
}
