//! Machine-readable and human-readable renderings of a sweep report.

use crate::sweep::{EvaluatedPoint, ExploreReport};
use std::fmt::Write as _;
use tincy_json::{JsonArray, JsonObject};

fn point_json(point: &EvaluatedPoint) -> String {
    JsonObject::new()
        .str("id", &point.point.id())
        .str("edits", &point.point.edits.label())
        .str("hidden", point.point.profile.label())
        .u64("pe", point.point.pe as u64)
        .u64("simd", point.point.simd as u64)
        .f64("fps", point.eval.fps)
        .f64("accuracy_proxy", point.eval.accuracy)
        .f64("utilization", point.utilization)
        .u64("luts", point.eval.resource.luts)
        .u64("bram36", point.eval.resource.bram36)
        .u64("dsps", point.eval.resource.dsps)
        .f64("hidden_ms", point.eval.hidden_ms)
        .f64("frame_ms", point.eval.frame_ms)
        .bool("offloaded", point.eval.offloaded)
        .bool("on_frontier", point.on_frontier)
        .finish()
}

/// Renders the full report as JSON: sweep configuration, prune counts,
/// the frontier (sorted fastest first) and the deterministic fingerprint.
pub fn report_json(report: &ExploreReport) -> String {
    let budget = JsonObject::new()
        .u64("luts", report.config.budget.luts)
        .u64("bram36", report.config.budget.bram36)
        .u64("dsps", report.config.budget.dsps)
        .finish();
    let bounds = JsonObject::new()
        .u64("pe_min", report.config.pe_bounds.0 as u64)
        .u64("pe_max", report.config.pe_bounds.1 as u64)
        .u64("simd_min", report.config.simd_bounds.0 as u64)
        .u64("simd_max", report.config.simd_bounds.1 as u64)
        .finish();
    let pruned = JsonObject::new()
        .u64("illegal_fold", report.pruned.illegal_fold as u64)
        .u64("undeployable", report.pruned.undeployable as u64)
        .u64("over_budget", report.pruned.over_budget as u64)
        .finish();
    let mut frontier = JsonArray::new();
    for point in sorted_frontier(report) {
        frontier.raw(&point_json(point));
    }
    let mut obj = JsonObject::new()
        .str("device", report.config.device.name)
        .raw("budget", &budget)
        .raw("bounds", &bounds)
        .u64("enumerated", report.enumerated as u64)
        .raw("pruned", &pruned)
        .u64("feasible", report.feasible.len() as u64)
        .raw("frontier", &frontier.finish());
    if let Some(i) = report.paper_index() {
        obj = obj.raw("paper_point", &point_json(&report.feasible[i]));
    }
    obj.str("fingerprint", &format!("{:016x}", report.fingerprint))
        .finish()
}

/// The frontier sorted for presentation: fastest first, ties broken by
/// accuracy (desc) then id (asc).
fn sorted_frontier(report: &ExploreReport) -> Vec<&EvaluatedPoint> {
    let mut points: Vec<&EvaluatedPoint> = report.frontier_points().collect();
    points.sort_by(|a, b| {
        b.eval
            .fps
            .partial_cmp(&a.eval.fps)
            .expect("fps is finite")
            .then(
                b.eval
                    .accuracy
                    .partial_cmp(&a.eval.accuracy)
                    .expect("accuracy is finite"),
            )
            .then_with(|| a.point.id().cmp(&b.point.id()))
    });
    points
}

/// Renders the frontier as a fixed-width table, the paper's shipped
/// configuration marked with `*`.
pub fn report_table(report: &ExploreReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "design space: {} candidates, {} pruned ({} illegal fold, {} undeployable, {} over budget), {} feasible",
        report.enumerated,
        report.pruned.total(),
        report.pruned.illegal_fold,
        report.pruned.undeployable,
        report.pruned.over_budget,
        report.feasible.len(),
    );
    let _ = writeln!(
        out,
        "frontier ({} points, device {}, fingerprint {:016x}):",
        report.frontier.len(),
        report.config.device.name,
        report.fingerprint,
    );
    let _ = writeln!(
        out,
        "  {:<22} {:>7} {:>8} {:>6} {:>7} {:>7} {:>5} {:>9}",
        "design", "fps", "mAP%", "util%", "LUT", "BRAM36", "DSP", "hidden ms"
    );
    for point in sorted_frontier(report) {
        let marker = if point.point == crate::design::DesignPoint::PAPER {
            "*"
        } else {
            " "
        };
        let _ = writeln!(
            out,
            "{marker} {:<22} {:>7.2} {:>8.1} {:>6.1} {:>7} {:>7} {:>5} {:>9.2}",
            point.point.id(),
            point.eval.fps,
            point.eval.accuracy,
            point.utilization * 100.0,
            point.eval.resource.luts,
            point.eval.resource.bram36,
            point.eval.resource.dsps,
            point.eval.hidden_ms,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{run_sweep, SweepConfig};
    use tincy_json::{parse, JsonValue};

    fn report() -> ExploreReport {
        run_sweep(&SweepConfig::default())
    }

    #[test]
    fn json_parses_and_mirrors_the_report() {
        let report = report();
        let value = parse(&report_json(&report)).unwrap();
        assert_eq!(
            value.get("device").and_then(JsonValue::as_str),
            Some(report.config.device.name)
        );
        let frontier = value.get("frontier").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(frontier.len(), report.frontier.len());
        assert_eq!(
            value.get("fingerprint").and_then(JsonValue::as_str),
            Some(format!("{:016x}", report.fingerprint).as_str())
        );
        for point in frontier {
            assert_eq!(point.get("on_frontier"), Some(&JsonValue::Bool(true)));
        }
    }

    #[test]
    fn json_carries_the_paper_point() {
        let value = parse(&report_json(&report())).unwrap();
        let paper = value.get("paper_point").unwrap();
        assert_eq!(
            paper.get("id").and_then(JsonValue::as_str),
            Some("a+bc+d/w1a3/pe16x16")
        );
        assert_eq!(paper.get("on_frontier"), Some(&JsonValue::Bool(true)));
    }

    #[test]
    fn table_marks_the_paper_row_and_sorts_fastest_first() {
        let report = report();
        let table = report_table(&report);
        assert!(table.contains("* a+bc+d/w1a3/pe16x16"));
        let fps: Vec<f64> = sorted_frontier(&report)
            .iter()
            .map(|p| p.eval.fps)
            .collect();
        assert!(fps.windows(2).all(|w| w[0] >= w[1]));
    }
}
