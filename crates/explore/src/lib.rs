//! Design-space exploration for the Tincy system.
//!
//! The paper ships exactly one design: Tiny YOLO after the §III-E
//! transformations (a)–(d), `[W1A3]` hidden layers, and a single 16×16
//! time-multiplexed conv engine on the XCZU3EG. This crate asks the
//! question the authors answered by hand: *of all the designs the stack
//! can express, which are worth building?*
//!
//! A candidate design is a coordinate in three axes:
//!
//! * a subset of the topology rewrites in `tincy_core::variants`
//!   ([`EditSet`]),
//! * a hidden-layer precision profile ([`HiddenProfile`]),
//! * a PE×SIMD engine fold ([`DesignPoint::pe`], [`DesignPoint::simd`]).
//!
//! [`run_sweep`] enumerates the candidates, prunes ragged folds,
//! fabric-incompatible activations and over-budget engines, evaluates the
//! rest against the calibrated models — the FINN cycle model and §III-F
//! pipeline model for throughput, a Table IV-calibrated proxy for
//! accuracy, the XCZU3EG bill-of-materials model for resources — and
//! extracts the Pareto frontier over (fps ↑, accuracy ↑, utilization ↓).
//! At the paper's shipped coordinates the evaluator reproduces the final
//! rung of `tincy_perf::ladder::speedup_ladder` exactly, so the paper's
//! design appears as one (non-dominated) frontier point.
//!
//! Every design point lowers to a serializable [`tincy_nn::ModelSpec`],
//! so a frontier pick can be instantiated and probed end-to-end — trained
//! via `tincy-train`, served bit-exactly via `tincy-serve` — without code
//! changes.

pub mod design;
pub mod evaluate;
pub mod frontier;
pub mod report;
pub mod sweep;
pub mod variants;

pub use design::{DesignPoint, EditSet, HiddenProfile};
pub use evaluate::{accuracy_proxy, evaluate, stage_budget, Calibration, Evaluation};
pub use frontier::{dominates, fingerprint, pareto_frontier, Objectives};
pub use report::{report_json, report_table};
pub use sweep::{
    run_sweep, EvaluatedPoint, ExploreReport, PruneCounts, ResourceBudget, SweepConfig,
};
pub use variants::{point_from_id, servable_variants, FrontierVariant};
