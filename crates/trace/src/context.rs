//! Distributed trace identity: the context minted at admission and
//! propagated through every hop a request takes (router dispatch → shard
//! queue → FINN batch / CPU fallback → delivery, including failover
//! re-dispatch).
//!
//! Ids are deterministic SplitMix64 outputs of the caller's seed material
//! (client key + per-client submission counter), so identically-seeded
//! runs mint identical trace ids and traced results stay reproducible.

/// One step of the SplitMix64 sequence: a cheap, high-quality 64-bit
/// mixer (Steele et al.). Deterministic and allocation-free, which is all
/// the id scheme needs.
#[must_use]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The identity a request carries across shards: one trace id for every
/// span it produces anywhere in the fleet, plus the span id of the
/// admission span that minted it (so shard-side spans can point back at
/// the router hop that dispatched them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// Fleet-unique request identity; tags every span of the request.
    pub trace_id: u64,
    /// Span id of the minting admission/dispatch span.
    pub parent_span_id: u64,
}

impl TraceContext {
    /// Mints a context from two seed words (typically a stable client key
    /// and that client's submission counter). Two mixer rounds decorrelate
    /// the words; the parent span id is derived from the trace id so the
    /// pair stays a pure function of the seeds.
    #[must_use]
    pub fn mint(key: u64, seq: u64) -> Self {
        let trace_id = splitmix64(splitmix64(key) ^ seq);
        Self {
            trace_id,
            parent_span_id: splitmix64(trace_id),
        }
    }

    /// Renders the trace id the way exported traces and exemplars do:
    /// zero-padded lowercase hex (64-bit ids do not survive a JSON f64
    /// round trip as numbers, so they travel as strings).
    #[must_use]
    pub fn trace_hex(&self) -> String {
        format!("{:016x}", self.trace_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn minting_is_deterministic_and_seed_sensitive() {
        let a = TraceContext::mint(7, 0);
        assert_eq!(a, TraceContext::mint(7, 0));
        assert_ne!(a.trace_id, TraceContext::mint(7, 1).trace_id);
        assert_ne!(a.trace_id, TraceContext::mint(8, 0).trace_id);
        assert_ne!(a.trace_id, a.parent_span_id);
    }

    #[test]
    fn ids_do_not_collide_over_a_fleet_sized_grid() {
        let mut seen = HashSet::new();
        for key in 0..64u64 {
            for seq in 0..64u64 {
                assert!(seen.insert(TraceContext::mint(key, seq).trace_id));
            }
        }
    }

    #[test]
    fn trace_hex_is_fixed_width_lowercase() {
        let ctx = TraceContext {
            trace_id: 0xab,
            parent_span_id: 0,
        };
        assert_eq!(ctx.trace_hex(), "00000000000000ab");
    }
}
