//! The collected trace: merged events, label table, span matching and
//! structural validation.

use crate::event::{Attrs, Event, EventKind, Label};
use std::fmt;

/// A finished trace session: every surviving event from every thread,
/// sorted by timestamp, plus the label table to resolve names.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Events sorted by `t_ns` (per-thread order preserved on ties).
    pub events: Vec<Event>,
    /// Interner snapshot: `labels[label.index()]` is the name.
    pub labels: Vec<String>,
    /// Threads that recorded at least one event.
    pub threads: u32,
    /// OS thread names captured at registration, indexed by session
    /// thread id (`""` when the thread was unnamed).
    pub thread_names: Vec<String>,
    /// Span-link sets: `links[id]` lists the request ids referenced by
    /// spans whose [`Attrs::links`] is `Some(id)` (micro-batch members).
    pub links: Vec<Vec<u64>>,
    /// Events overwritten by ring-buffer wraparound.
    pub dropped: u64,
}

/// A matched begin/end pair.
#[derive(Debug, Clone, Copy)]
pub struct Span {
    /// Interned name (shared by both edges).
    pub label: Label,
    /// Recording thread.
    pub thread: u32,
    /// Begin timestamp (ns since session start).
    pub start_ns: u64,
    /// End timestamp.
    pub end_ns: u64,
    /// Attributes from the Begin edge.
    pub attrs: Attrs,
}

impl Span {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// A structural defect found by [`Trace::check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// An End edge with no open Begin, or whose label does not match the
    /// innermost open span on its thread.
    MismatchedEnd {
        /// Thread the defect occurred on.
        thread: u32,
        /// Label of the offending End edge.
        found: String,
        /// Label of the innermost open span, if any.
        expected: Option<String>,
    },
    /// A Begin edge that never closed.
    UnclosedSpan {
        /// Thread the span was opened on.
        thread: u32,
        /// Label of the unclosed span.
        label: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::MismatchedEnd {
                thread,
                found,
                expected,
            } => match expected {
                Some(expected) => write!(
                    f,
                    "thread {thread}: end '{found}' does not match open span '{expected}'"
                ),
                None => write!(f, "thread {thread}: end '{found}' with no open span"),
            },
            TraceError::UnclosedSpan { thread, label } => {
                write!(f, "thread {thread}: span '{label}' never ended")
            }
        }
    }
}

impl Trace {
    /// An empty trace (no session was running).
    pub fn empty() -> Self {
        Self {
            events: Vec::new(),
            labels: Vec::new(),
            threads: 0,
            thread_names: Vec::new(),
            links: Vec::new(),
            dropped: 0,
        }
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Resolves a label to its name (`"?"` for ids outside the table —
    /// only possible for hand-built traces).
    pub fn label_name(&self, label: Label) -> &str {
        self.labels
            .get(label.index() as usize)
            .map_or("?", String::as_str)
    }

    /// Matches Begin/End pairs per thread under stack discipline and
    /// returns every completed span. Structural defects are errors; use
    /// [`Self::spans_lossy`] for best-effort extraction.
    ///
    /// # Errors
    ///
    /// [`TraceError`] on the first mismatched End or unclosed Begin.
    pub fn spans(&self) -> Result<Vec<Span>, TraceError> {
        let (spans, defect) = self.match_spans();
        match defect {
            Some(error) => Err(error),
            None => Ok(spans),
        }
    }

    /// Best-effort span extraction: mismatched Ends are skipped and
    /// unclosed Begins dropped, which keeps export working even if a
    /// ring wrapped or a panic unwound past a guard.
    pub fn spans_lossy(&self) -> Vec<Span> {
        self.match_spans().0
    }

    /// Validates begin/end matching and per-thread nesting.
    ///
    /// # Errors
    ///
    /// [`TraceError`] describing the first structural defect.
    pub fn check(&self) -> Result<(), TraceError> {
        self.spans().map(drop)
    }

    /// All instant events.
    pub fn instants(&self) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(|e| e.kind == EventKind::Instant)
    }

    /// All flow edges (cross-thread hand-off arrows), start and finish.
    pub fn flows(&self) -> impl Iterator<Item = &Event> {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::FlowStart | EventKind::FlowFinish))
    }

    /// The captured OS thread name for a session thread id, if any.
    pub fn thread_name(&self, thread: u32) -> Option<&str> {
        self.thread_names
            .get(thread as usize)
            .map(String::as_str)
            .filter(|name| !name.is_empty())
    }

    /// The request ids behind a span-link id ([`Attrs::links`]); empty
    /// for ids outside the table.
    pub fn link_requests(&self, id: u32) -> &[u64] {
        self.links.get(id as usize).map_or(&[], Vec::as_slice)
    }

    fn match_spans(&self) -> (Vec<Span>, Option<TraceError>) {
        // Per-thread stacks of open Begin edges. Thread ids are small
        // session-local indices, so a Vec-of-stacks suffices.
        let mut stacks: Vec<Vec<&Event>> = Vec::new();
        let mut spans = Vec::new();
        let mut defect = None;
        for event in &self.events {
            let t = event.thread as usize;
            if stacks.len() <= t {
                stacks.resize_with(t + 1, Vec::new);
            }
            match event.kind {
                EventKind::Instant | EventKind::FlowStart | EventKind::FlowFinish => {}
                EventKind::Begin => stacks[t].push(event),
                EventKind::End => match stacks[t].last() {
                    Some(open) if open.label == event.label => {
                        let open = stacks[t].pop().expect("non-empty stack");
                        spans.push(Span {
                            label: open.label,
                            thread: open.thread,
                            start_ns: open.t_ns,
                            end_ns: event.t_ns,
                            attrs: open.attrs,
                        });
                    }
                    open => {
                        if defect.is_none() {
                            defect = Some(TraceError::MismatchedEnd {
                                thread: event.thread,
                                found: self.label_name(event.label).to_string(),
                                expected: open.map(|o| self.label_name(o.label).to_string()),
                            });
                        }
                    }
                },
            }
        }
        if defect.is_none() {
            for stack in &stacks {
                if let Some(open) = stack.first() {
                    defect = Some(TraceError::UnclosedSpan {
                        thread: open.thread,
                        label: self.label_name(open.label).to_string(),
                    });
                    break;
                }
            }
        }
        (spans, defect)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t_ns: u64, thread: u32, kind: EventKind, label: u32) -> Event {
        Event {
            t_ns,
            thread,
            kind,
            label: Label(label),
            attrs: Attrs::default(),
        }
    }

    fn trace_with(events: Vec<Event>) -> Trace {
        Trace {
            events,
            labels: vec!["a".into(), "b".into()],
            threads: 2,
            thread_names: Vec::new(),
            links: Vec::new(),
            dropped: 0,
        }
    }

    #[test]
    fn nested_spans_match_innermost_first() {
        let trace = trace_with(vec![
            ev(0, 0, EventKind::Begin, 0),
            ev(1, 0, EventKind::Begin, 1),
            ev(2, 0, EventKind::End, 1),
            ev(3, 0, EventKind::End, 0),
        ]);
        let spans = trace.spans().unwrap();
        assert_eq!(spans.len(), 2);
        assert_eq!(trace.label_name(spans[0].label), "b");
        assert_eq!(spans[0].duration_ns(), 1);
        assert_eq!(trace.label_name(spans[1].label), "a");
        assert_eq!(spans[1].duration_ns(), 3);
    }

    #[test]
    fn interleaved_threads_do_not_interfere() {
        let trace = trace_with(vec![
            ev(0, 0, EventKind::Begin, 0),
            ev(1, 1, EventKind::Begin, 1),
            ev(2, 0, EventKind::End, 0),
            ev(3, 1, EventKind::End, 1),
        ]);
        assert_eq!(trace.spans().unwrap().len(), 2);
        assert!(trace.check().is_ok());
    }

    #[test]
    fn mismatched_end_is_detected() {
        let trace = trace_with(vec![
            ev(0, 0, EventKind::Begin, 0),
            ev(1, 0, EventKind::End, 1),
        ]);
        assert!(matches!(
            trace.check(),
            Err(TraceError::MismatchedEnd { .. })
        ));
        // Lossy extraction skips the defect and drops the unclosed span.
        assert!(trace.spans_lossy().is_empty());
    }

    #[test]
    fn unclosed_span_is_detected() {
        let trace = trace_with(vec![ev(0, 0, EventKind::Begin, 0)]);
        assert!(matches!(
            trace.check(),
            Err(TraceError::UnclosedSpan { .. })
        ));
    }
}
