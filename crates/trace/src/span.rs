//! The span API: a builder for typed attributes plus an RAII guard that
//! records the matching End edge.
//!
//! ```
//! let _session = (); // assume tincy_trace::start() ran
//! let label = tincy_trace::static_label!("doc.example");
//! {
//!     let _span = tincy_trace::span(label).frame(7).start();
//!     // ... traced work ...
//! } // End recorded here
//! tincy_trace::span(label).attempt(1).emit(); // instant event
//! ```

use crate::collector::{current_generation, is_enabled, record};
use crate::context::TraceContext;
use crate::event::{Attrs, Backend, EventKind, Label};
use std::marker::PhantomData;

/// Starts building a span or instant event named `label`.
pub fn span(label: Label) -> SpanBuilder {
    SpanBuilder {
        label,
        attrs: Attrs::default(),
    }
}

/// Builder carrying the typed attributes for one span/instant. All
/// setters are cheap option stores; the only recording happens in
/// [`Self::start`] / [`Self::emit`].
#[must_use = "a span builder records nothing until start() or emit()"]
#[derive(Debug)]
pub struct SpanBuilder {
    label: Label,
    attrs: Attrs,
}

impl SpanBuilder {
    /// Pipeline frame sequence number.
    pub fn frame(mut self, seq: u64) -> Self {
        self.attrs.frame = Some(seq);
        self
    }

    /// Serving-layer global request id.
    pub fn request(mut self, id: u64) -> Self {
        self.attrs.request = Some(id);
        self
    }

    /// Network layer index.
    pub fn layer(mut self, index: u32) -> Self {
        self.attrs.layer = Some(index);
        self
    }

    /// Micro-batch size.
    pub fn batch(mut self, size: u32) -> Self {
        self.attrs.batch = Some(size);
        self
    }

    /// Retry attempt number (0 = first try).
    pub fn attempt(mut self, n: u32) -> Self {
        self.attrs.attempt = Some(n);
        self
    }

    /// Executing backend.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.attrs.backend = Some(backend);
        self
    }

    /// Fault kind. The string is interned, so only pass bounded kinds
    /// (error displays), not per-event payloads. Skipped when disabled.
    pub fn fault(mut self, kind: &str) -> Self {
        if is_enabled() {
            self.attrs.fault = Some(Label::intern(kind));
        }
        self
    }

    /// Kernel variant serving the span. The string is interned, so only
    /// pass bounded variant names. Skipped when disabled.
    pub fn variant(mut self, name: &str) -> Self {
        if is_enabled() {
            self.attrs.variant = Some(Label::intern(name));
        }
        self
    }

    /// Modeled accelerator cycles.
    pub fn cycles(mut self, n: u64) -> Self {
        self.attrs.cycles = Some(n);
        self
    }

    /// Distributed trace id (see [`TraceContext`]).
    pub fn trace(mut self, id: u64) -> Self {
        self.attrs.trace = Some(id);
        self
    }

    /// Parent span id (see [`TraceContext`]).
    pub fn parent(mut self, id: u64) -> Self {
        self.attrs.parent = Some(id);
        self
    }

    /// Fleet shard index that produced the span.
    pub fn shard(mut self, index: u32) -> Self {
        self.attrs.shard = Some(index);
        self
    }

    /// Both halves of a [`TraceContext`] at once; `None` is a no-op so
    /// call sites can pass an optional context straight through.
    pub fn context(mut self, ctx: Option<TraceContext>) -> Self {
        if let Some(ctx) = ctx {
            self.attrs.trace = Some(ctx.trace_id);
            self.attrs.parent = Some(ctx.parent_span_id);
        }
        self
    }

    /// Links the span to the request ids it covers (micro-batch
    /// membership). The id list is stored once in the session's link
    /// table; the span carries only the table index. Skipped when
    /// disabled.
    pub fn link_requests(mut self, ids: &[u64]) -> Self {
        if is_enabled() {
            self.attrs.links = crate::collector::intern_links(ids);
        }
        self
    }

    /// Records the Begin edge and returns the guard whose drop records
    /// the End edge. Inert (records nothing, ever) when tracing is off.
    pub fn start(self) -> SpanGuard {
        let active = is_enabled();
        if active {
            record(EventKind::Begin, self.label, self.attrs);
        }
        SpanGuard {
            label: self.label,
            generation: if active { current_generation() } else { 0 },
            active,
            _not_send: PhantomData,
        }
    }

    /// Records a single instant event.
    pub fn emit(self) {
        record(EventKind::Instant, self.label, self.attrs);
    }

    /// Records the producing edge of a cross-thread hand-off (a Perfetto
    /// flow arrow). Joined to the matching [`Self::emit_flow_finish`] by
    /// the trace id, so set one (e.g. via [`Self::context`]) first.
    pub fn emit_flow_start(self) {
        record(EventKind::FlowStart, self.label, self.attrs);
    }

    /// Records the consuming edge of a cross-thread hand-off.
    pub fn emit_flow_finish(self) {
        record(EventKind::FlowFinish, self.label, self.attrs);
    }
}

/// RAII guard for an open span. `!Send` by construction: Begin and End
/// must land on the same thread for per-thread nesting to hold.
#[must_use = "dropping the guard immediately ends the span"]
#[derive(Debug)]
pub struct SpanGuard {
    label: Label,
    generation: u64,
    active: bool,
    _not_send: PhantomData<*const ()>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        // Suppress the End edge if the session was restarted while the
        // span was open — a stray End in a fresh session would break its
        // stack discipline.
        if self.active && current_generation() == self.generation {
            record(EventKind::End, self.label, Attrs::default());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TestClock;
    use crate::collector::{finish, start_with_clock};
    use crate::event::EventKind;
    use crate::test_lock::session_lock;
    use std::sync::Arc;

    #[test]
    fn span_guard_records_matching_begin_end_with_attrs() {
        let _guard = session_lock();
        let clock = Arc::new(TestClock::new());
        start_with_clock(clock.clone(), 64);
        {
            let _span = span(Label::intern("span.outer"))
                .frame(3)
                .layer(1)
                .backend(Backend::Finn)
                .start();
            clock.advance(10);
            span(Label::intern("span.marker")).attempt(2).emit();
            clock.advance(5);
        }
        let trace = finish();
        trace.check().unwrap();
        assert_eq!(trace.events.len(), 3);
        let spans = trace.spans().unwrap();
        assert_eq!(spans.len(), 1);
        assert_eq!(trace.label_name(spans[0].label), "span.outer");
        assert_eq!(spans[0].duration_ns(), 15);
        assert_eq!(spans[0].attrs.frame, Some(3));
        assert_eq!(spans[0].attrs.layer, Some(1));
        assert_eq!(spans[0].attrs.backend, Some(Backend::Finn));
        let instants: Vec<_> = trace.instants().collect();
        assert_eq!(instants.len(), 1);
        assert_eq!(instants[0].attrs.attempt, Some(2));
    }

    #[test]
    fn disabled_builder_is_inert() {
        let _guard = session_lock();
        let _ = finish();
        let span_guard = span(Label::intern("span.disabled")).fault("nope").start();
        drop(span_guard);
        span(Label::intern("span.disabled")).emit();
        assert!(finish().is_empty());
    }

    #[test]
    fn guard_outliving_its_session_stays_silent() {
        let _guard = session_lock();
        let clock = Arc::new(TestClock::new());
        start_with_clock(clock.clone(), 64);
        let open = span(Label::intern("span.stale")).start();
        let first = finish();
        assert!(matches!(
            first.check(),
            Err(crate::TraceError::UnclosedSpan { .. })
        ));
        start_with_clock(clock, 64);
        drop(open); // must not inject an End into the new session
        span(Label::intern("span.fresh")).emit();
        let second = finish();
        second.check().unwrap();
        assert_eq!(second.events.len(), 1);
        assert_eq!(second.label_name(second.events[0].label), "span.fresh");
        assert_eq!(second.events[0].kind, EventKind::Instant);
    }
}
