//! Per-request journey reconstruction: groups a trace's events by their
//! distributed trace id ([`crate::TraceContext`]) and rebuilds each
//! request's path through the fleet — admit → route → [failover…] →
//! serve → deliver — with Table-III-style stage attribution (dispatch /
//! queue wait / service).
//!
//! This is the analysis behind `tincy trace-report --by-request`: it
//! works on single-shard traces and on stitched multi-shard timelines
//! alike, because every hop tags its events with the same trace id.

use crate::data::Trace;
use crate::event::{Backend, EventKind};
use std::collections::BTreeMap;
use std::fmt;

/// One request's reconstructed path through the fleet, keyed by its
/// distributed trace id. Timestamps are trace-relative nanoseconds;
/// unset stages simply never appeared in the trace (e.g. a shed request
/// has no deliver).
#[derive(Debug, Clone, Default)]
pub struct RequestJourney {
    /// The distributed trace id shared by every hop.
    pub trace_id: u64,
    /// Distinct shards that produced events for this request, sorted. A
    /// failed-over request lists at least two.
    pub shards: Vec<u32>,
    /// Router dispatch (`fleet.route` flow start), when the request went
    /// through a fleet router.
    pub route_ns: Option<u64>,
    /// Earliest shard admission (`serve.admit`).
    pub admit_ns: Option<u64>,
    /// Earliest batch lease (`serve.lease`) — the end of queue wait.
    pub lease_ns: Option<u64>,
    /// Delivery (`serve.deliver`).
    pub deliver_ns: Option<u64>,
    /// Failover re-dispatches (`fleet.failover`) the router performed.
    pub failovers: u32,
    /// Shard-side rejections (`serve.reject`) along the way.
    pub rejects: u32,
    /// Whether the `fleet.route` flow arrow was closed by its finish
    /// edge (router→shard hand-off link intact).
    pub flow_finished: bool,
    /// Backend that finally served the request.
    pub backend: Option<Backend>,
}

impl RequestJourney {
    /// Whether the request was delivered.
    pub fn delivered(&self) -> bool {
        self.deliver_ns.is_some()
    }

    /// Dispatch stage: router hand-off until shard admission.
    pub fn dispatch_ns(&self) -> Option<u64> {
        Some(self.admit_ns?.saturating_sub(self.route_ns?))
    }

    /// Queue-wait stage: admission until batch lease.
    pub fn queue_ns(&self) -> Option<u64> {
        Some(self.lease_ns?.saturating_sub(self.admit_ns?))
    }

    /// Service stage: batch lease until delivery.
    pub fn service_ns(&self) -> Option<u64> {
        Some(self.deliver_ns?.saturating_sub(self.lease_ns?))
    }

    /// End-to-end latency from the first recorded hop to delivery.
    pub fn total_ns(&self) -> Option<u64> {
        let start = self.route_ns.or(self.admit_ns)?;
        Some(self.deliver_ns?.saturating_sub(start))
    }

    /// Journey completeness: a delivered request must show admission and
    /// lease coverage in causal order (admit ≤ lease ≤ deliver, with the
    /// route hand-off, if present, before admission).
    ///
    /// # Errors
    ///
    /// [`JourneyError`] naming the missing or out-of-order stage.
    pub fn verify(&self) -> Result<(), JourneyError> {
        let Some(deliver) = self.deliver_ns else {
            return Ok(());
        };
        let missing = |stage| JourneyError::MissingStage {
            trace_id: self.trace_id,
            stage,
        };
        let out_of_order = |stage| JourneyError::OutOfOrder {
            trace_id: self.trace_id,
            stage,
        };
        let admit = self.admit_ns.ok_or_else(|| missing("admit"))?;
        let lease = self.lease_ns.ok_or_else(|| missing("lease"))?;
        if let Some(route) = self.route_ns {
            if route > admit {
                return Err(out_of_order("admit"));
            }
        }
        if admit > lease {
            return Err(out_of_order("lease"));
        }
        if lease > deliver {
            return Err(out_of_order("deliver"));
        }
        Ok(())
    }
}

/// A journey-completeness defect found by [`RequestJourney::verify`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JourneyError {
    /// A delivered request whose trace lacks a required stage.
    MissingStage {
        /// The request's trace id.
        trace_id: u64,
        /// The absent stage.
        stage: &'static str,
    },
    /// Stages recorded against causal order.
    OutOfOrder {
        /// The request's trace id.
        trace_id: u64,
        /// The stage that precedes its predecessor.
        stage: &'static str,
    },
}

impl fmt::Display for JourneyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JourneyError::MissingStage { trace_id, stage } => {
                write!(
                    f,
                    "trace {trace_id:016x}: delivered without {stage} coverage"
                )
            }
            JourneyError::OutOfOrder { trace_id, stage } => {
                write!(
                    f,
                    "trace {trace_id:016x}: {stage} recorded before its predecessor"
                )
            }
        }
    }
}

/// Groups every trace-tagged event by trace id and reconstructs each
/// request's journey, sorted by trace id (deterministic for seeded
/// runs). Events without a trace id — internal engine spans, probes —
/// are ignored.
pub fn journeys(trace: &Trace) -> Vec<RequestJourney> {
    let mut map: BTreeMap<u64, RequestJourney> = BTreeMap::new();
    for event in &trace.events {
        let Some(id) = event.attrs.trace else {
            continue;
        };
        let journey = map.entry(id).or_insert_with(|| RequestJourney {
            trace_id: id,
            ..RequestJourney::default()
        });
        if let Some(shard) = event.attrs.shard {
            if !journey.shards.contains(&shard) {
                journey.shards.push(shard);
            }
        }
        if let Some(backend) = event.attrs.backend {
            journey.backend = Some(backend);
        }
        let min_stage = |slot: &mut Option<u64>, t: u64| {
            *slot = Some(slot.map_or(t, |held| held.min(t)));
        };
        match (trace.label_name(event.label), event.kind) {
            ("fleet.route", EventKind::FlowStart) => min_stage(&mut journey.route_ns, event.t_ns),
            ("fleet.route", EventKind::FlowFinish) => journey.flow_finished = true,
            ("fleet.failover", _) => journey.failovers += 1,
            ("serve.admit", _) => min_stage(&mut journey.admit_ns, event.t_ns),
            ("serve.lease", _) => min_stage(&mut journey.lease_ns, event.t_ns),
            ("serve.deliver", _) => {
                journey.deliver_ns = Some(
                    journey
                        .deliver_ns
                        .map_or(event.t_ns, |held| held.max(event.t_ns)),
                );
            }
            ("serve.reject", _) => journey.rejects += 1,
            _ => {}
        }
    }
    for journey in map.values_mut() {
        journey.shards.sort_unstable();
    }
    map.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Attrs, Event, Label};

    const LABELS: [&str; 6] = [
        "fleet.route",
        "serve.admit",
        "serve.lease",
        "serve.deliver",
        "fleet.failover",
        "serve.reject",
    ];

    fn ev(t_ns: u64, kind: EventKind, label: u32, trace: u64, shard: Option<u32>) -> Event {
        Event {
            t_ns,
            thread: 0,
            kind,
            label: Label(label),
            attrs: Attrs {
                trace: Some(trace),
                shard,
                ..Attrs::default()
            },
        }
    }

    fn trace_with(events: Vec<Event>) -> Trace {
        Trace {
            events,
            labels: LABELS.iter().map(|s| (*s).to_string()).collect(),
            threads: 1,
            thread_names: Vec::new(),
            links: Vec::new(),
            dropped: 0,
        }
    }

    #[test]
    fn failover_journey_reconstructs_stages_across_shards() {
        let id = 0xffcc_0000_0000_0042_u64;
        let mut deliver = ev(9, EventKind::Instant, 3, id, Some(1));
        deliver.attrs.backend = Some(Backend::Host);
        let trace = trace_with(vec![
            ev(0, EventKind::FlowStart, 0, id, Some(0)),
            ev(1, EventKind::Instant, 5, id, Some(0)), // owner shed it
            ev(2, EventKind::Instant, 4, id, Some(1)), // failover re-dispatch
            ev(3, EventKind::Instant, 1, id, Some(1)),
            ev(5, EventKind::Instant, 2, id, Some(1)),
            deliver,
            ev(9, EventKind::FlowFinish, 0, id, Some(1)),
        ]);
        let journeys = journeys(&trace);
        assert_eq!(journeys.len(), 1);
        let j = &journeys[0];
        assert_eq!(j.trace_id, id);
        assert_eq!(j.shards, vec![0, 1]);
        assert_eq!(j.failovers, 1);
        assert_eq!(j.rejects, 1);
        assert!(j.flow_finished);
        assert_eq!(j.backend, Some(Backend::Host));
        assert_eq!(j.dispatch_ns(), Some(3));
        assert_eq!(j.queue_ns(), Some(2));
        assert_eq!(j.service_ns(), Some(4));
        assert_eq!(j.total_ns(), Some(9));
        j.verify().unwrap();
    }

    #[test]
    fn delivery_without_admission_fails_verification() {
        let id = 7_u64;
        let trace = trace_with(vec![ev(4, EventKind::Instant, 3, id, Some(0))]);
        let journeys = journeys(&trace);
        assert_eq!(
            journeys[0].verify(),
            Err(JourneyError::MissingStage {
                trace_id: id,
                stage: "admit"
            })
        );
        assert!(journeys[0]
            .verify()
            .unwrap_err()
            .to_string()
            .contains("admit"));
    }
}
