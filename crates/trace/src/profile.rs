//! The in-process aggregator: folds matched spans into per-label (and
//! per-layer) duration profiles. Quantiles here are exact — the profile
//! keeps every duration, unlike the streaming log-linear histograms in
//! `tincy-pipeline` — because a trace is a bounded post-mortem artifact.

use crate::data::Trace;

/// Aggregated statistics for one (label, layer) group of spans.
#[derive(Debug, Clone)]
pub struct ProfileRow {
    /// Span name.
    pub label: String,
    /// Layer attribute, when the group's spans carry one.
    pub layer: Option<u32>,
    /// Matched spans in the group.
    pub count: u64,
    /// Summed duration (ns).
    pub total_ns: u64,
    /// Shortest span (ns).
    pub min_ns: u64,
    /// Longest span (ns).
    pub max_ns: u64,
    /// Exact median (ns).
    pub p50_ns: u64,
    /// Exact 95th percentile (ns).
    pub p95_ns: u64,
}

impl ProfileRow {
    /// Mean span duration in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.total_ns as f64 / self.count as f64
            }
        }
    }

    /// Mean span duration in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.mean_ns() / 1e6
    }
}

/// A per-stage/per-layer profile folded from a trace.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Rows sorted by (label, layer).
    pub rows: Vec<ProfileRow>,
}

impl Profile {
    /// Builds the profile from every matched span in `trace` (lossy
    /// matching: unclosed spans are ignored).
    pub fn from_trace(trace: &Trace) -> Self {
        use std::collections::BTreeMap;
        let mut groups: BTreeMap<(String, Option<u32>), Vec<u64>> = BTreeMap::new();
        for span in trace.spans_lossy() {
            groups
                .entry((trace.label_name(span.label).to_string(), span.attrs.layer))
                .or_default()
                .push(span.duration_ns());
        }
        let rows = groups
            .into_iter()
            .map(|((label, layer), mut durations)| {
                durations.sort_unstable();
                let count = durations.len() as u64;
                ProfileRow {
                    label,
                    layer,
                    count,
                    total_ns: durations.iter().sum(),
                    min_ns: *durations.first().expect("group is non-empty"),
                    max_ns: *durations.last().expect("group is non-empty"),
                    p50_ns: exact_quantile(&durations, 0.50),
                    p95_ns: exact_quantile(&durations, 0.95),
                }
            })
            .collect();
        Self { rows }
    }

    /// The row for `label` (ignoring layer splits), if present.
    pub fn row(&self, label: &str) -> Option<&ProfileRow> {
        self.rows.iter().find(|r| r.label == label)
    }

    /// Per-label mean durations in milliseconds, layer groups folded
    /// together — the shape `tincy_perf::observed::model_diff` consumes.
    pub fn stage_means_ms(&self) -> Vec<(String, f64)> {
        use std::collections::BTreeMap;
        let mut folded: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        for row in &self.rows {
            let entry = folded.entry(row.label.clone()).or_insert((0, 0));
            entry.0 += row.total_ns;
            entry.1 += row.count;
        }
        folded
            .into_iter()
            .map(|(label, (total, count))| {
                #[allow(clippy::cast_precision_loss)]
                let mean_ms = if count == 0 {
                    0.0
                } else {
                    total as f64 / count as f64 / 1e6
                };
                (label, mean_ms)
            })
            .collect()
    }
}

/// Nearest-rank quantile over a sorted slice.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )]
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TestClock;
    use crate::collector::{finish, start_with_clock};
    use crate::event::Label;
    use crate::span::span;
    use crate::test_lock::session_lock;
    use std::sync::Arc;

    #[test]
    fn exact_quantile_is_nearest_rank() {
        let sorted = vec![10, 20, 30, 40];
        assert_eq!(exact_quantile(&sorted, 0.0), 10);
        assert_eq!(exact_quantile(&sorted, 0.5), 20);
        assert_eq!(exact_quantile(&sorted, 0.75), 30);
        assert_eq!(exact_quantile(&sorted, 1.0), 40);
    }

    #[test]
    fn profile_groups_by_label_and_layer() {
        let _guard = session_lock();
        let clock = Arc::new(TestClock::new());
        start_with_clock(clock.clone(), 256);
        let stage = Label::intern("profile.stage");
        let layer = Label::intern("profile.layer");
        for (duration, layer_ix) in [(100u64, 0u32), (300, 0), (500, 1)] {
            let guard = span(layer).layer(layer_ix).start();
            clock.advance(duration);
            drop(guard);
        }
        {
            let _g = span(stage).start();
            clock.advance(1_000);
        }
        let profile = Profile::from_trace(&finish());
        assert_eq!(profile.rows.len(), 3);
        let l0 = profile
            .rows
            .iter()
            .find(|r| r.label == "profile.layer" && r.layer == Some(0))
            .unwrap();
        assert_eq!(l0.count, 2);
        assert_eq!(l0.min_ns, 100);
        assert_eq!(l0.max_ns, 300);
        assert_eq!(l0.p50_ns, 100);
        assert_eq!(l0.total_ns, 400);
        let means = profile.stage_means_ms();
        let layer_mean = means.iter().find(|(l, _)| l == "profile.layer").unwrap().1;
        assert!((layer_mean - 0.0003).abs() < 1e-9, "mean of 100/300/500 ns");
        assert_eq!(
            means.iter().find(|(l, _)| l == "profile.stage").unwrap().1,
            0.001
        );
    }
}
