//! The trace event schema: interned labels, typed attributes and the
//! fixed-size [`Event`] record stored in the per-thread rings.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::OnceLock;

/// An interned event/span name. Labels are process-global and never
/// recycled, so a `Label` cached in a `OnceLock` at a call site stays
/// valid across trace sessions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(pub(crate) u32);

impl Label {
    /// Interns `name`, returning its stable id. Repeated calls with the
    /// same string return the same label; hot call sites should cache the
    /// result (see [`static_label!`](crate::static_label)).
    pub fn intern(name: &str) -> Label {
        let mut interner = interner().lock();
        if let Some(&id) = interner.by_name.get(name) {
            return Label(id);
        }
        let id = u32::try_from(interner.names.len()).expect("label space exhausted");
        interner.names.push(name.to_string());
        interner.by_name.insert(name.to_string(), id);
        Label(id)
    }

    /// The raw interner index.
    pub fn index(self) -> u32 {
        self.0
    }
}

struct Interner {
    names: Vec<String>,
    by_name: HashMap<String, u32>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            names: Vec::new(),
            by_name: HashMap::new(),
        })
    })
}

/// Snapshot of the interner table: index `i` holds the name of `Label(i)`.
pub(crate) fn label_table() -> Vec<String> {
    interner().lock().names.clone()
}

/// Which engine executed the work a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The FINN-style accelerator path.
    Finn,
    /// The host (CPU reference) path.
    Host,
}

impl Backend {
    /// Stable lowercase name used in exported traces.
    pub fn label(self) -> &'static str {
        match self {
            Backend::Finn => "finn",
            Backend::Host => "host",
        }
    }

    /// Inverse of [`Self::label`].
    pub fn from_label(name: &str) -> Option<Backend> {
        match name {
            "finn" => Some(Backend::Finn),
            "host" => Some(Backend::Host),
            _ => None,
        }
    }
}

/// Typed span/event attributes. Every field is optional; unset fields
/// cost nothing in the exported trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Attrs {
    /// Pipeline frame sequence number.
    pub frame: Option<u64>,
    /// Serving-layer global request id.
    pub request: Option<u64>,
    /// Network layer index.
    pub layer: Option<u32>,
    /// Micro-batch size.
    pub batch: Option<u32>,
    /// Retry attempt (0 = first try).
    pub attempt: Option<u32>,
    /// Executing backend.
    pub backend: Option<Backend>,
    /// Fault kind (interned string).
    pub fault: Option<Label>,
    /// Kernel variant serving the span (interned string).
    pub variant: Option<Label>,
    /// Modeled accelerator cycles.
    pub cycles: Option<u64>,
    /// Span-link set id: an index into [`Trace::links`] listing the
    /// request ids this span covers (micro-batch membership).
    ///
    /// [`Trace::links`]: crate::Trace
    pub links: Option<u32>,
    /// Distributed trace id ([`TraceContext::trace_id`]): every span a
    /// request produces on any shard carries the same id.
    ///
    /// [`TraceContext::trace_id`]: crate::TraceContext
    pub trace: Option<u64>,
    /// Parent span id ([`TraceContext::parent_span_id`]): the admission
    /// span the router minted for this request.
    ///
    /// [`TraceContext::parent_span_id`]: crate::TraceContext
    pub parent: Option<u64>,
    /// Fleet shard index that produced the span. In-process shards share
    /// one ring set, so shard identity must travel on the event itself.
    pub shard: Option<u32>,
}

impl Attrs {
    /// Whether no attribute is set.
    pub fn is_empty(&self) -> bool {
        *self == Attrs::default()
    }
}

/// Event flavor: spans are a begin/end pair on one thread; instants are
/// point markers; flow edges link a hand-off across threads (Perfetto
/// `s`/`f` arrows, e.g. router dispatch → shard delivery).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Span opening edge.
    Begin,
    /// Span closing edge (matches the innermost open `Begin` with the
    /// same label on the same thread).
    End,
    /// A point event.
    Instant,
    /// Flow start: the producing side of a cross-thread hand-off. Joined
    /// to its [`EventKind::FlowFinish`] by [`Attrs::trace`].
    FlowStart,
    /// Flow finish: the consuming side of a cross-thread hand-off.
    FlowFinish,
}

/// One record in a thread's ring buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since session start (per the session clock).
    pub t_ns: u64,
    /// Session-scoped thread id (registration order).
    pub thread: u32,
    /// Begin/End/Instant.
    pub kind: EventKind,
    /// Interned event name.
    pub label: Label,
    /// Typed attributes (End events carry none; the Begin edge owns them).
    pub attrs: Attrs,
}

/// Interns a label once per call site and caches it in a `OnceLock`, so
/// the hot path pays one atomic load instead of a hash lookup.
#[macro_export]
macro_rules! static_label {
    ($name:expr) => {{
        static LABEL: ::std::sync::OnceLock<$crate::Label> = ::std::sync::OnceLock::new();
        *LABEL.get_or_init(|| $crate::Label::intern($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_deduplicated() {
        let a = Label::intern("test.event.alpha");
        let b = Label::intern("test.event.alpha");
        let c = Label::intern("test.event.beta");
        assert_eq!(a, b);
        assert_ne!(a, c);
        let table = label_table();
        assert_eq!(table[a.index() as usize], "test.event.alpha");
        assert_eq!(table[c.index() as usize], "test.event.beta");
    }

    #[test]
    fn static_label_caches_per_call_site() {
        let first = static_label!("test.event.static");
        let second = static_label!("test.event.static");
        assert_eq!(first, second);
        assert_eq!(first, Label::intern("test.event.static"));
    }

    #[test]
    fn backend_labels_round_trip() {
        for backend in [Backend::Finn, Backend::Host] {
            assert_eq!(Backend::from_label(backend.label()), Some(backend));
        }
        assert_eq!(Backend::from_label("gpu"), None);
    }
}
