//! The monotonic clock abstraction behind every trace timestamp.
//!
//! Production sessions run on [`MonotonicClock`] (an `Instant` anchored at
//! session start, so timestamps are nanoseconds since `start()`); tests
//! inject a [`TestClock`] and advance it by hand for fully deterministic
//! timelines.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A source of monotonic nanosecond timestamps.
pub trait Clock: Send + Sync {
    /// Nanoseconds since the clock's origin. Must be monotonic per thread.
    fn now_ns(&self) -> u64;
}

/// Wall-clock-independent monotonic time, anchored at construction.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A manually advanced clock for deterministic tests.
#[derive(Debug, Default)]
pub struct TestClock {
    now: AtomicU64,
}

impl TestClock {
    /// A test clock starting at 0 ns.
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves time forward by `ns` nanoseconds.
    pub fn advance(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::SeqCst);
    }

    /// Jumps to an absolute timestamp (must not move backwards if the
    /// resulting trace is expected to be well-ordered).
    pub fn set(&self, ns: u64) {
        self.now.store(ns, Ordering::SeqCst);
    }
}

impl Clock for TestClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_is_nondecreasing() {
        let clock = MonotonicClock::new();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn test_clock_advances_deterministically() {
        let clock = TestClock::new();
        assert_eq!(clock.now_ns(), 0);
        clock.advance(125);
        assert_eq!(clock.now_ns(), 125);
        clock.set(1_000);
        assert_eq!(clock.now_ns(), 1_000);
    }
}
