//! Streaming trace drains: a background drainer that periodically
//! [`sweep`]s the running session's ring buffers into a rotating set of
//! Chrome-trace segment files, plus the stitcher that reassembles a
//! segment directory into one timeline.
//!
//! Rotation format: segments are written as `segment-NNNNN.json` (zero-
//! padded, monotonically increasing) in the drain directory — or
//! `segment-shardK-NNNNN.json` when [`DrainConfig::shard`] declares a
//! fleet shard, which lets [`stitch_segments`] merge several shards'
//! recordings from one directory into a single causal timeline (thread
//! tracks prefixed `shardK:`, per-shard clocks normalized to a common
//! origin). A segment rotates when it accumulates `max_segment_events`
//! events or ages past `max_segment_age`; at most `max_segments` files
//! are kept (oldest are pruned). Each file is a complete, self-contained
//! Chrome trace: it is written to a dot-prefixed temp file and atomically
//! renamed, so a crash leaves either a whole segment or none — never a
//! torn one.
//!
//! Because [`sweep`] holds back Begin edges whose End has not been
//! recorded yet, a span that straddles a sweep boundary lands whole in a
//! later segment, and stitching the directory back together
//! ([`stitch_segments`]) reproduces the same span set as a single-file
//! drain of the same session.

use crate::chrome::{render_chrome_json, SegmentOrigin, TraceAssembly};
use crate::collector::sweep;
use crate::data::Trace;
use crate::event::Label;
use std::collections::{BTreeMap, HashMap};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Rotation policy for a streaming drain.
#[derive(Debug, Clone)]
pub struct DrainConfig {
    /// How often the background drainer sweeps the rings.
    pub period: Duration,
    /// Rotate the current segment once it holds this many events.
    pub max_segment_events: usize,
    /// Rotate the current segment once its first event is this old.
    pub max_segment_age: Duration,
    /// Keep at most this many segment files; oldest are pruned.
    pub max_segments: usize,
    /// Fleet shard index of the recording process. When set, segment
    /// files are named `segment-shardK-NNNNN.json` and tagged with the
    /// writer's identity, so several shards can drain into one directory
    /// and still be stitched into one causal timeline.
    pub shard: Option<u32>,
}

impl Default for DrainConfig {
    fn default() -> Self {
        Self {
            period: Duration::from_millis(25),
            max_segment_events: 4096,
            max_segment_age: Duration::from_secs(1),
            max_segments: 64,
            shard: None,
        }
    }
}

/// What a drain wrote over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrainSummary {
    /// Segment files finalized (written and renamed into place).
    pub segments: u64,
    /// Events written across all segments.
    pub events: u64,
    /// Ring-buffer drops observed across all sweeps.
    pub dropped: u64,
    /// Old segments removed to honor `max_segments`.
    pub pruned: u64,
}

/// Accumulates swept traces and rotates them into segment files. This is
/// the synchronous core of [`TraceDrainer`]; tests drive it directly
/// with manual [`sweep`]s for determinism.
pub struct SegmentWriter {
    dir: PathBuf,
    config: DrainConfig,
    origin: SegmentOrigin,
    pending: Option<Trace>,
    born: Instant,
    next_seq: u64,
    summary: DrainSummary,
}

impl SegmentWriter {
    /// Creates the drain directory (and parents) and an empty writer.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn create(dir: impl Into<PathBuf>, config: DrainConfig) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let origin = SegmentOrigin {
            process: std::process::id().to_string(),
            shard: config.shard,
        };
        Ok(Self {
            dir,
            config,
            origin,
            pending: None,
            born: Instant::now(),
            next_seq: 0,
            summary: DrainSummary::default(),
        })
    }

    /// Folds one swept trace into the pending segment. Sweeps of one
    /// session share the process-global label table and the session link
    /// table, both append-only, so the newest snapshot supersedes older
    /// ones.
    pub fn absorb(&mut self, swept: Trace) {
        self.summary.dropped += swept.dropped;
        if swept.events.is_empty() {
            return;
        }
        match &mut self.pending {
            Some(pending) => {
                pending.events.extend(swept.events);
                pending.labels = swept.labels;
                pending.links = swept.links;
                pending.thread_names = swept.thread_names;
                pending.threads = pending.threads.max(swept.threads);
                pending.dropped += swept.dropped;
            }
            None => {
                self.born = Instant::now();
                self.pending = Some(swept);
            }
        }
    }

    /// Writes the pending segment out if it hit the size or age bound
    /// (or unconditionally with `force`), then prunes old segments.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures; the pending segment is retained
    /// and retried on the next rotation.
    pub fn rotate(&mut self, force: bool) -> io::Result<()> {
        let due = match &self.pending {
            None => false,
            Some(pending) if pending.events.is_empty() => false,
            Some(pending) => {
                force
                    || pending.events.len() >= self.config.max_segment_events
                    || self.born.elapsed() >= self.config.max_segment_age
            }
        };
        if !due {
            return Ok(());
        }
        let mut segment = self.pending.take().expect("pending checked above");
        // Held-back Begins re-enter on a later sweep with their original
        // (earlier) timestamps; re-sorting restores the per-thread
        // chronological stream that span matching relies on.
        segment.events.sort_by_key(|e| e.t_ns);
        let json = render_chrome_json(&segment, Some(&self.origin));
        let tmp = self.dir.join(".segment.tmp");
        let path = self.dir.join(match self.config.shard {
            Some(shard) => format!("segment-shard{shard}-{:05}.json", self.next_seq),
            None => format!("segment-{:05}.json", self.next_seq),
        });
        if let Err(error) = std::fs::write(&tmp, &json).and_then(|()| std::fs::rename(&tmp, &path))
        {
            self.pending = Some(segment);
            return Err(error);
        }
        self.next_seq += 1;
        self.summary.segments += 1;
        self.summary.events += segment.events.len() as u64;
        self.prune()?;
        Ok(())
    }

    fn prune(&mut self) -> io::Result<()> {
        let mut files = segment_files(&self.dir)?;
        while files.len() > self.config.max_segments {
            std::fs::remove_file(files.remove(0))?;
            self.summary.pruned += 1;
        }
        Ok(())
    }

    /// Flushes whatever is pending (one final sweep first) and returns
    /// the drain summary.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures from the final rotation.
    pub fn finish(mut self) -> io::Result<DrainSummary> {
        if let Some(swept) = sweep() {
            self.absorb(swept);
        }
        self.rotate(true)?;
        Ok(self.summary)
    }

    /// The drain directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// A background thread that sweeps the running trace session into
/// rotating segment files every [`DrainConfig::period`]. Dropping the
/// drainer finalizes it (best effort); call [`Self::finalize`] to get
/// the summary and surface I/O errors.
pub struct TraceDrainer {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<io::Result<DrainSummary>>>,
}

impl TraceDrainer {
    /// Spawns the drainer over `dir`. The trace session should already
    /// be started; sweeps of a stopped session are no-ops.
    ///
    /// # Errors
    ///
    /// Propagates drain-directory creation and thread-spawn failures.
    pub fn spawn(dir: impl Into<PathBuf>, config: DrainConfig) -> io::Result<Self> {
        let period = config.period;
        let mut writer = SegmentWriter::create(dir, config)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("trace-drain".to_string())
            .spawn(move || {
                loop {
                    let stopping = stop_flag.load(Ordering::Acquire);
                    if let Some(swept) = sweep() {
                        writer.absorb(swept);
                    }
                    writer.rotate(false)?;
                    if stopping {
                        break;
                    }
                    std::thread::park_timeout(period);
                }
                writer.finish()
            })?;
        Ok(Self {
            stop,
            handle: Some(handle),
        })
    }

    /// Stops the drainer, performs the final sweep and flush, and
    /// returns what was written.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures from the drain thread.
    pub fn finalize(mut self) -> io::Result<DrainSummary> {
        self.join()
    }

    fn join(&mut self) -> io::Result<DrainSummary> {
        let Some(handle) = self.handle.take() else {
            return Ok(DrainSummary::default());
        };
        self.stop.store(true, Ordering::Release);
        handle.thread().unpark();
        handle
            .join()
            .map_err(|_| io::Error::other("trace drain thread panicked"))?
    }
}

impl Drop for TraceDrainer {
    /// Crash-safe finalize: even an early-returning caller gets its
    /// buffered events swept and flushed to a whole segment.
    fn drop(&mut self) {
        let _ = self.join();
    }
}

/// The segment files of a drain directory, sorted by sequence number
/// (filename order).
///
/// # Errors
///
/// Propagates directory-read failures.
pub fn segment_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|path| {
            path.file_name()
                .and_then(|name| name.to_str())
                .is_some_and(|name| name.starts_with("segment-") && name.ends_with(".json"))
        })
        .collect();
    files.sort();
    Ok(files)
}

/// Stitches a drain directory's segments back into one [`Trace`].
///
/// Unlabeled segments (`segment-NNNNN.json`) must all come from one
/// process; they are parsed into a shared assembly (labels, link sets
/// and thread names merged) and the combined span set rebuilt into a
/// single timeline. Shard-labeled segments (`segment-shardK-NNNNN.json`,
/// written when [`DrainConfig::shard`] is set) are assembled per shard
/// and then merged causally: each shard's clock is normalized so its
/// earliest event sits at the common origin, thread tracks are prefixed
/// `shardK:`, and every event is tagged with its shard.
///
/// # Errors
///
/// A message naming the unreadable or malformed segment, reporting an
/// empty directory, or explaining an un-mergeable mix (unlabeled
/// segments from different processes, or labeled next to unlabeled).
pub fn stitch_segments(dir: &Path) -> Result<Trace, String> {
    let files = segment_files(dir)
        .map_err(|e| format!("cannot list segments in {}: {e}", dir.display()))?;
    if files.is_empty() {
        return Err(format!("no segment-*.json files in {}", dir.display()));
    }
    let mut groups: BTreeMap<Option<u32>, Vec<PathBuf>> = BTreeMap::new();
    for file in files {
        let shard = shard_of(&file);
        groups.entry(shard).or_default().push(file);
    }
    if groups.len() > 1 && groups.contains_key(&None) {
        return Err(format!(
            "{} mixes shard-labeled and unlabeled segment files; the unlabeled \
             segments cannot be attributed to a shard — re-record them with \
             DrainConfig::shard set",
            dir.display()
        ));
    }
    if let (1, Some(group)) = (groups.len(), groups.get(&None)) {
        let assembly = ingest_group(group)?;
        if assembly.processes.len() > 1 {
            return Err(format!(
                "{} holds unlabeled segments from {} different processes, which \
                 cannot be interleaved into one timeline — re-record with \
                 DrainConfig::shard set so files are named segment-shardK-*.json",
                dir.display(),
                assembly.processes.len()
            ));
        }
        return Ok(assembly.into_trace());
    }
    let mut merged = Trace::empty();
    let mut by_name: HashMap<String, u32> = HashMap::new();
    for (shard, group) in &groups {
        let shard = shard.expect("unlabeled group handled above");
        let assembly = ingest_group(group)?;
        if assembly.processes.len() > 1 {
            return Err(format!(
                "{}: shard {shard} segments come from {} different processes; \
                 each shard label must belong to one recorder",
                dir.display(),
                assembly.processes.len()
            ));
        }
        merge_shard(&mut merged, &mut by_name, assembly.into_trace(), shard);
    }
    // Stable: each shard's stream is already time-ordered and shards use
    // disjoint thread ids, so this only interleaves shards.
    merged.events.sort_by_key(|e| e.t_ns);
    Ok(merged)
}

/// The shard label encoded in a segment filename, if any
/// (`segment-shardK-NNNNN.json`).
fn shard_of(path: &Path) -> Option<u32> {
    let name = path.file_name()?.to_str()?;
    let rest = name.strip_prefix("segment-shard")?;
    let (shard, _) = rest.split_once('-')?;
    shard.parse().ok()
}

fn ingest_group(files: &[PathBuf]) -> Result<TraceAssembly, String> {
    let mut assembly = TraceAssembly::new();
    for file in files {
        let text = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        assembly
            .ingest(&text)
            .map_err(|e| format!("{}: {e}", file.display()))?;
    }
    Ok(assembly)
}

/// Folds one shard's reassembled trace into the merged fleet timeline:
/// labels are re-interned by name, link ids offset, thread ids rebased,
/// thread tracks prefixed `shardK:`, every event tagged with the shard,
/// and the shard's clock normalized so its earliest event lands on the
/// common origin (per-shard clock-offset normalization).
fn merge_shard(target: &mut Trace, by_name: &mut HashMap<String, u32>, src: Trace, shard: u32) {
    let mut remap = Vec::with_capacity(src.labels.len());
    for name in &src.labels {
        let next = u32::try_from(target.labels.len()).expect("label space exhausted");
        let id = *by_name.entry(name.clone()).or_insert_with(|| {
            target.labels.push(name.clone());
            next
        });
        remap.push(Label(id));
    }
    let thread_base = target.threads;
    let link_base = u32::try_from(target.links.len()).expect("link space exhausted");
    let origin = src.events.iter().map(|e| e.t_ns).min().unwrap_or(0);
    for mut event in src.events {
        event.t_ns -= origin;
        event.thread += thread_base;
        event.label = remap[event.label.index() as usize];
        if let Some(fault) = event.attrs.fault {
            event.attrs.fault = Some(remap[fault.index() as usize]);
        }
        if let Some(variant) = event.attrs.variant {
            event.attrs.variant = Some(remap[variant.index() as usize]);
        }
        if let Some(links) = event.attrs.links {
            event.attrs.links = Some(link_base + links);
        }
        event.attrs.shard = event.attrs.shard.or(Some(shard));
        target.events.push(event);
    }
    target.links.extend(src.links);
    for i in 0..src.threads as usize {
        let name = src.thread_names.get(i).map_or("", String::as_str);
        target.thread_names.push(if name.is_empty() {
            format!("shard{shard}:t{i}")
        } else {
            format!("shard{shard}:{name}")
        });
    }
    target.threads = thread_base + src.threads;
    target.dropped += src.dropped;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome::{from_chrome_json, to_chrome_json};
    use crate::clock::TestClock;
    use crate::collector::{finish, start_with_clock, sweep};
    use crate::event::Label;
    use crate::span::span;
    use crate::test_lock::session_lock;
    use std::sync::Arc;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("tincy-stream-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn sweep_holds_back_open_spans_until_they_close() {
        let _guard = session_lock();
        let clock = Arc::new(TestClock::new());
        start_with_clock(clock.clone(), 256);
        let outer = Label::intern("stream.outer");
        let inner = Label::intern("stream.inner");

        let open = span(outer).frame(1).start();
        clock.advance(10);
        {
            let _child = span(inner).start();
            clock.advance(5);
        }
        // First sweep: the inner span is complete, the outer is open.
        let first = sweep().unwrap();
        assert_eq!(first.spans_lossy().len(), 1);
        assert_eq!(
            first.label_name(first.spans_lossy()[0].label),
            "stream.inner"
        );
        clock.advance(10);
        drop(open);
        // Second sweep: the held-back outer span arrives whole.
        let second = sweep().unwrap();
        let spans = second.spans_lossy();
        assert_eq!(spans.len(), 1);
        assert_eq!(second.label_name(spans[0].label), "stream.outer");
        assert_eq!(spans[0].start_ns, 0, "held-back Begin keeps its timestamp");
        assert_eq!(spans[0].duration_ns(), 25);
        assert_eq!(spans[0].attrs.frame, Some(1));
        let _ = finish();
    }

    /// One deterministic workload, replayed on a test clock. A
    /// long-lived outer span straddles every segment boundary; when
    /// `writer` is set, the session is swept into segments after each
    /// iteration instead of being drained once at the end.
    fn replay_workload(clock: &TestClock, mut writer: Option<&mut SegmentWriter>) {
        let stage = Label::intern("stream.stage");
        let mark = Label::intern("stream.mark");
        let outer = span(Label::intern("stream.outer")).frame(99).start();
        for i in 0..12u64 {
            clock.advance(50);
            {
                let _s = span(stage).frame(i).layer(2).start();
                clock.advance(100);
            }
            span(mark).frame(i).emit();
            if let Some(writer) = writer.as_deref_mut() {
                writer.absorb(sweep().unwrap());
                writer.rotate(false).unwrap();
            }
        }
        clock.advance(50);
        drop(outer);
    }

    /// Name-resolved span fingerprint: label, start/end, frame, layer.
    type SpanKey = (String, u64, u64, Option<u64>, Option<u32>);

    /// Sorted, name-resolved span fingerprints for order-insensitive
    /// trace comparison.
    fn span_keys(trace: &Trace) -> Vec<SpanKey> {
        let mut keys: Vec<_> = trace
            .spans()
            .expect("well-formed trace")
            .iter()
            .map(|s| {
                (
                    trace.label_name(s.label).to_string(),
                    s.start_ns,
                    s.end_ns,
                    s.attrs.frame,
                    s.attrs.layer,
                )
            })
            .collect();
        keys.sort();
        keys
    }

    #[test]
    fn stitched_segments_equal_single_file_import() {
        let _guard = session_lock();
        let dir = temp_dir("stitch");

        // Reference: the identical workload drained once into one file.
        let clock = Arc::new(TestClock::new());
        start_with_clock(clock.clone(), 4096);
        replay_workload(&clock, None);
        let single = from_chrome_json(&to_chrome_json(&finish())).unwrap();

        // Streaming: the same workload swept into rotating segments.
        let clock = Arc::new(TestClock::new());
        start_with_clock(clock.clone(), 4096);
        let mut writer = SegmentWriter::create(
            &dir,
            DrainConfig {
                max_segment_events: 8,
                ..DrainConfig::default()
            },
        )
        .unwrap();
        replay_workload(&clock, Some(&mut writer));
        let summary = writer.finish().unwrap();
        assert!(finish().is_empty(), "sweeps consumed every event");
        assert!(summary.segments >= 2, "rotation split the run");

        let files = segment_files(&dir).unwrap();
        assert!(
            files.len() >= 2,
            "rotation produced {} segments",
            files.len()
        );
        let stitched = stitch_segments(&dir).unwrap();
        stitched.check().unwrap();
        assert_eq!(span_keys(&stitched), span_keys(&single));
        assert_eq!(stitched.instants().count(), single.instants().count());
        let outer = stitched
            .spans()
            .unwrap()
            .into_iter()
            .find(|s| stitched.label_name(s.label) == "stream.outer")
            .expect("straddling span survives stitching");
        assert_eq!(outer.start_ns, 0);
        assert_eq!(outer.attrs.frame, Some(99));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_prunes_oldest_but_never_tears_a_segment() {
        let _guard = session_lock();
        let dir = temp_dir("prune");
        let clock = Arc::new(TestClock::new());
        start_with_clock(clock.clone(), 4096);
        let stage = Label::intern("stream.prune.stage");
        let mut writer = SegmentWriter::create(
            &dir,
            DrainConfig {
                max_segment_events: 2,
                max_segments: 3,
                ..DrainConfig::default()
            },
        )
        .unwrap();
        for i in 0..10u64 {
            clock.advance(10);
            {
                let _s = span(stage).frame(i).start();
                clock.advance(10);
            }
            writer.absorb(sweep().unwrap());
            writer.rotate(false).unwrap();
        }
        let summary = writer.finish().unwrap();
        let _ = finish();
        assert!(summary.segments >= 4, "wrote {} segments", summary.segments);
        assert_eq!(summary.dropped, 0);
        let files = segment_files(&dir).unwrap();
        assert!(files.len() <= 3, "pruned down to max_segments");
        assert_eq!(
            summary.pruned,
            summary.segments - files.len() as u64,
            "every removed file was a whole, previously finalized segment"
        );
        // The retained segments are the newest, each one well-formed.
        let names: Vec<String> = files
            .iter()
            .map(|f| f.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(
            names.last().map(String::as_str),
            Some(format!("segment-{:05}.json", summary.segments - 1).as_str())
        );
        for file in &files {
            let text = std::fs::read_to_string(file).unwrap();
            let trace = crate::chrome::from_chrome_json(&text).unwrap();
            trace.check().unwrap();
            assert!(!trace.is_empty());
        }
        // No temp file left behind.
        assert!(!dir.join(".segment.tmp").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shard_labeled_segments_merge_with_clock_normalization() {
        let _guard = session_lock();
        let dir = temp_dir("shards");
        // Deliberately above f64's 53-bit mantissa to exercise hex ids.
        let trace_id = 0xffff_ffff_ffff_fff7_u64;

        let record_shard = |shard: u32, skew_ns: u64| {
            let clock = Arc::new(TestClock::new());
            start_with_clock(clock.clone(), 256);
            clock.advance(skew_ns); // simulate a shard-local clock offset
            {
                let _s = span(Label::intern("stream.serve")).trace(trace_id).start();
                clock.advance(100);
            }
            let mut writer = SegmentWriter::create(
                &dir,
                DrainConfig {
                    shard: Some(shard),
                    ..DrainConfig::default()
                },
            )
            .unwrap();
            writer.absorb(finish());
            writer.finish().unwrap();
        };
        record_shard(0, 10_000);
        record_shard(1, 777_000);

        let files = segment_files(&dir).unwrap();
        assert!(files.iter().any(|f| {
            f.file_name()
                .unwrap()
                .to_str()
                .unwrap()
                .starts_with("segment-shard1-")
        }));
        let stitched = stitch_segments(&dir).unwrap();
        stitched.check().unwrap();
        let spans = stitched.spans().unwrap();
        assert_eq!(spans.len(), 2);
        let shards: std::collections::BTreeSet<_> =
            spans.iter().filter_map(|s| s.attrs.shard).collect();
        assert_eq!(shards.into_iter().collect::<Vec<_>>(), vec![0, 1]);
        for s in &spans {
            assert_eq!(s.attrs.trace, Some(trace_id));
            assert_eq!(
                s.start_ns, 0,
                "per-shard clocks normalize to a common origin"
            );
        }
        assert!(stitched.thread_name(0).unwrap().starts_with("shard0:"));
        assert!(stitched.thread_name(1).unwrap().starts_with("shard1:"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unlabeled_segments_from_different_processes_refuse_to_stitch() {
        let dir = temp_dir("mixed-process");
        std::fs::create_dir_all(&dir).unwrap();
        let seg = |process: &str| {
            format!(
                "{{\"displayTimeUnit\":\"ns\",\"otherData\":{{\"process\":\"{process}\"}},\
                 \"traceEvents\":[{{\"name\":\"x\",\"ph\":\"i\",\"ts\":1.0,\"s\":\"t\",\
                 \"pid\":1,\"tid\":0}}]}}"
            )
        };
        std::fs::write(dir.join("segment-00000.json"), seg("100")).unwrap();
        std::fs::write(dir.join("segment-00001.json"), seg("200")).unwrap();
        let err = stitch_segments(&dir).unwrap_err();
        assert!(err.contains("different processes"), "{err}");
        assert!(err.contains("shard"), "error suggests shard labels: {err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mixed_labeled_and_unlabeled_segments_refuse_to_stitch() {
        let dir = temp_dir("mixed-labels");
        std::fs::create_dir_all(&dir).unwrap();
        let seg = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[{\"name\":\"x\",\
                   \"ph\":\"i\",\"ts\":1.0,\"s\":\"t\",\"pid\":1,\"tid\":0}]}";
        std::fs::write(dir.join("segment-00000.json"), seg).unwrap();
        std::fs::write(dir.join("segment-shard1-00000.json"), seg).unwrap();
        let err = stitch_segments(&dir).unwrap_err();
        assert!(err.contains("unlabeled"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drainer_thread_sweeps_and_finalizes_on_drop() {
        let _guard = session_lock();
        let dir = temp_dir("drainer");
        crate::collector::start();
        {
            let _drainer = TraceDrainer::spawn(
                &dir,
                DrainConfig {
                    period: Duration::from_millis(1),
                    max_segment_events: 4,
                    ..DrainConfig::default()
                },
            )
            .unwrap();
            for i in 0..32u64 {
                let _s = span(Label::intern("stream.live")).frame(i).start();
            }
        } // drop finalizes
        let _ = finish();
        let stitched = stitch_segments(&dir).unwrap();
        assert_eq!(
            stitched
                .spans()
                .unwrap()
                .iter()
                .filter(|s| stitched.label_name(s.label) == "stream.live")
                .count(),
            32
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
