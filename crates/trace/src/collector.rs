//! The lock-minimal collector: per-thread ring buffers feeding a central
//! registry.
//!
//! Design:
//! - When tracing is disabled (the default), every record call is a
//!   single relaxed atomic load and an early return.
//! - When enabled, each thread lazily registers with the session and
//!   caches an `Arc` to its own bounded ring plus the session clock in a
//!   thread-local. Recording locks only the thread's *own* ring mutex,
//!   which no other thread touches until `finish()` drains it — the lock
//!   is uncontended on the hot path.
//! - Sessions carry a generation number; a cached thread-local handle
//!   from a previous session is detected by generation mismatch and
//!   re-registered, so `start()`/`finish()` can cycle freely (tests do).

use crate::clock::{Clock, MonotonicClock};
use crate::data::Trace;
use crate::event::{label_table, Attrs, Event, EventKind, Label};
use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Default per-thread ring capacity (events). At ~64 bytes per event a
/// 10-thread session tops out around 160 MiB worst case; real demo/serve
/// runs stay under a few thousand events per thread.
pub const DEFAULT_THREAD_CAPACITY: usize = 1 << 18;

static ENABLED: AtomicBool = AtomicBool::new(false);
static GENERATION: AtomicU64 = AtomicU64::new(0);

struct Session {
    generation: u64,
    clock: Arc<dyn Clock>,
    capacity: usize,
    rings: Vec<Arc<Mutex<Ring>>>,
    /// OS thread names, parallel to `rings` (`""` for unnamed threads).
    names: Vec<String>,
    /// Span-link sets recorded by `intern_links`; `Attrs::links` indexes
    /// into this table.
    links: Vec<Vec<u64>>,
}

fn registry() -> &'static Mutex<Option<Session>> {
    static REGISTRY: OnceLock<Mutex<Option<Session>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(None))
}

/// A bounded flight-recorder ring: keeps the most recent `capacity`
/// events, counting overwritten ones.
struct Ring {
    buf: Vec<Event>,
    capacity: usize,
    head: usize,
    /// Drops since the last sweep/finish (folded into [`Trace::dropped`]).
    dropped: u64,
    /// Session-lifetime drops; never reset, so live metrics stay
    /// monotonic even though sweeps consume `dropped`.
    total_dropped: u64,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        Self {
            buf: Vec::new(),
            capacity: capacity.max(1),
            head: 0,
            dropped: 0,
            total_dropped: 0,
        }
    }

    fn push(&mut self, event: Event) {
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
            self.total_dropped += 1;
        }
    }

    fn drain(&mut self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        self.buf.clear();
        self.head = 0;
        out
    }
}

struct ThreadHandle {
    generation: u64,
    thread: u32,
    clock: Arc<dyn Clock>,
    ring: Arc<Mutex<Ring>>,
}

thread_local! {
    static HANDLE: RefCell<Option<ThreadHandle>> = const { RefCell::new(None) };
}

/// Starts a trace session on the real monotonic clock with the default
/// per-thread ring capacity. An already-running session is discarded.
pub fn start() {
    start_with_clock(Arc::new(MonotonicClock::new()), DEFAULT_THREAD_CAPACITY);
}

/// Starts a trace session on an injected clock, with `capacity` events
/// retained per thread (a flight recorder: the newest events win).
pub fn start_with_clock(clock: Arc<dyn Clock>, capacity: usize) {
    let mut registry = registry().lock();
    let generation = GENERATION.fetch_add(1, Ordering::AcqRel) + 1;
    *registry = Some(Session {
        generation,
        clock,
        capacity,
        rings: Vec::new(),
        names: Vec::new(),
        links: Vec::new(),
    });
    ENABLED.store(true, Ordering::Release);
}

/// Whether a session is recording. One relaxed load — this is the whole
/// cost of tracing when disabled.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Stops the session and returns the merged, time-sorted trace. Returns
/// an empty trace when no session was running.
pub fn finish() -> Trace {
    ENABLED.store(false, Ordering::Release);
    let session = registry().lock().take();
    let Some(session) = session else {
        return Trace::empty();
    };
    let mut events = Vec::new();
    let mut dropped = 0;
    for ring in &session.rings {
        let mut ring = ring.lock();
        events.extend(ring.drain());
        dropped += ring.dropped;
    }
    // Stable sort: events of one thread were appended in recording order,
    // so equal timestamps (deterministic test clocks) keep that order.
    events.sort_by_key(|e| e.t_ns);
    Trace {
        events,
        labels: label_table(),
        threads: u32::try_from(session.rings.len()).unwrap_or(u32::MAX),
        thread_names: session.names,
        links: session.links,
        dropped,
    }
}

/// Drains every completed event out of the running session's rings
/// without stopping it — the streaming-drain primitive behind
/// [`TraceDrainer`](crate::TraceDrainer). Begin edges whose End has not
/// been recorded yet are held back (re-queued at the front of their
/// ring), so a span that straddles a sweep boundary lands whole in a
/// later sweep and every returned trace contains only matched spans and
/// instants. Returns `None` when no session is running.
pub fn sweep() -> Option<Trace> {
    let mut registry = registry().lock();
    let session = registry.as_mut()?;
    let mut events = Vec::new();
    let mut dropped = 0;
    for ring in &session.rings {
        let mut ring = ring.lock();
        let drained = ring.drain();
        dropped += std::mem::take(&mut ring.dropped);
        // Walk the thread's stream to find unmatched Begin edges (same
        // tolerant matching as `Trace::spans_lossy`).
        let mut stack: Vec<usize> = Vec::new();
        for (i, event) in drained.iter().enumerate() {
            match event.kind {
                EventKind::Begin => stack.push(i),
                EventKind::End => {
                    if let Some(&top) = stack.last() {
                        if drained[top].label == event.label {
                            stack.pop();
                        }
                    }
                }
                EventKind::Instant | EventKind::FlowStart | EventKind::FlowFinish => {}
            }
        }
        let mut held = stack.into_iter().peekable();
        for (i, event) in drained.into_iter().enumerate() {
            if held.peek() == Some(&i) {
                held.next();
                // The ring was just drained, so these pushes cannot wrap.
                ring.push(event);
            } else {
                events.push(event);
            }
        }
    }
    events.sort_by_key(|e| e.t_ns);
    Some(Trace {
        events,
        labels: label_table(),
        threads: u32::try_from(session.rings.len()).unwrap_or(u32::MAX),
        thread_names: session.names.clone(),
        links: session.links.clone(),
        dropped,
    })
}

/// Per-thread flight-recorder drop counts for the *running* session:
/// `(thread name, events overwritten since the session started)`, in
/// registration order. Unlike the per-sweep counts folded into
/// [`Trace::dropped`], these are cumulative — the live
/// `tincy_trace_dropped_total{thread}` metric reads them. `None` when no
/// session is running.
pub fn thread_drops() -> Option<Vec<(String, u64)>> {
    let registry = registry().lock();
    let session = registry.as_ref()?;
    Some(
        session
            .rings
            .iter()
            .zip(&session.names)
            .map(|(ring, name)| (name.clone(), ring.lock().total_dropped))
            .collect(),
    )
}

/// Stores a span-link set (member request ids) in the running session
/// and returns its id. `None` when no session is running.
pub(crate) fn intern_links(ids: &[u64]) -> Option<u32> {
    let mut registry = registry().lock();
    let session = registry.as_mut()?;
    let id = u32::try_from(session.links.len()).expect("link space exhausted");
    session.links.push(ids.to_vec());
    Some(id)
}

fn register_thread(generation: u64) -> Option<ThreadHandle> {
    let mut registry = registry().lock();
    let session = registry.as_mut()?;
    if session.generation != generation {
        return None;
    }
    let thread = u32::try_from(session.rings.len()).expect("thread space exhausted");
    let ring = Arc::new(Mutex::new(Ring::new(session.capacity)));
    session.rings.push(Arc::clone(&ring));
    session
        .names
        .push(std::thread::current().name().unwrap_or("").to_string());
    Some(ThreadHandle {
        generation,
        thread,
        clock: Arc::clone(&session.clock),
        ring,
    })
}

/// Records one event on the calling thread's ring. No-op when disabled.
pub(crate) fn record(kind: EventKind, label: Label, attrs: Attrs) {
    if !is_enabled() {
        return;
    }
    let generation = GENERATION.load(Ordering::Acquire);
    HANDLE.with(|cell| {
        let mut slot = cell.borrow_mut();
        let stale = match slot.as_ref() {
            Some(handle) => handle.generation != generation,
            None => true,
        };
        if stale {
            match register_thread(generation) {
                Some(handle) => *slot = Some(handle),
                // The session ended (or restarted) mid-call; drop the event.
                None => return,
            }
        }
        let handle = slot.as_ref().expect("handle registered above");
        let event = Event {
            t_ns: handle.clock.now_ns(),
            thread: handle.thread,
            kind,
            label,
            attrs,
        };
        handle.ring.lock().push(event);
    });
}

/// The session generation a just-started span belongs to; used by span
/// guards to suppress the End edge if the session changed underneath.
pub(crate) fn current_generation() -> u64 {
    GENERATION.load(Ordering::Acquire)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TestClock;
    use crate::test_lock::session_lock;

    #[test]
    fn ring_keeps_newest_events_and_counts_drops() {
        let mut ring = Ring::new(3);
        for i in 0..5u64 {
            ring.push(Event {
                t_ns: i,
                thread: 0,
                kind: EventKind::Instant,
                label: Label(0),
                attrs: Attrs::default(),
            });
        }
        assert_eq!(ring.dropped, 2);
        let drained: Vec<u64> = ring.drain().iter().map(|e| e.t_ns).collect();
        assert_eq!(drained, vec![2, 3, 4]);
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _guard = session_lock();
        assert!(!is_enabled());
        record(
            EventKind::Instant,
            Label::intern("collector.disabled"),
            Attrs::default(),
        );
        let trace = finish();
        assert!(trace.events.is_empty());
    }

    #[test]
    fn thread_drops_are_cumulative_across_sweeps() {
        let _guard = session_lock();
        let clock = Arc::new(TestClock::new());
        start_with_clock(clock, 2); // tiny rings force overwrites
        let label = Label::intern("collector.drop");
        for _ in 0..5 {
            record(EventKind::Instant, label, Attrs::default());
        }
        let total = |drops: &[(String, u64)]| drops.iter().map(|(_, d)| *d).sum::<u64>();
        assert_eq!(total(&thread_drops().expect("session running")), 3);
        let swept = sweep().expect("session running");
        assert_eq!(swept.dropped, 3);
        // The sweep consumed the per-sweep count but not the cumulative one.
        assert_eq!(total(&thread_drops().expect("session running")), 3);
        for _ in 0..3 {
            record(EventKind::Instant, label, Attrs::default());
        }
        assert_eq!(total(&thread_drops().expect("session running")), 4);
        assert_eq!(finish().dropped, 1);
        assert!(thread_drops().is_none(), "no session after finish");
    }

    #[test]
    fn session_collects_across_restarts() {
        let _guard = session_lock();
        let clock = Arc::new(TestClock::new());
        start_with_clock(clock.clone(), 64);
        record(
            EventKind::Instant,
            Label::intern("collector.first"),
            Attrs::default(),
        );
        let first = finish();
        assert_eq!(first.events.len(), 1);
        assert_eq!(first.threads, 1);

        // A second session must re-register the same OS thread.
        start_with_clock(clock, 64);
        record(
            EventKind::Instant,
            Label::intern("collector.second"),
            Attrs::default(),
        );
        let second = finish();
        assert_eq!(second.events.len(), 1);
        assert_eq!(
            second.label_name(second.events[0].label),
            "collector.second"
        );
    }
}
