//! JSON parsing for Chrome trace import. The parser itself lives in
//! [`tincy_json`] (the workspace's single hand-rolled JSON layer); this
//! module re-exports it under the historical `tincy_trace::json` path.
//! The writer side lives in [`crate::chrome`].

pub use tincy_json::{parse, JsonValue};
