//! `tincy-trace`: low-overhead structured event tracing for the Tincy
//! system.
//!
//! Concurrency design (per DESIGN.md §8 "Observability"):
//! - **Disabled** (default): every instrumentation site costs one relaxed
//!   atomic load.
//! - **Enabled**: each thread records into its own bounded ring buffer
//!   behind a mutex nobody else touches mid-session — lock-minimal, not
//!   lock-free, which the vendored `parking_lot` shim supports without
//!   unsafe code.
//! - [`finish`] drains every ring into a time-sorted [`Trace`] that can
//!   be validated ([`Trace::check`]), folded into a [`Profile`], or
//!   exported as Chrome trace-event JSON ([`to_chrome_json`]) for
//!   `chrome://tracing` / Perfetto.
//!
//! Timestamps come from a [`Clock`] the session injects: production uses
//! [`MonotonicClock`], tests drive a [`TestClock`] by hand.

mod chrome;
mod clock;
mod collector;
mod context;
mod data;
mod event;
pub mod journey;
pub mod json;
mod profile;
mod span;
mod stream;

pub use chrome::{from_chrome_json, to_chrome_json};
pub use clock::{Clock, MonotonicClock, TestClock};
pub use collector::{
    finish, is_enabled, start, start_with_clock, sweep, thread_drops, DEFAULT_THREAD_CAPACITY,
};
pub use context::{splitmix64, TraceContext};
pub use data::{Span, Trace, TraceError};
pub use event::{Attrs, Backend, Event, EventKind, Label};
pub use journey::{journeys, JourneyError, RequestJourney};
pub use profile::{Profile, ProfileRow};
pub use span::{span, SpanBuilder, SpanGuard};
pub use stream::{
    segment_files, stitch_segments, DrainConfig, DrainSummary, SegmentWriter, TraceDrainer,
};

#[cfg(test)]
pub(crate) mod test_lock {
    //! The trace session is process-global; unit tests that start/finish
    //! sessions serialize on this lock so `cargo test`'s parallel runner
    //! cannot interleave them.
    use parking_lot::{Mutex, MutexGuard};

    static LOCK: Mutex<()> = Mutex::new(());

    pub fn session_lock() -> MutexGuard<'static, ()> {
        LOCK.lock()
    }
}
