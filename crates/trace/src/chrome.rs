//! Chrome trace-event export and import.
//!
//! The exporter writes the JSON array format understood by
//! `chrome://tracing` and Perfetto: matched spans become complete `"X"`
//! events (microsecond `ts`/`dur`), instants become `"i"` events with
//! thread scope, and typed attributes land in `args`. JSON is hand-rolled
//! (same house style as `crates/serve/src/json.rs` — no serde); the
//! importer reconstructs a [`Trace`] via the minimal parser in
//! [`crate::json`].

use crate::data::Trace;
use crate::event::{Attrs, Backend, Event, EventKind, Label};
use crate::json::{parse, JsonValue};
use std::collections::{BTreeSet, HashMap};
use std::fmt::Write as _;
use tincy_json::escape_into;

const CATEGORY: &str = "tincy";

/// Identity of the recorder that wrote a segment, embedded in the
/// exported JSON's `otherData` so stitching can tell apart segments that
/// came from different processes/shards sharing one directory.
#[derive(Debug, Clone)]
pub(crate) struct SegmentOrigin {
    /// Writing process (its pid rendered as a string).
    pub process: String,
    /// Fleet shard index, when the recording session declared one.
    pub shard: Option<u32>,
}

/// Serializes the trace to Chrome trace-event JSON (object form with a
/// `traceEvents` array, `displayTimeUnit: "ns"`).
pub fn to_chrome_json(trace: &Trace) -> String {
    render_chrome_json(trace, None)
}

pub(crate) fn render_chrome_json(trace: &Trace, origin: Option<&SegmentOrigin>) -> String {
    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ns\",");
    if let Some(origin) = origin {
        out.push_str("\"otherData\":{\"process\":\"");
        escape_into(&mut out, &origin.process);
        out.push('"');
        if let Some(shard) = origin.shard {
            let _ = write!(out, ",\"shard\":\"{shard}\"");
        }
        out.push_str("},");
    }
    out.push_str("\"traceEvents\":[");
    let mut first = true;
    // Perfetto track names: one thread_name metadata event per named
    // thread, so workers show up as named tracks instead of raw tids.
    for (tid, name) in trace.thread_names.iter().enumerate() {
        if name.is_empty() {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"name\":\""
        );
        escape_into(&mut out, name);
        out.push_str("\"}}");
    }
    for span in trace.spans_lossy() {
        emit_event(
            &mut out,
            &mut first,
            trace.label_name(span.label),
            "X",
            span.start_ns,
            Some(span.end_ns.saturating_sub(span.start_ns)),
            span.thread,
            &span.attrs,
            trace,
        );
    }
    for instant in trace.instants() {
        emit_event(
            &mut out,
            &mut first,
            trace.label_name(instant.label),
            "i",
            instant.t_ns,
            None,
            instant.thread,
            &instant.attrs,
            trace,
        );
    }
    for flow in trace.flows() {
        let phase = if flow.kind == EventKind::FlowStart {
            "s"
        } else {
            "f"
        };
        emit_event(
            &mut out,
            &mut first,
            trace.label_name(flow.label),
            phase,
            flow.t_ns,
            None,
            flow.thread,
            &flow.attrs,
            trace,
        );
    }
    out.push_str("]}");
    out
}

#[allow(clippy::too_many_arguments)]
fn emit_event(
    out: &mut String,
    first: &mut bool,
    name: &str,
    phase: &str,
    t_ns: u64,
    dur_ns: Option<u64>,
    tid: u32,
    attrs: &Attrs,
    trace: &Trace,
) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str("{\"name\":\"");
    escape_into(out, name);
    let _ = write!(
        out,
        "\",\"cat\":\"{CATEGORY}\",\"ph\":\"{phase}\",\"ts\":{}",
        micros(t_ns)
    );
    if let Some(dur) = dur_ns {
        let _ = write!(out, ",\"dur\":{}", micros(dur));
    }
    if phase == "i" {
        out.push_str(",\"s\":\"t\"");
    }
    if phase == "s" || phase == "f" {
        // Perfetto joins flow arrows by id; ours is the trace id (hex —
        // 64-bit ids do not survive a JSON f64 round trip as numbers).
        let _ = write!(out, ",\"id\":\"{:016x}\"", attrs.trace.unwrap_or(0));
        if phase == "f" {
            out.push_str(",\"bp\":\"e\"");
        }
    }
    let _ = write!(out, ",\"pid\":1,\"tid\":{tid}");
    if !attrs.is_empty() {
        out.push_str(",\"args\":{");
        let mut first_arg = true;
        fn arg_u64(out: &mut String, first_arg: &mut bool, key: &str, value: Option<u64>) {
            if let Some(value) = value {
                if !*first_arg {
                    out.push(',');
                }
                *first_arg = false;
                let _ = write!(out, "\"{key}\":{value}");
            }
        }
        // Hex-string form for 64-bit ids (see the flow id note above).
        fn arg_hex(out: &mut String, first_arg: &mut bool, key: &str, value: Option<u64>) {
            if let Some(value) = value {
                if !*first_arg {
                    out.push(',');
                }
                *first_arg = false;
                let _ = write!(out, "\"{key}\":\"{value:016x}\"");
            }
        }
        arg_u64(out, &mut first_arg, "frame", attrs.frame);
        arg_u64(out, &mut first_arg, "request", attrs.request);
        arg_u64(out, &mut first_arg, "layer", attrs.layer.map(u64::from));
        arg_u64(out, &mut first_arg, "batch", attrs.batch.map(u64::from));
        arg_u64(out, &mut first_arg, "attempt", attrs.attempt.map(u64::from));
        arg_u64(out, &mut first_arg, "cycles", attrs.cycles);
        arg_u64(out, &mut first_arg, "shard", attrs.shard.map(u64::from));
        arg_hex(out, &mut first_arg, "trace", attrs.trace);
        arg_hex(out, &mut first_arg, "parent", attrs.parent);
        if let Some(backend) = attrs.backend {
            if !first_arg {
                out.push(',');
            }
            first_arg = false;
            let _ = write!(out, "\"backend\":\"{}\"", backend.label());
        }
        if let Some(fault) = attrs.fault {
            if !first_arg {
                out.push(',');
            }
            first_arg = false;
            out.push_str("\"fault\":\"");
            escape_into(out, trace.label_name(fault));
            out.push('"');
        }
        if let Some(variant) = attrs.variant {
            if !first_arg {
                out.push(',');
            }
            first_arg = false;
            out.push_str("\"variant\":\"");
            escape_into(out, trace.label_name(variant));
            out.push('"');
        }
        if let Some(links) = attrs.links {
            if !first_arg {
                out.push(',');
            }
            out.push_str("\"links\":[");
            for (i, id) in trace.link_requests(links).iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{id}");
            }
            out.push(']');
        }
        out.push('}');
    }
    out.push('}');
}

/// Nanoseconds as a microsecond decimal with nanosecond resolution.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Parses Chrome trace-event JSON (as produced by [`to_chrome_json`],
/// tolerant of the bare-array form and of unknown phases) back into a
/// [`Trace`]. Complete `"X"` events are split back into Begin/End pairs.
///
/// # Errors
///
/// A message describing the malformed construct.
pub fn from_chrome_json(text: &str) -> Result<Trace, String> {
    let mut assembly = TraceAssembly::new();
    assembly.ingest(text)?;
    Ok(assembly.into_trace())
}

struct SpanRec {
    start: u64,
    end: u64,
    label: Label,
    attrs: Attrs,
}

/// Incremental importer: ingests one or more Chrome trace-event JSON
/// documents — the segments of one recording session — and assembles a
/// single [`Trace`]. Labels, link sets and thread names are merged
/// across documents; [`Self::into_trace`] rebuilds the Begin/End stream.
/// This is what segment stitching ([`crate::stitch_segments`]) and the
/// single-file [`from_chrome_json`] share.
pub(crate) struct TraceAssembly {
    labels: Vec<String>,
    by_name: HashMap<String, u32>,
    spans: HashMap<u32, Vec<SpanRec>>,
    instants: Vec<Event>,
    thread_names: Vec<String>,
    links: Vec<Vec<u64>>,
    max_thread: Option<u32>,
    /// Distinct `otherData.process` tags seen across ingested documents.
    /// More than one means the directory mixes recordings from different
    /// processes, which cannot be interleaved without shard labels.
    pub(crate) processes: BTreeSet<String>,
}

impl TraceAssembly {
    pub(crate) fn new() -> Self {
        Self {
            labels: Vec::new(),
            by_name: HashMap::new(),
            spans: HashMap::new(),
            instants: Vec::new(),
            thread_names: Vec::new(),
            links: Vec::new(),
            max_thread: None,
            processes: BTreeSet::new(),
        }
    }

    fn intern(&mut self, name: &str) -> Label {
        if let Some(&id) = self.by_name.get(name) {
            return Label(id);
        }
        let id = u32::try_from(self.labels.len()).expect("label space exhausted");
        self.labels.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        Label(id)
    }

    /// Parses one Chrome trace-event document into the assembly.
    ///
    /// # Errors
    ///
    /// A message describing the malformed construct.
    pub(crate) fn ingest(&mut self, text: &str) -> Result<(), String> {
        let root = parse(text)?;
        if let Some(process) = root
            .get("otherData")
            .and_then(|data| data.get("process"))
            .and_then(JsonValue::as_str)
        {
            self.processes.insert(process.to_string());
        }
        let events_json = match &root {
            JsonValue::Arr(items) => items,
            JsonValue::Obj(_) => match root.get("traceEvents") {
                Some(JsonValue::Arr(items)) => items,
                _ => return Err("missing traceEvents array".to_string()),
            },
            _ => return Err("trace file is neither an object nor an array".to_string()),
        };
        for item in events_json {
            let phase = item.get("ph").and_then(JsonValue::as_str).unwrap_or("");
            if phase == "M" {
                self.ingest_metadata(item);
                continue;
            }
            let point_kind = match phase {
                "X" => None,
                "i" => Some(EventKind::Instant),
                "s" => Some(EventKind::FlowStart),
                "f" => Some(EventKind::FlowFinish),
                _ => continue, // other phases are not ours
            };
            let name = item
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or("event without a name")?;
            let ts = item
                .get("ts")
                .and_then(JsonValue::as_f64)
                .ok_or("event without ts")?;
            let thread = tid_of(item);
            self.max_thread = Some(self.max_thread.map_or(thread, |m: u32| m.max(thread)));
            let t_ns = to_ns(ts);
            let label = self.intern(name);
            let mut attrs = self.parse_attrs(item.get("args"));
            if let Some(kind) = point_kind {
                if attrs.trace.is_none()
                    && matches!(kind, EventKind::FlowStart | EventKind::FlowFinish)
                {
                    // Foreign flow events carry the join id only at the
                    // top level; adopt it as the trace id.
                    attrs.trace = item
                        .get("id")
                        .and_then(JsonValue::as_str)
                        .and_then(|s| u64::from_str_radix(s, 16).ok());
                }
                self.instants.push(Event {
                    t_ns,
                    thread,
                    kind,
                    label,
                    attrs,
                });
            } else {
                let dur = item.get("dur").and_then(JsonValue::as_f64).unwrap_or(0.0);
                self.spans.entry(thread).or_default().push(SpanRec {
                    start: t_ns,
                    end: t_ns + to_ns(dur),
                    label,
                    attrs,
                });
            }
        }
        Ok(())
    }

    /// Thread-name metadata events restore Perfetto track names.
    fn ingest_metadata(&mut self, item: &JsonValue) {
        if item.get("name").and_then(JsonValue::as_str) != Some("thread_name") {
            return;
        }
        let Some(name) = item
            .get("args")
            .and_then(|args| args.get("name"))
            .and_then(JsonValue::as_str)
        else {
            return;
        };
        let tid = tid_of(item) as usize;
        if self.thread_names.len() <= tid {
            self.thread_names.resize(tid + 1, String::new());
        }
        self.thread_names[tid] = name.to_string();
    }

    fn parse_attrs(&mut self, args: Option<&JsonValue>) -> Attrs {
        let mut attrs = Attrs::default();
        let Some(args) = args else {
            return attrs;
        };
        let as_u64 = |key: &str| -> Option<u64> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            args.get(key).and_then(JsonValue::as_f64).map(|v| v as u64)
        };
        #[allow(clippy::cast_possible_truncation)]
        let as_u32 = |key: &str| as_u64(key).map(|v| v as u32);
        // 64-bit ids travel as hex strings: `as_f64` would round them
        // through a double and corrupt the low bits.
        let as_hex = |key: &str| -> Option<u64> {
            args.get(key)
                .and_then(JsonValue::as_str)
                .and_then(|s| u64::from_str_radix(s, 16).ok())
        };
        attrs.frame = as_u64("frame");
        attrs.request = as_u64("request");
        attrs.layer = as_u32("layer");
        attrs.batch = as_u32("batch");
        attrs.attempt = as_u32("attempt");
        attrs.cycles = as_u64("cycles");
        attrs.shard = as_u32("shard");
        attrs.trace = as_hex("trace");
        attrs.parent = as_hex("parent");
        attrs.backend = args
            .get("backend")
            .and_then(JsonValue::as_str)
            .and_then(Backend::from_label);
        attrs.fault = args
            .get("fault")
            .and_then(JsonValue::as_str)
            .map(|name| self.intern(name));
        attrs.variant = args
            .get("variant")
            .and_then(JsonValue::as_str)
            .map(|name| self.intern(name));
        if let Some(JsonValue::Arr(items)) = args.get("links") {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let ids: Vec<u64> = items
                .iter()
                .filter_map(JsonValue::as_f64)
                .map(|v| v.max(0.0) as u64)
                .collect();
            let id = u32::try_from(self.links.len()).expect("link space exhausted");
            self.links.push(ids);
            attrs.links = Some(id);
        }
        attrs
    }

    /// Rebuilds each thread's Begin/End stream with an interval sweep:
    /// sorting spans (start asc, end desc) puts parents before children
    /// even when a deterministic clock made edges share a timestamp, so
    /// stack discipline survives the round trip.
    pub(crate) fn into_trace(mut self) -> Trace {
        let mut events = Vec::new();
        let mut thread_ids: Vec<u32> = self.spans.keys().copied().collect();
        thread_ids.sort_unstable();
        for thread in thread_ids {
            let mut recs = self.spans.remove(&thread).unwrap_or_default();
            recs.sort_by(|a, b| a.start.cmp(&b.start).then(b.end.cmp(&a.end)));
            let mut stack: Vec<(u64, Label)> = Vec::new();
            for rec in &recs {
                while let Some(&(end, label)) = stack.last() {
                    if end > rec.start {
                        break;
                    }
                    stack.pop();
                    events.push(Event {
                        t_ns: end,
                        thread,
                        kind: EventKind::End,
                        label,
                        attrs: Attrs::default(),
                    });
                }
                events.push(Event {
                    t_ns: rec.start,
                    thread,
                    kind: EventKind::Begin,
                    label: rec.label,
                    attrs: rec.attrs,
                });
                stack.push((rec.end, rec.label));
            }
            while let Some((end, label)) = stack.pop() {
                events.push(Event {
                    t_ns: end,
                    thread,
                    kind: EventKind::End,
                    label,
                    attrs: Attrs::default(),
                });
            }
        }
        events.extend(self.instants);
        // Stable: each thread's sweep output is already time-ordered, so
        // the global sort only interleaves threads (instants land after
        // edges sharing their timestamp, which nesting checks ignore).
        events.sort_by_key(|e| e.t_ns);
        let threads = self
            .max_thread
            .map_or(0, |m| m + 1)
            .max(u32::try_from(self.thread_names.len()).unwrap_or(u32::MAX));
        Trace {
            events,
            labels: self.labels,
            threads,
            thread_names: self.thread_names,
            links: self.links,
            dropped: 0,
        }
    }
}

fn tid_of(item: &JsonValue) -> u32 {
    let tid = item.get("tid").and_then(JsonValue::as_f64).unwrap_or(0.0);
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    {
        tid.max(0.0) as u32
    }
}

#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
fn to_ns(micros: f64) -> u64 {
    (micros * 1_000.0).round().max(0.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TestClock;
    use crate::collector::{finish, start_with_clock};
    use crate::span::span;
    use crate::test_lock::session_lock;
    use std::sync::Arc;

    fn sample_trace() -> Trace {
        let clock = Arc::new(TestClock::new());
        start_with_clock(clock.clone(), 64);
        {
            let _outer = span(Label::intern("chrome.stage"))
                .frame(4)
                .backend(Backend::Finn)
                .start();
            clock.advance(1_500);
            {
                let _inner = span(Label::intern("chrome.layer"))
                    .layer(2)
                    .batch(3)
                    .start();
                clock.advance(2_000);
            }
            clock.advance(250);
            span(Label::intern("chrome.fault"))
                .attempt(1)
                .fault("dma timeout")
                .variant("unrolled4")
                .emit();
            clock.advance(250);
        }
        finish()
    }

    #[test]
    fn export_emits_complete_and_instant_events() {
        let _guard = session_lock();
        let trace = sample_trace();
        let json = to_chrome_json(&trace);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"backend\":\"finn\""));
        assert!(json.contains("\"fault\":\"dma timeout\""));
        assert!(json.contains("\"dur\":2.000"), "inner span is 2 µs: {json}");
    }

    #[test]
    fn round_trip_preserves_spans_and_attrs() {
        let _guard = session_lock();
        let trace = sample_trace();
        let parsed = from_chrome_json(&to_chrome_json(&trace)).unwrap();
        parsed.check().unwrap();
        let original = trace.spans().unwrap();
        let restored = parsed.spans().unwrap();
        assert_eq!(original.len(), restored.len());
        for span in &restored {
            let name = parsed.label_name(span.label);
            let twin = original
                .iter()
                .find(|s| trace.label_name(s.label) == name)
                .expect("span survives round trip");
            assert_eq!(span.duration_ns(), twin.duration_ns());
            assert_eq!(span.attrs.frame, twin.attrs.frame);
            assert_eq!(span.attrs.layer, twin.attrs.layer);
            assert_eq!(span.attrs.backend, twin.attrs.backend);
        }
        let fault = parsed
            .instants()
            .find(|e| parsed.label_name(e.label) == "chrome.fault")
            .expect("instant survives round trip");
        assert_eq!(
            fault.attrs.fault.map(|l| parsed.label_name(l).to_string()),
            Some("dma timeout".to_string())
        );
        assert_eq!(
            fault
                .attrs
                .variant
                .map(|l| parsed.label_name(l).to_string()),
            Some("unrolled4".to_string())
        );
        assert_eq!(fault.attrs.attempt, Some(1));
    }

    #[test]
    fn thread_names_and_links_round_trip() {
        let _guard = session_lock();
        start_with_clock(Arc::new(TestClock::new()), 64);
        let worker = std::thread::Builder::new()
            .name("chrome-worker".to_string())
            .spawn(|| {
                let _batch = span(Label::intern("chrome.batch"))
                    .batch(3)
                    .link_requests(&[7, 11, 13])
                    .start();
            })
            .unwrap();
        worker.join().unwrap();
        let trace = finish();
        assert_eq!(trace.thread_name(0), Some("chrome-worker"));
        let json = to_chrome_json(&trace);
        assert!(
            json.contains("\"ph\":\"M\""),
            "thread_name metadata: {json}"
        );
        assert!(json.contains("\"links\":[7,11,13]"), "{json}");

        let parsed = from_chrome_json(&json).unwrap();
        assert_eq!(parsed.thread_name(0), Some("chrome-worker"));
        let spans = parsed.spans().unwrap();
        assert_eq!(spans.len(), 1);
        let link = spans[0].attrs.links.expect("link id survives");
        assert_eq!(parsed.link_requests(link), &[7, 11, 13]);
    }

    #[test]
    fn trace_ids_and_flows_round_trip_exactly() {
        let _guard = session_lock();
        // Both ids deliberately exceed f64's 53-bit mantissa: a numeric
        // JSON round trip would corrupt them, the hex form must not.
        let ctx = crate::TraceContext {
            trace_id: 0xffee_ddcc_bbaa_9988,
            parent_span_id: 0x0123_4567_89ab_cdef,
        };
        let clock = Arc::new(TestClock::new());
        start_with_clock(clock.clone(), 64);
        span(Label::intern("chrome.route"))
            .context(Some(ctx))
            .shard(1)
            .emit_flow_start();
        clock.advance(500);
        {
            let _serve = span(Label::intern("chrome.serve"))
                .context(Some(ctx))
                .shard(1)
                .start();
            clock.advance(1_000);
        }
        span(Label::intern("chrome.route"))
            .trace(ctx.trace_id)
            .emit_flow_finish();
        let trace = finish();
        let json = to_chrome_json(&trace);
        assert!(
            json.contains(&format!("\"id\":\"{}\"", ctx.trace_hex())),
            "flow join id is the hex trace id: {json}"
        );
        assert!(json.contains("\"ph\":\"s\""), "{json}");
        assert!(json.contains("\"bp\":\"e\""), "{json}");
        let parsed = from_chrome_json(&json).unwrap();
        let spans = parsed.spans().unwrap();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].attrs.trace, Some(ctx.trace_id));
        assert_eq!(spans[0].attrs.parent, Some(ctx.parent_span_id));
        assert_eq!(spans[0].attrs.shard, Some(1));
        let flows: Vec<_> = parsed.flows().collect();
        assert_eq!(flows.len(), 2);
        assert_eq!(flows[0].kind, EventKind::FlowStart);
        assert_eq!(flows[1].kind, EventKind::FlowFinish);
        for flow in flows {
            assert_eq!(flow.attrs.trace, Some(ctx.trace_id));
        }
    }

    #[test]
    fn foreign_flow_events_adopt_the_top_level_join_id() {
        let parsed = from_chrome_json(
            "[{\"name\":\"hop\",\"ph\":\"s\",\"ts\":1.0,\"id\":\"00ff00ff00ff00ff\",\
              \"pid\":1,\"tid\":0}]",
        )
        .unwrap();
        let flows: Vec<_> = parsed.flows().collect();
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].attrs.trace, Some(0x00ff_00ff_00ff_00ff));
    }

    #[test]
    fn bare_array_form_is_accepted() {
        let parsed = from_chrome_json(
            "[{\"name\":\"x\",\"ph\":\"X\",\"ts\":1.0,\"dur\":2.0,\"pid\":1,\"tid\":0},\
             {\"name\":\"meta\",\"ph\":\"M\",\"ts\":0,\"pid\":1,\"tid\":0}]",
        )
        .unwrap();
        assert_eq!(parsed.spans().unwrap().len(), 1);
        assert_eq!(parsed.events.len(), 2, "metadata events are skipped");
    }
}
