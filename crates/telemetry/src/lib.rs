//! `tincy-telemetry`: the live-metrics layer of the Tincy system (per
//! DESIGN.md §8 "Live telemetry").
//!
//! Four pieces, each std-only:
//! - a [`Registry`] of lock-light [`Counter`]s, [`Gauge`]s and
//!   [`Histogram`]s (the latter reusing `tincy-pipeline`'s streaming
//!   [`DurationStats`](tincy_pipeline::DurationStats)), plus a
//!   [`Collect`] hook for subsystems that keep their own accumulators
//!   (the serve scheduler, offload health); histograms expose either
//!   summary quantiles or native cumulative buckets ([`Buckets`]);
//! - exposition as Prometheus text ([`prometheus_text`]) and JSON
//!   ([`json_text`]), with a matching parser ([`parse_prometheus`]), a
//!   re-emitter ([`render_prometheus`]) and a structural histogram
//!   validator ([`check_histogram_series`]) for smoke checks;
//! - a hardened keep-alive HTTP [`StatusServer`] (connection cap with
//!   503 shedding, header/read deadlines, drain-on-shutdown — see
//!   [`ServerConfig`]) that serves those expositions on `tincy serve
//!   --status-addr` (GET `/metrics`, `/healthz`, `/report`), plus the
//!   [`HttpClient`] keep-alive scrape client;
//! - the [`slo`] burn-rate engine: per-class error budgets
//!   ([`SloPolicy`]) evaluated over fast/slow window pairs on injected
//!   time ([`SloTracker`]), feeding `/healthz` and the fleet monitor.

mod expose;
mod http;
mod metrics;
pub mod slo;

pub use expose::{
    check_histogram_series, json_text, parse_prometheus, prometheus_text, render_prometheus,
    PromExemplar, PromSample,
};
pub use http::{
    http_get, http_get_full, Handler, HttpClient, HttpResponse, Parse, Request, RequestParser,
    Response, ServerConfig, ServerStats, StatusServer,
};
pub use metrics::{
    Buckets, Collect, Counter, Exemplar, ExemplarStore, Gauge, Histogram, HistogramSnapshot,
    Registry, Sample, Value,
};
pub use slo::{SloPolicy, SloStatus, SloTracker, SLO_WINDOWS, SLO_WINDOW_NAMES};
