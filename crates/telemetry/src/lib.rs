//! `tincy-telemetry`: the live-metrics layer of the Tincy system (per
//! DESIGN.md §8 "Live telemetry").
//!
//! Three pieces, each std-only:
//! - a [`Registry`] of lock-light [`Counter`]s, [`Gauge`]s and
//!   [`Histogram`]s (the latter reusing `tincy-pipeline`'s streaming
//!   [`DurationStats`](tincy_pipeline::DurationStats)), plus a
//!   [`Collect`] hook for subsystems that keep their own accumulators
//!   (the serve scheduler, offload health);
//! - exposition as Prometheus text ([`prometheus_text`]) and JSON
//!   ([`json_text`]), with a matching parser ([`parse_prometheus`]) for
//!   smoke checks;
//! - a minimal HTTP [`StatusServer`] that serves those expositions on
//!   `tincy serve --status-addr` (GET `/metrics`, `/healthz`,
//!   `/report`).

mod expose;
mod http;
mod metrics;

pub use expose::{json_text, parse_prometheus, prometheus_text, PromSample};
pub use http::{http_get, Handler, Response, StatusServer};
pub use metrics::{Collect, Counter, Gauge, Histogram, Registry, Sample, Value};
