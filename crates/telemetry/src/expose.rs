//! Exposition formats: Prometheus text (version 0.0.4) and JSON, plus
//! the minimal Prometheus parser the scrape smoke path and tests use to
//! read an exposition back. JSON is hand-rolled via the shared
//! `tincy-json` layer — no serde.

use crate::metrics::{Sample, Value};
use std::fmt::Write as _;
use tincy_json::escape_into as escape_json;
use tincy_pipeline::DurationStats;

/// Quantiles exposed for summaries; matches the p50/p95/p99 the serve
/// reports print.
const QUANTILES: [f64; 3] = [0.5, 0.95, 0.99];

/// Renders samples (as returned by
/// [`Registry::gather`](crate::Registry::gather), sorted by name) in
/// the Prometheus text exposition format. Durations are expressed in
/// seconds; histograms become summaries — the log-linear
/// [`DurationStats`] tracks quantiles, not cumulative buckets.
pub fn prometheus_text(samples: &[Sample]) -> String {
    let mut out = String::new();
    let mut last_family: Option<&str> = None;
    for sample in samples {
        if last_family != Some(sample.name.as_str()) {
            let _ = writeln!(out, "# HELP {} {}", sample.name, sample.help);
            let _ = writeln!(out, "# TYPE {} {}", sample.name, sample.value.type_name());
            last_family = Some(sample.name.as_str());
        }
        match &sample.value {
            Value::Counter(v) => {
                let _ = writeln!(
                    out,
                    "{}{} {v}",
                    sample.name,
                    label_set(&sample.labels, None)
                );
            }
            Value::Gauge(v) => {
                let _ = writeln!(
                    out,
                    "{}{} {v}",
                    sample.name,
                    label_set(&sample.labels, None)
                );
            }
            Value::Summary(stats) => {
                let seconds = stats.quantiles(&QUANTILES);
                for (q, d) in QUANTILES.iter().zip(&seconds) {
                    let _ = writeln!(
                        out,
                        "{}{} {}",
                        sample.name,
                        label_set(&sample.labels, Some(("quantile", &format!("{q}")))),
                        fmt_value(d.as_secs_f64())
                    );
                }
                let _ = writeln!(
                    out,
                    "{}_sum{} {}",
                    sample.name,
                    label_set(&sample.labels, None),
                    fmt_value(stats.total().as_secs_f64())
                );
                let _ = writeln!(
                    out,
                    "{}_count{} {}",
                    sample.name,
                    label_set(&sample.labels, None),
                    stats.count()
                );
            }
            Value::Histogram(snap) => {
                for (i, (bound, cumulative)) in snap.bounds.iter().zip(&snap.cumulative).enumerate()
                {
                    let _ = write!(
                        out,
                        "{}_bucket{} {cumulative}",
                        sample.name,
                        label_set(&sample.labels, Some(("le", &fmt_value(*bound)))),
                    );
                    write_exemplar(&mut out, &snap.exemplars, i);
                    out.push('\n');
                }
                // The implicit +Inf bucket equals the total count.
                let _ = write!(
                    out,
                    "{}_bucket{} {}",
                    sample.name,
                    label_set(&sample.labels, Some(("le", "+Inf"))),
                    snap.count
                );
                write_exemplar(&mut out, &snap.exemplars, snap.bounds.len());
                out.push('\n');
                let _ = writeln!(
                    out,
                    "{}_sum{} {}",
                    sample.name,
                    label_set(&sample.labels, None),
                    fmt_value(snap.sum_seconds)
                );
                let _ = writeln!(
                    out,
                    "{}_count{} {}",
                    sample.name,
                    label_set(&sample.labels, None),
                    snap.count
                );
            }
        }
    }
    out
}

/// Appends the OpenMetrics exemplar suffix for bucket `index`, if the
/// snapshot carries one: ` # {trace_id="<hex>"} <value>`.
fn write_exemplar(out: &mut String, exemplars: &[Option<crate::Exemplar>], index: usize) {
    if let Some(Some(exemplar)) = exemplars.get(index) {
        let _ = write!(
            out,
            " # {{trace_id=\"{:016x}\"}} {}",
            exemplar.trace_id,
            fmt_value(exemplar.value)
        );
    }
}

/// Formats a float so the parser reads back the identical value:
/// Rust's shortest round-trip `Display` for finite values, Prometheus
/// spellings for the specials.
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

fn label_set(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (key, value) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{key}=\"");
        escape_label(&mut out, value);
        out.push('"');
    }
    if let Some((key, value)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{key}=\"");
        escape_label(&mut out, value);
        out.push('"');
    }
    out.push('}');
    out
}

fn escape_label(out: &mut String, raw: &str) {
    for c in raw.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Renders samples as a JSON array: counters/gauges as
/// `{"name","labels","type","value"}`, summaries with the
/// `duration_stats_json` house keys (`count`, `mean_us`, `p50_us`, …).
pub fn json_text(samples: &[Sample]) -> String {
    let mut out = String::from("[");
    for (i, sample) in samples.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":\"");
        escape_json(&mut out, &sample.name);
        out.push_str("\",\"labels\":{");
        for (j, (key, value)) in sample.labels.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push('"');
            escape_json(&mut out, key);
            out.push_str("\":\"");
            escape_json(&mut out, value);
            out.push('"');
        }
        let _ = write!(out, "}},\"type\":\"{}\"", sample.value.type_name());
        match &sample.value {
            Value::Counter(v) => {
                let _ = write!(out, ",\"value\":{v}");
            }
            Value::Gauge(v) => {
                let _ = write!(out, ",\"value\":{v}");
            }
            Value::Summary(stats) => {
                out.push_str(&summary_json(stats));
            }
            Value::Histogram(snap) => {
                let _ = write!(
                    out,
                    ",\"count\":{},\"sum_s\":{}",
                    snap.count, snap.sum_seconds
                );
                out.push_str(",\"buckets\":[");
                for (i, (bound, cumulative)) in snap.bounds.iter().zip(&snap.cumulative).enumerate()
                {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{{\"le\":{bound},\"count\":{cumulative}}}");
                }
                out.push(']');
            }
        }
        out.push('}');
    }
    out.push(']');
    out
}

fn summary_json(stats: &DurationStats) -> String {
    let qs = stats.quantiles(&QUANTILES);
    let us = |d: std::time::Duration| d.as_secs_f64() * 1e6;
    format!(
        ",\"count\":{},\"mean_us\":{:.3},\"min_us\":{:.3},\"max_us\":{:.3},\"p50_us\":{:.3},\"p95_us\":{:.3},\"p99_us\":{:.3}",
        stats.count(),
        us(stats.mean()),
        us(stats.min().unwrap_or_default()),
        us(stats.max().unwrap_or_default()),
        us(qs[0]),
        us(qs[1]),
        us(qs[2]),
    )
}

/// An exemplar parsed off a sample line's ` # {labels} value` suffix
/// (OpenMetrics syntax).
#[derive(Debug, Clone, PartialEq)]
pub struct PromExemplar {
    /// Exemplar label pairs (conventionally a `trace_id`).
    pub labels: Vec<(String, String)>,
    /// The exemplified observation.
    pub value: f64,
}

impl PromExemplar {
    /// The value of exemplar label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// One parsed Prometheus sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct PromSample {
    /// Metric name (including `_sum`/`_count` suffixes).
    pub name: String,
    /// Label pairs, in source order (`quantile` included).
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
    /// The attached exemplar, when the line carried one.
    pub exemplar: Option<PromExemplar>,
}

impl PromSample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parses a Prometheus text exposition into its sample lines. Comment
/// (`#`) and blank lines are skipped; anything else must be a
/// well-formed `name{labels} value` line.
///
/// # Errors
///
/// A message quoting the malformed line.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let mut samples = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        samples.push(parse_line(line).ok_or_else(|| format!("malformed sample line: {line}"))?);
    }
    Ok(samples)
}

fn parse_line(line: &str) -> Option<PromSample> {
    let name_end = line.find(|c: char| c == '{' || c.is_whitespace())?;
    let name = &line[..name_end];
    if name.is_empty() {
        return None;
    }
    let rest = &line[name_end..];
    let (labels, rest) = if let Some(body) = rest.strip_prefix('{') {
        let close = body.find('}')?;
        (parse_labels(&body[..close])?, &body[close + 1..])
    } else {
        (Vec::new(), rest)
    };
    // An OpenMetrics exemplar rides after ` # ` on the same line.
    let (value_str, exemplar) = match rest.split_once(" # ") {
        Some((value_str, suffix)) => (value_str, Some(parse_exemplar(suffix)?)),
        None => (rest, None),
    };
    let value: f64 = value_str.trim().parse().ok()?;
    Some(PromSample {
        name: name.to_string(),
        labels,
        value,
        exemplar,
    })
}

fn parse_exemplar(suffix: &str) -> Option<PromExemplar> {
    let body = suffix.trim_start().strip_prefix('{')?;
    let close = body.find('}')?;
    let labels = parse_labels(&body[..close])?;
    let value: f64 = body[close + 1..].trim().parse().ok()?;
    Some(PromExemplar { labels, value })
}

fn parse_labels(body: &str) -> Option<Vec<(String, String)>> {
    let mut labels = Vec::new();
    let mut chars = body.chars().peekable();
    loop {
        while chars.peek() == Some(&',') || chars.peek().is_some_and(|c| c.is_whitespace()) {
            chars.next();
        }
        if chars.peek().is_none() {
            return Some(labels);
        }
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if chars.next() != Some('"') {
            return None;
        }
        let mut value = String::new();
        loop {
            match chars.next()? {
                '"' => break,
                '\\' => match chars.next()? {
                    'n' => value.push('\n'),
                    c => value.push(c),
                },
                c => value.push(c),
            }
        }
        labels.push((key, value));
    }
}

/// Re-emits parsed samples as Prometheus sample lines (no `# HELP` /
/// `# TYPE` comments — the parser does not retain them). Composed with
/// [`parse_prometheus`], this is a fixed point: parsing the rendered
/// text yields the same samples, and rendering those yields the same
/// text.
pub fn render_prometheus(samples: &[PromSample]) -> String {
    let mut out = String::new();
    for sample in samples {
        let _ = write!(
            out,
            "{}{} {}",
            sample.name,
            label_set(&sample.labels, None),
            fmt_value(sample.value)
        );
        if let Some(exemplar) = &sample.exemplar {
            let mut labels = label_set(&exemplar.labels, None);
            if labels.is_empty() {
                // OpenMetrics always braces the exemplar label set.
                labels.push_str("{}");
            }
            let _ = write!(out, " # {labels} {}", fmt_value(exemplar.value));
        }
        out.push('\n');
    }
    out
}

/// Structurally validates every native-histogram family in a scrape:
/// for each `_bucket` series group (same base name and non-`le` labels),
/// the `le` bounds must be parseable and strictly increasing, the
/// cumulative counts non-decreasing, the `+Inf` bucket present, and its
/// value equal to the matching `_count` sample.
///
/// # Errors
///
/// A message naming the series and the violated invariant.
pub fn check_histogram_series(samples: &[PromSample]) -> Result<(), String> {
    use std::collections::BTreeMap;
    // Group key: base name + canonicalized non-le labels.
    let mut groups: BTreeMap<(String, String), Vec<(f64, f64)>> = BTreeMap::new();
    for sample in samples {
        let Some(base) = sample.name.strip_suffix("_bucket") else {
            continue;
        };
        let le = sample
            .label("le")
            .ok_or_else(|| format!("{}: _bucket sample without le label", sample.name))?;
        let bound: f64 = le
            .parse()
            .map_err(|_| format!("{}: unparseable le bound {le:?}", sample.name))?;
        let mut rest: Vec<_> = sample
            .labels
            .iter()
            .filter(|(k, _)| k != "le")
            .cloned()
            .collect();
        rest.sort();
        groups
            .entry((base.to_string(), format!("{rest:?}")))
            .or_default()
            .push((bound, sample.value));
    }
    for ((base, labels), mut series) in groups {
        series.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let mut prev = -1.0f64;
        for pair in series.windows(2) {
            if pair[1].0 == pair[0].0 {
                return Err(format!("{base}{labels}: duplicate le bound {}", pair[0].0));
            }
        }
        for &(bound, cumulative) in &series {
            if cumulative < prev {
                return Err(format!(
                    "{base}{labels}: bucket le={bound} count {cumulative} below previous {prev}"
                ));
            }
            prev = cumulative;
        }
        let Some(&(last_bound, inf_count)) = series.last() else {
            continue;
        };
        if last_bound != f64::INFINITY {
            return Err(format!("{base}{labels}: missing +Inf bucket"));
        }
        let count = samples
            .iter()
            .find(|s| {
                s.name == format!("{base}_count") && {
                    let mut rest: Vec<_> = s
                        .labels
                        .iter()
                        .filter(|(k, _)| k != "le")
                        .cloned()
                        .collect();
                    rest.sort();
                    format!("{rest:?}") == labels
                }
            })
            .ok_or_else(|| format!("{base}{labels}: missing _count sample"))?;
        if count.value != inf_count {
            return Err(format!(
                "{base}{labels}: +Inf bucket {inf_count} != _count {}",
                count.value
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Sample;
    use std::time::Duration;

    fn sample_set() -> Vec<Sample> {
        let mut stats = DurationStats::new();
        stats.record(Duration::from_millis(2));
        stats.record(Duration::from_millis(4));
        vec![
            Sample::new(
                "demo_latency_seconds",
                "request latency",
                Value::Summary(stats),
            ),
            Sample::new("demo_queue_depth", "queue depth", Value::Gauge(3.0)),
            Sample::new("demo_rejected_total", "rejections", Value::Counter(5))
                .label("reason", "queue-full"),
            Sample::new("demo_rejected_total", "rejections", Value::Counter(2))
                .label("reason", "deadline"),
        ]
    }

    #[test]
    fn prometheus_text_round_trips_through_the_parser() {
        let text = prometheus_text(&sample_set());
        assert!(text.contains("# TYPE demo_rejected_total counter"));
        assert!(text.contains("# TYPE demo_latency_seconds summary"));
        let parsed = parse_prometheus(&text).unwrap();
        // 3 quantiles + sum + count, one gauge, two counters.
        assert_eq!(parsed.len(), 8);
        let full = parsed
            .iter()
            .find(|s| s.name == "demo_rejected_total" && s.label("reason") == Some("queue-full"))
            .unwrap();
        assert_eq!(full.value, 5.0);
        let count = parsed
            .iter()
            .find(|s| s.name == "demo_latency_seconds_count")
            .unwrap();
        assert_eq!(count.value, 2.0);
        let p50 = parsed
            .iter()
            .find(|s| s.name == "demo_latency_seconds" && s.label("quantile") == Some("0.5"))
            .unwrap();
        assert!(p50.value > 0.0015 && p50.value < 0.0045, "{}", p50.value);
    }

    #[test]
    fn json_text_is_parseable_and_complete() {
        let json = json_text(&sample_set());
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"type\":\"summary\""));
        assert!(json.contains("\"count\":2"));
        assert!(json.contains("\"reason\":\"queue-full\""));
    }

    #[test]
    fn native_histograms_expose_cumulative_buckets_and_round_trip() {
        let mut stats = DurationStats::new();
        for ms in [2u64, 4, 8, 40, 400] {
            stats.record(Duration::from_millis(ms));
        }
        let buckets = crate::Buckets::explicit(vec![0.005, 0.05, 0.5]).unwrap();
        let snap = crate::HistogramSnapshot::from_stats(&stats, &buckets);
        let sample = Sample::new(
            "demo_latency_hist_seconds",
            "latency histogram",
            Value::Histogram(snap),
        )
        .label("class", "gold");
        let text = prometheus_text(&[sample]);
        assert!(text.contains("# TYPE demo_latency_hist_seconds histogram"));
        assert!(text.contains("le=\"+Inf\""));

        let parsed = parse_prometheus(&text).unwrap();
        // 3 bounds + +Inf + sum + count.
        assert_eq!(parsed.len(), 6);
        check_histogram_series(&parsed).expect("series is structurally valid");
        let inf = parsed
            .iter()
            .find(|s| s.name == "demo_latency_hist_seconds_bucket" && s.label("le") == Some("+Inf"))
            .unwrap();
        assert_eq!(inf.value, 5.0);
        assert_eq!(inf.label("class"), Some("gold"));
    }

    #[test]
    fn check_histogram_series_catches_violations() {
        let parse = |t: &str| parse_prometheus(t).unwrap();
        // Non-monotone cumulative counts.
        let bad = parse("m_bucket{le=\"0.1\"} 5\nm_bucket{le=\"+Inf\"} 3\nm_count 3\n");
        assert!(check_histogram_series(&bad).is_err());
        // Missing +Inf.
        let bad = parse("m_bucket{le=\"0.1\"} 5\nm_count 5\n");
        assert!(check_histogram_series(&bad).is_err());
        // +Inf disagrees with _count.
        let bad = parse("m_bucket{le=\"+Inf\"} 5\nm_count 6\n");
        assert!(check_histogram_series(&bad).is_err());
        // Labeled series are grouped separately and both validated.
        let good = parse(concat!(
            "m_bucket{class=\"a\",le=\"0.1\"} 1\nm_bucket{class=\"a\",le=\"+Inf\"} 2\n",
            "m_bucket{class=\"b\",le=\"0.1\"} 0\nm_bucket{class=\"b\",le=\"+Inf\"} 0\n",
            "m_count{class=\"a\"} 2\nm_count{class=\"b\"} 0\n",
        ));
        check_histogram_series(&good).expect("both label groups are valid");
    }

    #[test]
    fn bucket_exemplars_render_and_parse() {
        let mut stats = DurationStats::new();
        stats.record(Duration::from_millis(2));
        stats.record(Duration::from_millis(300));
        let buckets = crate::Buckets::explicit(vec![0.005, 0.05]).unwrap();
        let mut store = crate::ExemplarStore::new(&buckets);
        store.observe(0.002, 0xabcd_ef01_2345_6789);
        store.observe(0.3, 0xffee_0000_0000_0001);
        let snap = crate::HistogramSnapshot::from_stats(&stats, &buckets).with_exemplars(&store);
        let text = prometheus_text(&[Sample::new("ex_hist_seconds", "h", Value::Histogram(snap))]);
        assert!(text.contains("# {trace_id=\"abcdef0123456789\"}"), "{text}");

        let parsed = parse_prometheus(&text).unwrap();
        check_histogram_series(&parsed).unwrap();
        let first = parsed
            .iter()
            .find(|s| s.name == "ex_hist_seconds_bucket" && s.label("le") == Some("0.005"))
            .unwrap();
        let exemplar = first.exemplar.as_ref().unwrap();
        assert_eq!(exemplar.label("trace_id"), Some("abcdef0123456789"));
        assert_eq!(exemplar.value, 0.002);
        let inf = parsed
            .iter()
            .find(|s| s.name == "ex_hist_seconds_bucket" && s.label("le") == Some("+Inf"))
            .unwrap();
        assert_eq!(
            inf.exemplar.as_ref().unwrap().label("trace_id"),
            Some("ffee000000000001")
        );

        // Parse → render stays a fixed point with exemplars attached.
        let rendered = render_prometheus(&parsed);
        let reparsed = parse_prometheus(&rendered).unwrap();
        assert_eq!(parsed, reparsed);
        assert_eq!(rendered, render_prometheus(&reparsed));
    }

    #[test]
    fn render_parse_is_a_fixed_point() {
        let text = prometheus_text(&sample_set());
        let parsed = parse_prometheus(&text).unwrap();
        let rendered = render_prometheus(&parsed);
        let reparsed = parse_prometheus(&rendered).unwrap();
        assert_eq!(parsed, reparsed);
        assert_eq!(rendered, render_prometheus(&reparsed));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_prometheus("not a metric line").is_err());
        assert!(parse_prometheus("name{unterminated 1").is_err());
        assert!(parse_prometheus("# just a comment\n").unwrap().is_empty());
    }

    #[test]
    fn label_escapes_round_trip() {
        let sample =
            Sample::new("esc_total", "escapes", Value::Counter(1)).label("path", "a\"b\\c\nd");
        let parsed = parse_prometheus(&prometheus_text(&[sample])).unwrap();
        assert_eq!(parsed[0].label("path"), Some("a\"b\\c\nd"));
    }
}
