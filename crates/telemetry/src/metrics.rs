//! The metrics registry: lock-light handles (relaxed atomics for
//! counters and gauges, one uncontended mutex per histogram) plus a
//! [`Collect`] hook so subsystems with their own accumulators — the
//! serve scheduler, `OffloadHealth` — expose snapshots without moving
//! their state into this crate.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use tincy_pipeline::DurationStats;

/// A monotonically increasing counter. Clones share the same cell.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins floating-point gauge. Clones share the same cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A duration histogram backed by the streaming log-linear
/// [`DurationStats`]. Clones share the same recorder; the mutex is
/// uncontended unless scrapes race with recording.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    stats: Arc<Mutex<DurationStats>>,
}

impl Histogram {
    /// Records one sample.
    pub fn observe(&self, sample: Duration) {
        self.stats.lock().record(sample);
    }

    /// A point-in-time copy of the recorder.
    pub fn snapshot(&self) -> DurationStats {
        self.stats.lock().clone()
    }
}

/// Cumulative-bucket upper bounds for native Prometheus histograms, in
/// seconds, strictly increasing. The implicit `+Inf` bucket is always
/// appended at exposition time, so an empty set is legal (count-only).
///
/// Selection guidance (DESIGN.md §8): bounds are a measurement grid, not
/// an SLO — put ~2 buckets per octave across the latency range you need
/// to distinguish, with the SLO target itself as one explicit bound so
/// `sum(rate(..._bucket{le="slo"}))` answers the compliance question
/// directly.
#[derive(Debug, Clone, PartialEq)]
pub struct Buckets {
    bounds: Vec<f64>,
}

impl Default for Buckets {
    /// 1 ms doubling to ~2 s: covers the frame budget (Table III: tens of
    /// milliseconds per stage) with headroom for degraded offloads.
    fn default() -> Self {
        Self::exponential(0.001, 2.0, 12)
    }
}

impl Buckets {
    /// `count` bounds starting at `start`, spaced `width` apart.
    pub fn linear(start: f64, width: f64, count: usize) -> Self {
        assert!(start > 0.0 && width > 0.0, "linear buckets must ascend");
        Self {
            bounds: (0..count).map(|i| start + width * i as f64).collect(),
        }
    }

    /// `count` bounds starting at `start`, each `factor` times the last.
    pub fn exponential(start: f64, factor: f64, count: usize) -> Self {
        assert!(
            start > 0.0 && factor > 1.0,
            "exponential buckets must ascend"
        );
        let mut bound = start;
        let mut bounds = Vec::with_capacity(count);
        for _ in 0..count {
            bounds.push(bound);
            bound *= factor;
        }
        Self { bounds }
    }

    /// Explicit bounds.
    ///
    /// # Errors
    ///
    /// When a bound is not finite and positive, or the sequence is not
    /// strictly increasing.
    pub fn explicit(bounds: Vec<f64>) -> Result<Self, String> {
        for pair in bounds.windows(2) {
            if pair[1] <= pair[0] {
                return Err(format!(
                    "bucket bounds must be strictly increasing: {} then {}",
                    pair[0], pair[1]
                ));
            }
        }
        if let Some(bad) = bounds.iter().find(|b| !b.is_finite() || **b <= 0.0) {
            return Err(format!("bucket bound must be finite and positive: {bad}"));
        }
        Ok(Self { bounds })
    }

    /// The bounds, in seconds (without the implicit `+Inf`).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }
}

/// A Prometheus/OpenMetrics exemplar: the trace id of a notable
/// observation that landed in a bucket, plus that observation's value in
/// seconds — the bridge from a burning latency budget to the stitched
/// trace of an offending request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exemplar {
    /// Distributed trace id of the exemplified request.
    pub trace_id: u64,
    /// The exemplified observation, seconds.
    pub value: f64,
}

/// Per-bucket exemplar store: remembers, for each bucket of a latency
/// histogram, the *worst* (largest) traced observation that landed
/// there, so every bucket's exemplar points at its most incriminating
/// request. Deterministic for seeded runs: ties keep the newest.
#[derive(Debug, Clone)]
pub struct ExemplarStore {
    bounds: Vec<f64>,
    /// One slot per bound plus the trailing `+Inf` bucket.
    slots: Vec<Option<Exemplar>>,
}

impl ExemplarStore {
    /// An empty store over the given bucket grid.
    pub fn new(buckets: &Buckets) -> Self {
        Self {
            bounds: buckets.bounds().to_vec(),
            slots: vec![None; buckets.bounds().len() + 1],
        }
    }

    /// Records one traced observation into its bucket's slot.
    pub fn observe(&mut self, seconds: f64, trace_id: u64) {
        let index = self
            .bounds
            .iter()
            .position(|&bound| seconds <= bound)
            .unwrap_or(self.bounds.len());
        let slot = &mut self.slots[index];
        if slot.is_none_or(|held| seconds >= held.value) {
            *slot = Some(Exemplar {
                trace_id,
                value: seconds,
            });
        }
    }

    /// The per-bucket slots (last entry is the `+Inf` bucket).
    pub fn slots(&self) -> &[Option<Exemplar>] {
        &self.slots
    }
}

/// A point-in-time cumulative histogram: per-bound counts of samples at
/// or below each bound, plus the overall count and sum.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds, seconds, strictly increasing.
    pub bounds: Vec<f64>,
    /// Cumulative counts: `cumulative[i]` samples were ≤ `bounds[i]`.
    pub cumulative: Vec<u64>,
    /// Total samples (the implicit `+Inf` bucket).
    pub count: u64,
    /// Sum of all samples, seconds.
    pub sum_seconds: f64,
    /// Per-bucket exemplars, `bounds.len() + 1` entries when attached
    /// (last is the `+Inf` bucket); empty when the feature is off.
    pub exemplars: Vec<Option<Exemplar>>,
}

impl HistogramSnapshot {
    /// Projects a [`DurationStats`] recorder onto cumulative buckets.
    /// Counts inherit the recorder's log-linear resolution (≤ ~6%
    /// relative error on where a sample lands); monotonicity and
    /// `+Inf == count` hold exactly.
    pub fn from_stats(stats: &DurationStats, buckets: &Buckets) -> Self {
        let cumulative = buckets
            .bounds()
            .iter()
            .map(|&b| stats.count_le(Duration::from_secs_f64(b)))
            .collect();
        Self {
            bounds: buckets.bounds().to_vec(),
            cumulative,
            count: stats.count(),
            sum_seconds: stats.total().as_secs_f64(),
            exemplars: Vec::new(),
        }
    }

    /// Attaches the store's per-bucket exemplars to this snapshot.
    #[must_use]
    pub fn with_exemplars(mut self, store: &ExemplarStore) -> Self {
        self.exemplars = store.slots().to_vec();
        self
    }
}

/// One exposed metric value.
#[derive(Debug, Clone)]
pub enum Value {
    /// Monotonically increasing count.
    Counter(u64),
    /// Instantaneous measurement.
    Gauge(f64),
    /// Duration distribution, exposed as a Prometheus summary
    /// (quantiles + `_sum`/`_count`).
    Summary(DurationStats),
    /// Duration distribution, exposed as a native cumulative Prometheus
    /// histogram (`_bucket{le=...}` + `_sum`/`_count`).
    Histogram(HistogramSnapshot),
}

impl Value {
    /// The Prometheus `# TYPE` keyword for this value.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Counter(_) => "counter",
            Value::Gauge(_) => "gauge",
            Value::Summary(_) => "summary",
            Value::Histogram(_) => "histogram",
        }
    }
}

/// One sample in a scrape: a metric name, optional labels, and a value.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Metric family name (Prometheus conventions: `snake_case`,
    /// counters ending in `_total`, durations in `_seconds`).
    pub name: String,
    /// One-line help text, shared by every sample of the family.
    pub help: String,
    /// Label pairs distinguishing samples within a family.
    pub labels: Vec<(String, String)>,
    /// The sampled value.
    pub value: Value,
}

impl Sample {
    /// An unlabeled sample.
    pub fn new(name: &str, help: &str, value: Value) -> Self {
        Self {
            name: name.to_string(),
            help: help.to_string(),
            labels: Vec::new(),
            value,
        }
    }

    /// Adds a label pair.
    #[must_use]
    pub fn label(mut self, key: &str, value: &str) -> Self {
        self.labels.push((key.to_string(), value.to_string()));
        self
    }
}

/// A source of samples collected at scrape time. Implementations must
/// tolerate concurrent calls (scrapes are driven by the HTTP endpoint).
pub trait Collect: Send + Sync {
    /// Point-in-time samples from this source.
    fn collect(&self) -> Vec<Sample>;
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram, Option<Buckets>),
}

struct Owned {
    name: String,
    help: String,
    metric: Metric,
}

/// The unified registry: owned metrics created through
/// [`Self::counter`]/[`Self::gauge`]/[`Self::histogram`] plus external
/// [`Collect`] sources. [`Self::gather`] snapshots everything, sorted
/// by family name for deterministic exposition.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

#[derive(Default)]
struct Inner {
    owned: Vec<Owned>,
    collectors: Vec<Arc<dyn Collect>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates and registers a counter; the returned handle records into
    /// the registry.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        let counter = Counter::default();
        self.inner.lock().owned.push(Owned {
            name: name.to_string(),
            help: help.to_string(),
            metric: Metric::Counter(counter.clone()),
        });
        counter
    }

    /// Creates and registers a gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        let gauge = Gauge::default();
        self.inner.lock().owned.push(Owned {
            name: name.to_string(),
            help: help.to_string(),
            metric: Metric::Gauge(gauge.clone()),
        });
        gauge
    }

    /// Creates and registers a duration histogram, exposed as a summary
    /// (quantiles); see [`Self::histogram_with`] for native buckets.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        let histogram = Histogram::default();
        self.inner.lock().owned.push(Owned {
            name: name.to_string(),
            help: help.to_string(),
            metric: Metric::Histogram(histogram.clone(), None),
        });
        histogram
    }

    /// Creates and registers a duration histogram exposed as a native
    /// cumulative Prometheus histogram with the given bucket bounds.
    pub fn histogram_with(&self, name: &str, help: &str, buckets: Buckets) -> Histogram {
        let histogram = Histogram::default();
        self.inner.lock().owned.push(Owned {
            name: name.to_string(),
            help: help.to_string(),
            metric: Metric::Histogram(histogram.clone(), Some(buckets)),
        });
        histogram
    }

    /// Registers an external sample source.
    pub fn register(&self, collector: Arc<dyn Collect>) {
        self.inner.lock().collectors.push(collector);
    }

    /// Snapshots every metric and collector, sorted by family name
    /// (stable: samples of one family keep their insertion order).
    pub fn gather(&self) -> Vec<Sample> {
        let inner = self.inner.lock();
        let mut samples: Vec<Sample> = inner
            .owned
            .iter()
            .map(|owned| {
                let value = match &owned.metric {
                    Metric::Counter(c) => Value::Counter(c.get()),
                    Metric::Gauge(g) => Value::Gauge(g.get()),
                    Metric::Histogram(h, None) => Value::Summary(h.snapshot()),
                    Metric::Histogram(h, Some(buckets)) => {
                        Value::Histogram(HistogramSnapshot::from_stats(&h.snapshot(), buckets))
                    }
                };
                Sample::new(&owned.name, &owned.help, value)
            })
            .collect();
        for collector in &inner.collectors {
            samples.extend(collector.collect());
        }
        samples.sort_by(|a, b| a.name.cmp(&b.name));
        samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_state_with_the_registry() {
        let registry = Registry::new();
        let hits = registry.counter("test_hits_total", "hits");
        let depth = registry.gauge("test_depth", "queue depth");
        let lat = registry.histogram("test_latency_seconds", "latency");
        hits.add(3);
        hits.inc();
        depth.set(2.5);
        lat.observe(Duration::from_millis(8));
        lat.observe(Duration::from_millis(12));

        let samples = registry.gather();
        assert_eq!(samples.len(), 3);
        // gather() sorts by name.
        assert_eq!(samples[0].name, "test_depth");
        assert!(matches!(samples[0].value, Value::Gauge(v) if (v - 2.5).abs() < 1e-12));
        assert!(matches!(samples[1].value, Value::Counter(4)));
        match &samples[2].value {
            Value::Summary(stats) => assert_eq!(stats.count(), 2),
            other => panic!("expected summary, got {other:?}"),
        }
    }

    #[test]
    fn bucketed_histograms_gather_as_cumulative_snapshots() {
        let registry = Registry::new();
        let lat = registry.histogram_with(
            "test_latency_hist_seconds",
            "latency",
            Buckets::explicit(vec![0.005, 0.01, 0.05]).unwrap(),
        );
        lat.observe(Duration::from_millis(2));
        lat.observe(Duration::from_millis(8));
        lat.observe(Duration::from_millis(200)); // beyond the last bound

        let samples = registry.gather();
        let Value::Histogram(snap) = &samples[0].value else {
            panic!("expected histogram, got {:?}", samples[0].value);
        };
        assert_eq!(snap.bounds, vec![0.005, 0.01, 0.05]);
        assert_eq!(snap.cumulative, vec![1, 2, 2]);
        assert_eq!(snap.count, 3);
        assert!(snap.sum_seconds > 0.2);
    }

    #[test]
    fn bucket_constructors_ascend() {
        assert_eq!(Buckets::linear(0.01, 0.01, 3).bounds(), &[0.01, 0.02, 0.03]);
        let exp = Buckets::exponential(0.001, 2.0, 3);
        assert_eq!(exp.bounds(), &[0.001, 0.002, 0.004]);
        assert!(Buckets::explicit(vec![0.1, 0.1]).is_err());
        assert!(Buckets::explicit(vec![-1.0, 0.1]).is_err());
        assert!(Buckets::explicit(vec![0.1, f64::INFINITY]).is_err());
        assert!(!Buckets::default().bounds().is_empty());
    }

    #[test]
    fn exemplar_store_keeps_the_worst_observation_per_bucket() {
        let buckets = Buckets::explicit(vec![0.01, 0.1]).unwrap();
        let mut store = ExemplarStore::new(&buckets);
        store.observe(0.004, 1);
        store.observe(0.008, 2); // worse, same bucket: replaces
        store.observe(0.005, 3); // better: ignored
        store.observe(0.5, 4); // lands in +Inf
        let slots = store.slots();
        assert_eq!(slots.len(), 3);
        assert_eq!(slots[0].unwrap().trace_id, 2);
        assert!(slots[1].is_none());
        assert_eq!(slots[2].unwrap().trace_id, 4);
    }

    #[test]
    fn collectors_contribute_labeled_samples() {
        struct Fixed;
        impl Collect for Fixed {
            fn collect(&self) -> Vec<Sample> {
                vec![
                    Sample::new("test_rejected_total", "rejections", Value::Counter(7))
                        .label("reason", "queue-full"),
                ]
            }
        }
        let registry = Registry::new();
        registry.register(Arc::new(Fixed));
        let samples = registry.gather();
        assert_eq!(samples.len(), 1);
        assert_eq!(
            samples[0].labels,
            vec![("reason".into(), "queue-full".into())]
        );
    }
}
