//! Per-class SLO error budgets and multi-window burn-rate evaluation.
//!
//! Each class carries two budgets: a latency budget (the allowed
//! fraction of requests breaching the class's target) and a shed budget
//! (the allowed fraction of requests rejected). The burn rate over a
//! window is how fast the worse of the two budgets is being consumed
//! relative to its sustainable rate — 1.0 means "exactly on budget",
//! higher means the budget depletes early.
//!
//! Alerting follows the standard multi-window pattern: a *fast* pair
//! (5 s and 1 m) that trips quickly on hard outages, and a *slow* pair
//! (30 s and 5 m) that catches sustained low-grade burn. A pair alerts
//! only when **both** of its windows exceed its threshold — the short
//! window proves the burn is current, the long one proves it is not a
//! blip — and clears as soon as either window recovers.
//!
//! Time is injected: every entry point takes `now_ns` (nanoseconds on a
//! caller-owned monotonic origin), so production drives the tracker from
//! an `Instant` anchor while tests replay deterministic schedules.

use std::collections::VecDeque;
use std::time::Duration;

/// The evaluation windows, pairing order fast→slow: 5 s + 1 m trip the
/// fast alert, 30 s + 5 m the slow one. Index into [`SloStatus::burn`].
pub const SLO_WINDOWS: [Duration; 4] = [
    Duration::from_secs(5),
    Duration::from_secs(60),
    Duration::from_secs(30),
    Duration::from_secs(300),
];

/// Exposition names for [`SLO_WINDOWS`], same order.
pub const SLO_WINDOW_NAMES: [&str; 4] = ["5s", "1m", "30s", "5m"];

/// Error-budget policy for one request class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloPolicy {
    /// Allowed fraction of requests breaching the latency target (or
    /// served degraded).
    pub latency_budget: f64,
    /// Allowed fraction of requests shed (rejected at admission).
    pub shed_budget: f64,
    /// Fast-pair (5 s + 1 m) burn-rate threshold; alerts fire on
    /// *strictly* exceeding it, so exactly-at-budget load stays quiet.
    pub fast_threshold: f64,
    /// Slow-pair (30 s + 5 m) burn-rate threshold.
    pub slow_threshold: f64,
}

impl Default for SloPolicy {
    /// Conservative production-style thresholds (the classic 14.4×/6×
    /// page points): steady traffic near its targets never alerts.
    fn default() -> Self {
        Self {
            latency_budget: 0.05,
            shed_budget: 0.02,
            fast_threshold: 14.4,
            slow_threshold: 6.0,
        }
    }
}

impl SloPolicy {
    /// Smoke-test policy: any sustained over-budget burn trips, so a
    /// seeded fault injection deterministically fires and clears alerts
    /// within one short run.
    #[must_use]
    pub fn sensitive() -> Self {
        Self {
            latency_budget: 0.02,
            shed_budget: 0.02,
            fast_threshold: 1.0,
            slow_threshold: 1.0,
        }
    }
}

/// One evaluated snapshot of a class's budget state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloStatus {
    /// Burn rate per window, indexed like [`SLO_WINDOWS`].
    pub burn: [f64; 4],
    /// Fast-pair alert currently active.
    pub fast_active: bool,
    /// Slow-pair alert currently active.
    pub slow_active: bool,
    /// Rising edges seen so far: `[fast, slow]`.
    pub fired: [u64; 2],
    /// Falling edges seen so far: `[fast, slow]`.
    pub cleared: [u64; 2],
    /// Fraction of the 5 m error budget still unspent, clamped to
    /// `[0, 1]`; refills as breaches age out of the window.
    pub budget_remaining: f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Good,
    /// Latency breach or degraded service.
    Bad,
    /// Rejected at admission.
    Shed,
}

/// Burn-rate tracker for one request class. Not internally synchronized;
/// callers wrap it in their own lock (the serve scheduler already owns
/// one).
#[derive(Debug)]
pub struct SloTracker {
    target: Duration,
    policy: SloPolicy,
    /// (t_ns, outcome), oldest first, pruned beyond the longest window.
    events: VecDeque<(u64, Outcome)>,
    fast_active: bool,
    slow_active: bool,
    fired: [u64; 2],
    cleared: [u64; 2],
}

impl SloTracker {
    /// A tracker for a class with the given latency target.
    #[must_use]
    pub fn new(target: Duration, policy: SloPolicy) -> Self {
        Self {
            target,
            policy,
            events: VecDeque::new(),
            fast_active: false,
            slow_active: false,
            fired: [0; 2],
            cleared: [0; 2],
        }
    }

    /// The class's latency target.
    #[must_use]
    pub fn target(&self) -> Duration {
        self.target
    }

    /// Records one served request. `degraded` marks service that met the
    /// clock but not the promise (e.g. a frame served while the
    /// accelerator was faulted out) — it burns latency budget too, which
    /// keeps alert edges deterministic under injected outages even when
    /// wall-clock latency stays lucky.
    pub fn record(&mut self, now_ns: u64, latency: Duration, degraded: bool) {
        let outcome = if degraded || latency > self.target {
            Outcome::Bad
        } else {
            Outcome::Good
        };
        self.push(now_ns, outcome);
    }

    /// Records one shed (rejected) request.
    pub fn record_shed(&mut self, now_ns: u64) {
        self.push(now_ns, Outcome::Shed);
    }

    fn push(&mut self, now_ns: u64, outcome: Outcome) {
        self.events.push_back((now_ns, outcome));
        self.prune(now_ns);
    }

    fn prune(&mut self, now_ns: u64) {
        let horizon = SLO_WINDOWS[3].as_nanos() as u64;
        let cutoff = now_ns.saturating_sub(horizon);
        while self.events.front().is_some_and(|&(t, _)| t < cutoff) {
            self.events.pop_front();
        }
    }

    /// Burn rate over the trailing `window`: the worse of
    /// `violation_rate / latency_budget` and `shed_rate / shed_budget`.
    /// An empty window burns nothing.
    #[must_use]
    pub fn burn_rate(&self, now_ns: u64, window: Duration) -> f64 {
        let cutoff = now_ns.saturating_sub(window.as_nanos() as u64);
        let (mut total, mut bad, mut shed) = (0u64, 0u64, 0u64);
        for &(t, outcome) in self.events.iter().rev() {
            if t < cutoff {
                break;
            }
            total += 1;
            match outcome {
                Outcome::Good => {}
                Outcome::Bad => bad += 1,
                Outcome::Shed => shed += 1,
            }
        }
        if total == 0 {
            return 0.0;
        }
        let latency_burn = (bad as f64 / total as f64) / self.policy.latency_budget;
        let shed_burn = (shed as f64 / total as f64) / self.policy.shed_budget;
        latency_burn.max(shed_burn)
    }

    /// Evaluates every window at `now_ns`, updates alert edges, and
    /// returns the snapshot. Call this from the scrape/health path too:
    /// alerts must clear by time passing, not only by new traffic.
    pub fn evaluate(&mut self, now_ns: u64) -> SloStatus {
        self.prune(now_ns);
        let burn = SLO_WINDOWS.map(|w| self.burn_rate(now_ns, w));
        let fast = burn[0] > self.policy.fast_threshold && burn[1] > self.policy.fast_threshold;
        let slow = burn[2] > self.policy.slow_threshold && burn[3] > self.policy.slow_threshold;
        if fast && !self.fast_active {
            self.fired[0] += 1;
        }
        if !fast && self.fast_active {
            self.cleared[0] += 1;
        }
        if slow && !self.slow_active {
            self.fired[1] += 1;
        }
        if !slow && self.slow_active {
            self.cleared[1] += 1;
        }
        self.fast_active = fast;
        self.slow_active = slow;
        SloStatus {
            burn,
            fast_active: fast,
            slow_active: slow,
            fired: self.fired,
            cleared: self.cleared,
            budget_remaining: (1.0 - burn[3]).clamp(0.0, 1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: u64 = 1_000_000_000;

    /// Feeds `per_sec` served requests per second over `[from, to)`
    /// seconds, `bad_per_sec` of them breaching the target.
    fn feed(tracker: &mut SloTracker, from: u64, to: u64, per_sec: u64, bad_per_sec: u64) {
        let target = tracker.target();
        for sec in from..to {
            for i in 0..per_sec {
                let now = sec * SEC + i * (SEC / per_sec);
                let latency = if i < bad_per_sec {
                    target + Duration::from_millis(50)
                } else {
                    target
                };
                tracker.record(now, latency, false);
            }
        }
    }

    #[test]
    fn fast_burn_trips_and_clears() {
        let mut tracker = SloTracker::new(Duration::from_millis(50), SloPolicy::default());
        // Hard outage: every request breaches → burn 1/0.05 = 20 > 14.4
        // on both fast windows once the outage spans them.
        feed(&mut tracker, 0, 8, 20, 20);
        let status = tracker.evaluate(8 * SEC);
        assert!(status.fast_active, "burn {:?}", status.burn);
        assert_eq!(status.fired[0], 1);
        assert!((status.budget_remaining - 0.0).abs() < f64::EPSILON);
        // Recovery: clean traffic dilutes the 5 s window first.
        feed(&mut tracker, 8, 20, 20, 0);
        let status = tracker.evaluate(20 * SEC);
        assert!(!status.fast_active);
        assert_eq!(status.cleared[0], 1);
        assert_eq!(status.fired[0], 1, "no re-fire during recovery");
    }

    #[test]
    fn slow_burn_trips_without_fast() {
        let mut tracker = SloTracker::new(Duration::from_millis(50), SloPolicy::default());
        // 40% breaches → burn 0.4/0.05 = 8: above the slow threshold (6),
        // below the fast one (14.4). Sustain it across the 5 m window.
        feed(&mut tracker, 0, 310, 10, 4);
        let status = tracker.evaluate(310 * SEC);
        assert!(!status.fast_active, "burn {:?}", status.burn);
        assert!(status.slow_active, "burn {:?}", status.burn);
        assert_eq!(status.fired, [0, 1]);
    }

    #[test]
    fn budget_refills_as_breaches_age_out() {
        let mut tracker = SloTracker::new(Duration::from_millis(50), SloPolicy::default());
        feed(&mut tracker, 0, 2, 50, 50); // 2 s hard outage, then silence
        let during = tracker.evaluate(3 * SEC);
        assert_eq!(during.budget_remaining, 0.0, "burn {:?}", during.burn);
        // Half the window later the breaches still count...
        let later = tracker.evaluate(150 * SEC);
        assert_eq!(later.budget_remaining, 0.0);
        // ...but once they age past 5 m the budget is whole again.
        let refilled = tracker.evaluate(310 * SEC);
        assert_eq!(refilled.budget_remaining, 1.0);
        assert!(!refilled.fast_active && !refilled.slow_active);
    }

    #[test]
    fn no_alert_at_exactly_target_load() {
        // Even the sensitive policy (thresholds 1.0) stays quiet when the
        // breach fraction sits exactly on budget: burn == 1.0 is not an
        // alert, it is the definition of sustainable.
        let mut tracker = SloTracker::new(Duration::from_millis(50), SloPolicy::sensitive());
        // 2% breaches against a 2% budget; requests at exactly the
        // target are compliant, not breaches.
        feed(&mut tracker, 0, 310, 100, 2);
        let status = tracker.evaluate(310 * SEC);
        for burn in status.burn {
            assert!((burn - 1.0).abs() < 1e-9, "burn {burn}");
        }
        assert!(!status.fast_active && !status.slow_active);
        assert_eq!(status.fired, [0, 0]);
        assert!((status.budget_remaining - 0.0).abs() < 1e-9);
    }

    #[test]
    fn shed_rate_burns_its_own_budget() {
        let mut tracker = SloTracker::new(Duration::from_millis(50), SloPolicy::default());
        // Latency is pristine but 50% of traffic is shed: the shed
        // budget (2%) burns at 25× and must trip both pairs.
        for sec in 0..61 {
            for i in 0..10u64 {
                let now = sec * SEC + i * (SEC / 10);
                if i % 2 == 0 {
                    tracker.record(now, Duration::from_millis(1), false);
                } else {
                    tracker.record_shed(now);
                }
            }
        }
        let status = tracker.evaluate(61 * SEC);
        assert!(status.fast_active, "burn {:?}", status.burn);
        assert_eq!(status.fired[0], 1);
    }
}
