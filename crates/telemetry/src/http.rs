//! A minimal std-only HTTP status endpoint: one listener thread, GET
//! routing by exact path, `Connection: close` semantics. This is
//! deliberately not a web server — it exists so `tincy serve
//! --status-addr` can expose `/metrics`, `/healthz` and `/report`
//! without pulling in a dependency the offline build cannot have.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Largest accepted request head (request line + headers).
const MAX_REQUEST_BYTES: usize = 8 * 1024;
/// Per-connection socket timeout: a stalled peer cannot wedge the
/// single accept loop.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// An HTTP response produced by a route handler.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A 200 response.
    pub fn ok(content_type: &'static str, body: String) -> Self {
        Self {
            status: 200,
            content_type,
            body,
        }
    }

    /// The 404 response.
    pub fn not_found() -> Self {
        Self {
            status: 404,
            content_type: "text/plain; charset=utf-8",
            body: "not found\n".to_string(),
        }
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            404 => "Not Found",
            405 => "Method Not Allowed",
            _ => "Error",
        }
    }
}

/// A route handler, called once per matching GET request.
pub type Handler = Box<dyn Fn() -> Response + Send + Sync>;

/// The status endpoint: binds immediately, serves on a background
/// thread until [`Self::shutdown`] (or drop).
pub struct StatusServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl StatusServer {
    /// Binds `addr` (e.g. `127.0.0.1:9090`; port 0 picks a free port)
    /// and starts serving `routes` (exact-match paths, query strings
    /// ignored).
    ///
    /// # Errors
    ///
    /// Propagates bind and thread-spawn failures.
    pub fn bind(addr: &str, routes: Vec<(&'static str, Handler)>) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("tincy-status".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if stop_flag.load(Ordering::Acquire) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        // Serving is best-effort; a failed write to a
                        // closed peer must not take the loop down.
                        let _ = serve_connection(stream, &routes);
                    }
                }
            })?;
        Ok(Self {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (with the real port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the serving thread. Idempotent;
    /// also runs on drop.
    pub fn shutdown(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release);
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, IO_TIMEOUT);
        let _ = handle.join();
    }
}

impl Drop for StatusServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_connection(mut stream: TcpStream, routes: &[(&'static str, Handler)]) -> io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() > MAX_REQUEST_BYTES {
            return Ok(());
        }
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
    }
    let head = String::from_utf8_lossy(&head);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let (method, target) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let response = if method != "GET" {
        Response {
            status: 405,
            content_type: "text/plain; charset=utf-8",
            body: "method not allowed\n".to_string(),
        }
    } else {
        let path = target.split('?').next().unwrap_or("");
        routes
            .iter()
            .find(|(route, _)| *route == path)
            .map_or_else(Response::not_found, |(_, handler)| handler())
    };
    write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        response.status,
        response.reason(),
        response.content_type,
        response.body.len(),
        response.body
    )?;
    stream.flush()
}

/// A one-shot HTTP GET against `addr` (the scrape client behind `tincy
/// loadgen --scrape` and the CI smoke job). Returns the status code and
/// body.
///
/// # Errors
///
/// Propagates connection failures; malformed responses surface as
/// `InvalidData`.
pub fn http_get(addr: impl ToSocketAddrs, path: &str) -> io::Result<(u16, String)> {
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address"))?;
    let mut stream = TcpStream::connect_timeout(&addr, IO_TIMEOUT)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing response head"))?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|code| code.parse::<u16>().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing status code"))?;
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_server() -> StatusServer {
        StatusServer::bind(
            "127.0.0.1:0",
            vec![
                (
                    "/metrics",
                    Box::new(|| Response::ok("text/plain; version=0.0.4", "m_total 1\n".into()))
                        as Handler,
                ),
                (
                    "/healthz",
                    Box::new(|| Response::ok("application/json", "{\"ok\":true}".into()))
                        as Handler,
                ),
            ],
        )
        .expect("bind loopback")
    }

    #[test]
    fn routes_serve_and_unknown_paths_404() {
        let server = test_server();
        let (status, body) = http_get(server.addr(), "/metrics").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "m_total 1\n");
        let (status, body) = http_get(server.addr(), "/healthz").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"ok\":true}");
        let (status, _) = http_get(server.addr(), "/nope").unwrap();
        assert_eq!(status, 404);
        // Query strings are ignored for routing.
        let (status, _) = http_get(server.addr(), "/metrics?x=1").unwrap();
        assert_eq!(status, 200);
    }

    #[test]
    fn shutdown_unbinds_and_is_idempotent() {
        let mut server = test_server();
        let addr = server.addr();
        server.shutdown();
        server.shutdown();
        assert!(
            TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err()
                || http_get(addr, "/metrics").is_err(),
            "the endpoint no longer serves after shutdown"
        );
    }
}
