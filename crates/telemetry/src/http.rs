//! A hardened std-only HTTP status endpoint: HTTP/1.1 keep-alive with a
//! per-connection request limit, read/write deadlines, a bounded
//! connection cap with accept-queue shedding (503 + `Retry-After`),
//! slow-loris protection (header size and header time limits) and
//! graceful drain-on-shutdown. This is still deliberately not a web
//! server — it exists so `tincy serve --status-addr` can expose
//! `/metrics`, `/healthz` and `/report` to a long-lived scraper without
//! pulling in a dependency the offline build cannot have.
//!
//! Connection lifecycle (DESIGN.md §8 "Telemetry hardening"):
//!
//! ```text
//! accept ── over cap? ──> shed: 503 + Retry-After, close
//!    │
//!    ▼
//! read head (≤ max_header_bytes, ≤ header_deadline) ──> 431/400 close
//!    │
//!    ▼
//! route + write full response
//!    │
//!    ├─ Connection: close / request limit / shutting down ──> close
//!    └─ otherwise ──> keep-alive: read next head
//! ```

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning knobs of the status server.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrent connections served; accepts beyond the cap are shed
    /// with `503` + `Retry-After` instead of queueing.
    pub max_connections: usize,
    /// Requests served on one keep-alive connection before it is closed
    /// (bounds how long one client can monopolize a slot).
    pub max_requests_per_conn: usize,
    /// Largest accepted request head (request line + headers).
    pub max_header_bytes: usize,
    /// Total time allowed to receive one request head; a peer trickling
    /// header bytes (slow loris) is cut off at this deadline.
    pub header_deadline: Duration,
    /// Per-read/write socket timeout: a stalled peer cannot wedge a
    /// handler thread, and idle keep-alive connections are reaped after
    /// this long without a request.
    pub io_timeout: Duration,
    /// How long [`StatusServer::shutdown`] waits for in-flight
    /// connections to finish their current response before detaching.
    pub drain_deadline: Duration,
    /// `Retry-After` seconds advertised on shed (503) responses.
    pub retry_after_secs: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_connections: 64,
            max_requests_per_conn: 128,
            max_header_bytes: 8 * 1024,
            header_deadline: Duration::from_secs(2),
            io_timeout: Duration::from_secs(2),
            drain_deadline: Duration::from_secs(5),
            retry_after_secs: 1,
        }
    }
}

/// An HTTP response produced by a route handler.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
    /// `Retry-After` header (seconds), set on shed responses.
    pub retry_after: Option<u64>,
}

impl Response {
    /// A 200 response.
    pub fn ok(content_type: &'static str, body: String) -> Self {
        Self {
            status: 200,
            content_type,
            body,
            retry_after: None,
        }
    }

    /// The 404 response.
    pub fn not_found() -> Self {
        Self::plain(404, "not found\n")
    }

    /// The 503 shedding response, advertising when to come back.
    pub fn unavailable(retry_after_secs: u64) -> Self {
        Self {
            retry_after: Some(retry_after_secs),
            ..Self::plain(503, "over capacity, retry later\n")
        }
    }

    fn plain(status: u16, body: &str) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.to_string(),
            retry_after: None,
        }
    }

    fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            431 => "Request Header Fields Too Large",
            503 => "Service Unavailable",
            _ => "Error",
        }
    }

    /// Renders the full wire form, including the `Connection` header.
    fn to_bytes(&self, close: bool) -> Vec<u8> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            self.reason(),
            self.content_type,
            self.body.len(),
            if close { "close" } else { "keep-alive" },
        );
        if let Some(secs) = self.retry_after {
            head.push_str(&format!("Retry-After: {secs}\r\n"));
        }
        head.push_str("\r\n");
        let mut bytes = head.into_bytes();
        bytes.extend_from_slice(self.body.as_bytes());
        bytes
    }
}

/// One parsed request head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (`GET`, ...).
    pub method: String,
    /// Request target (path + optional query).
    pub target: String,
    /// Whether the client asked for `Connection: close`.
    pub close: bool,
}

impl Request {
    /// The path component of the target (query string stripped).
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or("")
    }
}

/// Outcome of [`RequestParser::next_request`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parse {
    /// No complete head buffered yet; feed more bytes.
    Incomplete,
    /// One complete request head, consumed from the buffer (pipelined
    /// bytes after it remain buffered).
    Complete(Request),
    /// The buffered head exceeds the size limit (maps to 431).
    Overflow,
    /// The head terminator arrived but the head is not valid HTTP (maps
    /// to 400).
    Malformed,
}

/// Incremental request-head parser: bytes are [`fed`](Self::feed) in
/// arbitrary chunks (however the socket splits them) and complete heads
/// are taken out one at a time, so pipelined requests survive intact.
/// Never panics on any byte sequence.
#[derive(Debug)]
pub struct RequestParser {
    buf: Vec<u8>,
    max_bytes: usize,
}

impl RequestParser {
    /// A parser accepting heads up to `max_bytes`.
    pub fn new(max_bytes: usize) -> Self {
        Self {
            buf: Vec::new(),
            max_bytes,
        }
    }

    /// Appends received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered (partial head or pipelined requests).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Takes the next complete request head out of the buffer.
    pub fn next_request(&mut self) -> Parse {
        let Some(end) = find_terminator(&self.buf) else {
            return if self.buf.len() > self.max_bytes {
                Parse::Overflow
            } else {
                Parse::Incomplete
            };
        };
        if end > self.max_bytes {
            return Parse::Overflow;
        }
        let head = String::from_utf8_lossy(&self.buf[..end]).into_owned();
        self.buf.drain(..end + 4);
        match parse_head(&head) {
            Some(request) => Parse::Complete(request),
            None => Parse::Malformed,
        }
    }
}

/// Byte offset of the `\r\n\r\n` head terminator, if present.
fn find_terminator(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn parse_head(head: &str) -> Option<Request> {
    let mut lines = head.split("\r\n");
    let request_line = lines.next()?;
    let mut parts = request_line.split(' ').filter(|p| !p.is_empty());
    let method = parts.next()?;
    let target = parts.next()?;
    let version = parts.next()?;
    if parts.next().is_some() || !version.starts_with("HTTP/") {
        return None;
    }
    let mut close = false;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':')?;
        if name.trim().eq_ignore_ascii_case("connection")
            && value.trim().eq_ignore_ascii_case("close")
        {
            close = true;
        }
    }
    Some(Request {
        method: method.to_string(),
        target: target.to_string(),
        close,
    })
}

/// A route handler, called once per matching GET request.
pub type Handler = Box<dyn Fn() -> Response + Send + Sync>;

/// Point-in-time serving statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections currently being served.
    pub active: usize,
    /// Connections accepted into service over the server's lifetime.
    pub accepted: u64,
    /// Connections shed with 503 because the cap was reached.
    pub shed: u64,
    /// Requests answered across all connections.
    pub requests: u64,
}

#[derive(Default)]
struct Counters {
    active: AtomicUsize,
    accepted: AtomicU64,
    shed: AtomicU64,
    requests: AtomicU64,
}

/// The status endpoint: binds immediately, serves on a background accept
/// thread plus one short-lived thread per connection, until
/// [`Self::shutdown`] (or drop) stops accepting and drains in-flight
/// connections.
pub struct StatusServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    counters: Arc<Counters>,
    config: ServerConfig,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl StatusServer {
    /// Binds `addr` with default tuning; see [`Self::bind_with`].
    ///
    /// # Errors
    ///
    /// Propagates bind and thread-spawn failures.
    pub fn bind(addr: &str, routes: Vec<(&'static str, Handler)>) -> io::Result<Self> {
        Self::bind_with(addr, routes, ServerConfig::default())
    }

    /// Binds `addr` (e.g. `127.0.0.1:9090`; port 0 picks a free port)
    /// and starts serving `routes` (exact-match paths, query strings
    /// ignored) under the given tuning.
    ///
    /// # Errors
    ///
    /// Propagates bind and thread-spawn failures.
    pub fn bind_with(
        addr: &str,
        routes: Vec<(&'static str, Handler)>,
        config: ServerConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(Counters::default());
        let routes = Arc::new(routes);
        let accept_stop = Arc::clone(&stop);
        let accept_counters = Arc::clone(&counters);
        let accept_config = config.clone();
        let handle = std::thread::Builder::new()
            .name("tincy-status".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if accept_stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    if accept_counters.active.load(Ordering::Acquire)
                        >= accept_config.max_connections
                    {
                        // Shed at the accept gate: a best-effort 503 so the
                        // peer backs off instead of queueing. Runs on its
                        // own short-lived thread — it must drain the peer's
                        // request bytes (or the close would RST the 503
                        // away) and that wait cannot block the accept loop.
                        accept_counters.shed.fetch_add(1, Ordering::Relaxed);
                        let config = accept_config.clone();
                        let _ = std::thread::Builder::new()
                            .name("tincy-status-shed".to_string())
                            .spawn(move || {
                                let _ = shed(stream, &config);
                            });
                        continue;
                    }
                    accept_counters.active.fetch_add(1, Ordering::AcqRel);
                    accept_counters.accepted.fetch_add(1, Ordering::Relaxed);
                    let routes = Arc::clone(&routes);
                    let stop = Arc::clone(&accept_stop);
                    let counters = Arc::clone(&accept_counters);
                    let config = accept_config.clone();
                    // Handler threads are detached; `active` tracks them
                    // for the shutdown drain.
                    let spawned = std::thread::Builder::new()
                        .name("tincy-status-conn".to_string())
                        .spawn(move || {
                            let _ = serve_connection(stream, &routes, &config, &stop, &counters);
                            counters.active.fetch_sub(1, Ordering::AcqRel);
                        });
                    if spawned.is_err() {
                        accept_counters.active.fetch_sub(1, Ordering::AcqRel);
                    }
                }
            })?;
        Ok(Self {
            addr,
            stop,
            counters,
            config,
            handle: Some(handle),
        })
    }

    /// The bound address (with the real port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current serving statistics.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            active: self.counters.active.load(Ordering::Acquire),
            accepted: self.counters.accepted.load(Ordering::Relaxed),
            shed: self.counters.shed.load(Ordering::Relaxed),
            requests: self.counters.requests.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting, lets in-flight connections finish their current
    /// response (keep-alive connections are told `Connection: close`),
    /// and waits up to the drain deadline for them to wind down.
    /// Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release);
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, self.config.io_timeout);
        let _ = handle.join();
        let deadline = Instant::now() + self.config.drain_deadline;
        while self.counters.active.load(Ordering::Acquire) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
}

impl Drop for StatusServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Best-effort 503 on an over-cap connection: respond, then drain the
/// peer's request bytes until it closes (bounded by the read timeout) so
/// the close does not reset the response away.
fn shed(mut stream: TcpStream, config: &ServerConfig) -> io::Result<()> {
    stream.set_write_timeout(Some(config.io_timeout))?;
    stream.set_read_timeout(Some(config.io_timeout))?;
    stream.write_all(&Response::unavailable(config.retry_after_secs).to_bytes(true))?;
    stream.flush()?;
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut sink = [0u8; 1024];
    for _ in 0..64 {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    Ok(())
}

fn serve_connection(
    mut stream: TcpStream,
    routes: &[(&'static str, Handler)],
    config: &ServerConfig,
    stop: &AtomicBool,
    counters: &Counters,
) -> io::Result<()> {
    stream.set_read_timeout(Some(config.io_timeout))?;
    stream.set_write_timeout(Some(config.io_timeout))?;
    let mut parser = RequestParser::new(config.max_header_bytes);
    let mut served = 0usize;
    let mut buf = [0u8; 1024];
    loop {
        // Read one request head, bounding both its size and the time the
        // peer may take to deliver it.
        let head_start = Instant::now();
        let request = loop {
            match parser.next_request() {
                Parse::Complete(request) => break request,
                Parse::Overflow => {
                    return respond(
                        &mut stream,
                        counters,
                        &Response::plain(431, "head too large\n"),
                    );
                }
                Parse::Malformed => {
                    return respond(
                        &mut stream,
                        counters,
                        &Response::plain(400, "bad request\n"),
                    );
                }
                Parse::Incomplete => {}
            }
            if stop.load(Ordering::Acquire) && parser.buffered() == 0 {
                // Draining and idle: close instead of waiting for another
                // request that will never be served.
                return Ok(());
            }
            if head_start.elapsed() >= config.header_deadline {
                if parser.buffered() == 0 {
                    return Ok(()); // idle keep-alive connection reaped
                }
                return respond(
                    &mut stream,
                    counters,
                    &Response::plain(408, "head timeout\n"),
                );
            }
            match stream.read(&mut buf) {
                Ok(0) => return Ok(()), // peer closed
                Ok(n) => parser.feed(&buf[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    // Socket timeout: loop back so the header deadline and
                    // stop flag are re-checked.
                }
                Err(e) => return Err(e),
            }
        };
        served += 1;
        let response = if request.method != "GET" {
            Response::plain(405, "method not allowed\n")
        } else {
            routes
                .iter()
                .find(|(route, _)| *route == request.path())
                .map_or_else(Response::not_found, |(_, handler)| handler())
        };
        let close =
            request.close || served >= config.max_requests_per_conn || stop.load(Ordering::Acquire);
        counters.requests.fetch_add(1, Ordering::Relaxed);
        stream.write_all(&response.to_bytes(close))?;
        stream.flush()?;
        if close {
            return Ok(());
        }
    }
}

/// Writes a terminal (always-close) response. The peer's remaining
/// request bytes are drained (briefly, bounded by the socket timeout)
/// before the close, so the response is not wiped out by a TCP reset
/// for unread data.
fn respond(stream: &mut TcpStream, counters: &Counters, response: &Response) -> io::Result<()> {
    counters.requests.fetch_add(1, Ordering::Relaxed);
    stream.write_all(&response.to_bytes(true))?;
    stream.flush()?;
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut sink = [0u8; 1024];
    for _ in 0..64 {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    Ok(())
}

/// A parsed HTTP response, as returned by the scrape clients.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Header pairs in wire order.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl HttpResponse {
    /// The value of header `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// A keep-alive scrape client: one TCP connection, many GETs. Each GET
/// reads exactly `Content-Length` body bytes, so the connection stays
/// usable for the next request.
pub struct HttpClient {
    stream: TcpStream,
    addr: SocketAddr,
    buf: Vec<u8>,
}

impl HttpClient {
    /// Connects to `addr` with `timeout` applied to the connect and every
    /// subsequent read/write.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs, timeout: Duration) -> io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address"))?;
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(Self {
            stream,
            addr,
            buf: Vec::new(),
        })
    }

    /// Issues one keep-alive GET and reads the complete response.
    ///
    /// # Errors
    ///
    /// `ConnectionAborted` when the peer closed before sending any part of
    /// the response (e.g. reaped idle connection — reconnect and retry);
    /// `InvalidData` when a response started but arrived truncated or
    /// malformed.
    pub fn get(&mut self, path: &str) -> io::Result<HttpResponse> {
        write!(
            self.stream,
            "GET {path} HTTP/1.1\r\nHost: {}\r\nConnection: keep-alive\r\n\r\n",
            self.addr
        )?;
        self.stream.flush()?;
        let mut chunk = [0u8; 1024];
        let head_end = loop {
            if let Some(end) = find_terminator(&self.buf) {
                break end;
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(if self.buf.is_empty() {
                    io::Error::new(io::ErrorKind::ConnectionAborted, "closed before response")
                } else {
                    io::Error::new(io::ErrorKind::InvalidData, "truncated response head")
                });
            }
            self.buf.extend_from_slice(&chunk[..n]);
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]).into_owned();
        self.buf.drain(..head_end + 4);
        let (status, headers) = parse_response_head(&head)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed response head"))?;
        let length: usize = headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case("content-length"))
            .and_then(|(_, v)| v.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing content length"))?;
        while self.buf.len() < length {
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "truncated response body",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
        let body = String::from_utf8_lossy(&self.buf[..length]).into_owned();
        self.buf.drain(..length);
        Ok(HttpResponse {
            status,
            headers,
            body,
        })
    }
}

#[allow(clippy::type_complexity)]
fn parse_response_head(head: &str) -> Option<(u16, Vec<(String, String)>)> {
    let mut lines = head.split("\r\n");
    let status = lines.next()?.split_whitespace().nth(1)?.parse().ok()?;
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':')?;
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }
    Some((status, headers))
}

/// A one-shot HTTP GET against `addr` returning status, headers and body.
///
/// # Errors
///
/// Propagates connection failures; malformed responses surface as
/// `InvalidData`.
pub fn http_get_full(addr: impl ToSocketAddrs, path: &str) -> io::Result<HttpResponse> {
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no address"))?;
    let timeout = Duration::from_secs(2);
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing response head"))?;
    let (status, headers) = parse_response_head(head)
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing status code"))?;
    Ok(HttpResponse {
        status,
        headers,
        body: body.to_string(),
    })
}

/// A one-shot HTTP GET against `addr` (the scrape client behind `tincy
/// loadgen --scrape` and the CI smoke job). Returns the status code and
/// body.
///
/// # Errors
///
/// Propagates connection failures; malformed responses surface as
/// `InvalidData`.
pub fn http_get(addr: impl ToSocketAddrs, path: &str) -> io::Result<(u16, String)> {
    let response = http_get_full(addr, path)?;
    Ok((response.status, response.body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_routes() -> Vec<(&'static str, Handler)> {
        vec![
            (
                "/metrics",
                Box::new(|| Response::ok("text/plain; version=0.0.4", "m_total 1\n".into()))
                    as Handler,
            ),
            (
                "/healthz",
                Box::new(|| Response::ok("application/json", "{\"ok\":true}".into())) as Handler,
            ),
        ]
    }

    fn test_server() -> StatusServer {
        StatusServer::bind("127.0.0.1:0", test_routes()).expect("bind loopback")
    }

    #[test]
    fn routes_serve_and_unknown_paths_404() {
        let server = test_server();
        let (status, body) = http_get(server.addr(), "/metrics").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "m_total 1\n");
        let (status, body) = http_get(server.addr(), "/healthz").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"ok\":true}");
        let (status, _) = http_get(server.addr(), "/nope").unwrap();
        assert_eq!(status, 404);
        // Query strings are ignored for routing.
        let (status, _) = http_get(server.addr(), "/metrics?x=1").unwrap();
        assert_eq!(status, 200);
    }

    #[test]
    fn keep_alive_serves_many_requests_on_one_connection() {
        let server = test_server();
        let mut client = HttpClient::connect(server.addr(), Duration::from_secs(2)).unwrap();
        for _ in 0..5 {
            let response = client.get("/metrics").unwrap();
            assert_eq!(response.status, 200);
            assert_eq!(response.body, "m_total 1\n");
            assert_eq!(response.header("connection"), Some("keep-alive"));
        }
        let stats = server.stats();
        assert_eq!(stats.accepted, 1, "one connection carried all requests");
        assert_eq!(stats.requests, 5);
    }

    #[test]
    fn request_limit_closes_the_connection() {
        let server = StatusServer::bind_with(
            "127.0.0.1:0",
            test_routes(),
            ServerConfig {
                max_requests_per_conn: 2,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut client = HttpClient::connect(server.addr(), Duration::from_secs(2)).unwrap();
        assert_eq!(
            client.get("/metrics").unwrap().header("connection"),
            Some("keep-alive")
        );
        let second = client.get("/metrics").unwrap();
        assert_eq!(second.header("connection"), Some("close"));
        assert!(client.get("/metrics").is_err(), "connection was closed");
    }

    #[test]
    fn connection_cap_sheds_with_retry_after() {
        let server = StatusServer::bind_with(
            "127.0.0.1:0",
            test_routes(),
            ServerConfig {
                max_connections: 1,
                io_timeout: Duration::from_millis(500),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        // Occupy the only slot with a keep-alive connection.
        let mut holder = HttpClient::connect(server.addr(), Duration::from_secs(2)).unwrap();
        assert_eq!(holder.get("/metrics").unwrap().status, 200);
        // The next connection is shed with 503 + Retry-After.
        let mut shed = HttpClient::connect(server.addr(), Duration::from_secs(2)).unwrap();
        let response = shed.get("/metrics").unwrap();
        assert_eq!(response.status, 503);
        assert!(response.header("retry-after").is_some());
        assert!(server.stats().shed >= 1);
    }

    #[test]
    fn oversized_heads_are_rejected_not_hung() {
        let server = StatusServer::bind_with(
            "127.0.0.1:0",
            test_routes(),
            ServerConfig {
                max_header_bytes: 256,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let long = format!("/metrics?junk={}", "x".repeat(1024));
        let (status, _) = http_get(server.addr(), &long).unwrap();
        assert_eq!(status, 431);
    }

    #[test]
    fn slow_loris_is_cut_off_at_the_header_deadline() {
        let server = StatusServer::bind_with(
            "127.0.0.1:0",
            test_routes(),
            ServerConfig {
                header_deadline: Duration::from_millis(150),
                io_timeout: Duration::from_millis(50),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"GET /metrics HTT").unwrap(); // never finishes
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 408"), "got: {out}");
    }

    #[test]
    fn malformed_requests_get_400() {
        let server = test_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream.write_all(b"NOT-HTTP\r\n\r\n").unwrap();
        let mut out = String::new();
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        stream.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 400"), "got: {out}");
    }

    #[test]
    fn pipelined_requests_are_each_answered() {
        let server = test_server();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(
                b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\nGET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
            )
            .unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        assert_eq!(out.matches("HTTP/1.1 200").count(), 2, "got: {out}");
        assert!(out.contains("m_total 1"));
        assert!(out.contains("\"ok\":true"));
    }

    #[test]
    fn shutdown_unbinds_drains_and_is_idempotent() {
        let mut server = test_server();
        let addr = server.addr();
        server.shutdown();
        server.shutdown();
        assert_eq!(server.stats().active, 0, "drained at shutdown");
        assert!(
            TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err()
                || http_get(addr, "/metrics").is_err(),
            "the endpoint no longer serves after shutdown"
        );
    }

    #[test]
    fn parser_handles_arbitrary_chunking() {
        let raw = b"GET /metrics?q=1 HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
        for split in 0..raw.len() {
            let mut parser = RequestParser::new(8 * 1024);
            parser.feed(&raw[..split]);
            // A partial head is never complete...
            match parser.next_request() {
                Parse::Incomplete | Parse::Complete(_) => {}
                other => panic!("split {split}: {other:?}"),
            }
            parser.feed(&raw[split..]);
            let Parse::Complete(request) = parser.next_request() else {
                panic!("split {split}: head did not complete");
            };
            assert_eq!(request.method, "GET");
            assert_eq!(request.path(), "/metrics");
            assert!(request.close);
            assert_eq!(parser.buffered(), 0);
        }
    }
}
