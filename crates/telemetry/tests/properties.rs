//! Property tests for the two text protocols of the telemetry crate:
//! the incremental HTTP request-head parser and the Prometheus
//! exposition round trip. The parser properties feed the same wire
//! bytes under arbitrary chunk splits (however a socket might fragment
//! them) and demand identical outcomes; the exposition properties
//! demand that render → parse → render is a fixed point.

use proptest::prelude::*;
use tincy_telemetry::{
    check_histogram_series, parse_prometheus, prometheus_text, render_prometheus, Buckets, Parse,
    PromExemplar, PromSample, Registry, RequestParser,
};

const METHODS: &[&str] = &["GET", "HEAD", "POST"];
const PATHS: &[&str] = &["/metrics", "/healthz", "/report", "/"];

/// Builds one wire-form request head from generated picks.
fn build_request(method: usize, path: usize, query: usize, headers: usize, close: bool) -> Vec<u8> {
    let mut target = PATHS[path % PATHS.len()].to_string();
    if query > 0 {
        target.push_str(&format!("?q={}", "x".repeat(query)));
    }
    let mut head = format!(
        "{} {} HTTP/1.1\r\n",
        METHODS[method % METHODS.len()],
        target
    );
    for i in 0..headers {
        head.push_str(&format!("X-Extra-{i}: value-{i}\r\n"));
    }
    if close {
        head.push_str("Connection: close\r\n");
    }
    head.push_str("\r\n");
    head.into_bytes()
}

/// Drains every currently-parseable head, panicking on terminal states
/// (the generated input is valid, so Overflow/Malformed are failures).
fn drain_valid(parser: &mut RequestParser) -> Vec<tincy_telemetry::Request> {
    let mut out = Vec::new();
    loop {
        match parser.next_request() {
            Parse::Complete(request) => out.push(request),
            Parse::Incomplete => return out,
            state => panic!("valid request stream hit {state:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Feeding a valid (possibly pipelined) request stream in arbitrary
    /// chunk splits yields exactly the requests fed in, in order, with
    /// interleaved extraction seeing the same sequence as one-shot
    /// extraction.
    #[test]
    fn chunked_feeding_matches_whole_feeding(
        picks in proptest::collection::vec((0usize..3, 0usize..4, 0usize..12, 0usize..4), 1..5),
        close in proptest::collection::vec(0u64..2, 1..5),
        chunks in proptest::collection::vec(1usize..23, 0..96),
    ) {
        let mut wire = Vec::new();
        let mut expected = Vec::new();
        for (i, &(m, p, q, h)) in picks.iter().enumerate() {
            let close = close[i % close.len()] == 1;
            wire.extend_from_slice(&build_request(m, p, q, h, close));
            expected.push((
                METHODS[m % METHODS.len()].to_string(),
                PATHS[p % PATHS.len()].to_string(),
                close,
            ));
        }

        // One-shot: feed everything, then extract.
        let mut whole = RequestParser::new(64 * 1024);
        whole.feed(&wire);
        let got_whole = drain_valid(&mut whole);

        // Chunked: feed generated chunk sizes, extracting between feeds.
        let mut chunked = RequestParser::new(64 * 1024);
        let mut got_chunked = Vec::new();
        let mut offset = 0;
        for &size in &chunks {
            if offset >= wire.len() {
                break;
            }
            let end = (offset + size).min(wire.len());
            chunked.feed(&wire[offset..end]);
            offset = end;
            got_chunked.extend(drain_valid(&mut chunked));
        }
        chunked.feed(&wire[offset..]);
        got_chunked.extend(drain_valid(&mut chunked));

        prop_assert_eq!(&got_whole, &got_chunked);
        prop_assert_eq!(got_whole.len(), expected.len());
        for (request, (method, path, close)) in got_whole.iter().zip(&expected) {
            prop_assert_eq!(&request.method, method);
            prop_assert_eq!(request.path(), path.as_str());
            prop_assert_eq!(request.close, *close);
        }
        prop_assert_eq!(chunked.buffered(), 0, "no residue after the last request");
    }

    /// Arbitrary byte soup never panics or hangs the parser, and a
    /// buffer past the size limit with no terminator in sight is always
    /// reported as Overflow, never silently accumulated.
    #[test]
    fn garbage_never_panics_and_oversized_heads_overflow(
        bytes in proptest::collection::vec(proptest::arbitrary::any::<u8>(), 0..2048),
        chunks in proptest::collection::vec(1usize..64, 0..64),
    ) {
        const MAX: usize = 64;
        let mut parser = RequestParser::new(MAX);
        let mut offset = 0;
        for &size in &chunks {
            if offset >= bytes.len() {
                break;
            }
            let end = (offset + size).min(bytes.len());
            parser.feed(&bytes[offset..end]);
            offset = end;
            let _ = parser.next_request();
        }
        parser.feed(&bytes[offset..]);
        // Consuming states make progress; loop until a non-consuming one.
        let final_state = loop {
            match parser.next_request() {
                Parse::Complete(_) | Parse::Malformed => continue,
                state => break state,
            }
        };
        match final_state {
            Parse::Incomplete => prop_assert!(
                parser.buffered() <= MAX,
                "incomplete with {} bytes buffered past the {MAX}-byte limit",
                parser.buffered()
            ),
            Parse::Overflow => prop_assert!(parser.buffered() > 0),
            state => prop_assert!(false, "drain loop returned {:?}", state),
        }
    }

    /// A single over-limit head is reported as Overflow both when it
    /// arrives terminated and when it is still trickling in.
    #[test]
    fn oversized_heads_always_overflow(
        padding in 128usize..4096,
        terminated in proptest::arbitrary::any::<bool>(),
    ) {
        let mut wire = format!("GET /metrics HTTP/1.1\r\nX-Pad: {}\r\n", "p".repeat(padding));
        if terminated {
            wire.push_str("\r\n");
        }
        let mut parser = RequestParser::new(64);
        parser.feed(wire.as_bytes());
        prop_assert_eq!(parser.next_request(), Parse::Overflow);
    }

    /// Exposition → parse → re-emit is a fixed point: rendering parsed
    /// samples reproduces the exact text, including float specials.
    /// Label values exclude `}` — the line parser scans to the first
    /// closing brace, a documented limit of the minimal grammar.
    #[test]
    fn render_parse_render_is_a_fixed_point(
        samples in proptest::collection::vec(
            (
                0usize..4,
                proptest::collection::vec((0usize..3, proptest::collection::vec(0u8..7, 0..6)), 0..3),
                0usize..9,
            ),
            0..8,
        ),
    ) {
        const NAMES: &[&str] = &["tincy_up", "tincy_frames_total", "queue_depth", "x"];
        const KEYS: &[&str] = &["job", "stage", "le"];
        const VALUE_CHARS: &[char] = &['a', 'Z', '"', '\\', '\n', ' ', '{'];
        const VALUES: &[f64] = &[
            0.0,
            1.0,
            -1.5,
            0.1,
            1e-9,
            1.7e300,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
        ];
        let samples: Vec<PromSample> = samples
            .into_iter()
            .map(|(name, labels, value)| PromSample {
                name: NAMES[name % NAMES.len()].to_string(),
                labels: labels
                    .into_iter()
                    .enumerate()
                    .map(|(i, (key, chars))| {
                        // Suffix the key with its position: duplicate label
                        // keys would not survive `PromSample::label` lookups.
                        let key = format!("{}{i}", KEYS[key % KEYS.len()]);
                        let value: String = chars
                            .into_iter()
                            .map(|c| VALUE_CHARS[c as usize % VALUE_CHARS.len()])
                            .collect();
                        (key, value)
                    })
                    .collect(),
                value: VALUES[value % VALUES.len()],
                exemplar: None,
            })
            .collect();

        let first = render_prometheus(&samples);
        let parsed = parse_prometheus(&first)
            .unwrap_or_else(|e| panic!("rendered text failed to parse: {e}\n{first}"));
        let second = render_prometheus(&parsed);
        prop_assert_eq!(&first, &second, "render∘parse must be the identity on rendered text");
        prop_assert_eq!(parsed.len(), samples.len());
        // Everything except NaN (incomparable by definition) survives
        // the trip value-for-value.
        for (a, b) in samples.iter().zip(&parsed) {
            prop_assert_eq!(&a.name, &b.name);
            prop_assert_eq!(&a.labels, &b.labels);
            prop_assert!(a.value == b.value || (a.value.is_nan() && b.value.is_nan()));
        }
    }

    /// Sample lines carrying OpenMetrics exemplars (` # {trace_id=...}
    /// value`) survive render → parse → render as a fixed point, with
    /// the exemplar's trace id and value intact — including trace ids
    /// past f64's 53-bit mantissa, which travel as hex strings.
    #[test]
    fn exemplar_render_parse_render_is_a_fixed_point(
        entries in proptest::collection::vec(
            (proptest::arbitrary::any::<u64>(), 0usize..6, proptest::arbitrary::any::<bool>()),
            1..8,
        ),
    ) {
        const OBSERVED: &[f64] = &[0.0004, 0.002, 0.0371, 0.5, 1.75, 120.0];
        let samples: Vec<PromSample> = entries
            .iter()
            .enumerate()
            .map(|(i, &(trace_id, value, attach))| PromSample {
                name: "tincy_serve_latency_seconds_bucket".to_string(),
                labels: vec![
                    ("class".to_string(), format!("c{}", i % 3)),
                    ("le".to_string(), "+Inf".to_string()),
                ],
                value: i as f64,
                exemplar: attach.then(|| PromExemplar {
                    labels: vec![("trace_id".to_string(), format!("{trace_id:016x}"))],
                    value: OBSERVED[value % OBSERVED.len()],
                }),
            })
            .collect();

        let first = render_prometheus(&samples);
        let parsed = parse_prometheus(&first)
            .unwrap_or_else(|e| panic!("rendered text failed to parse: {e}\n{first}"));
        prop_assert_eq!(&parsed, &samples);
        let second = render_prometheus(&parsed);
        prop_assert_eq!(&first, &second);
        for (sample, &(trace_id, _, attach)) in parsed.iter().zip(&entries) {
            let hex = sample.exemplar.as_ref().and_then(|e| e.label("trace_id"));
            if attach {
                let restored = u64::from_str_radix(hex.expect("exemplar survives"), 16).unwrap();
                prop_assert_eq!(restored, trace_id, "trace id is bit-exact");
            } else {
                prop_assert!(hex.is_none());
            }
        }
    }

    /// A registry with generated contents always emits exposition text
    /// that parses cleanly and whose native histograms are structurally
    /// valid (monotone cumulative buckets, +Inf == _count).
    #[test]
    fn generated_registry_expositions_parse_and_validate(
        counts in proptest::collection::vec(0u64..10_000, 1..4),
        gauges in proptest::collection::vec(0usize..5, 0..3),
        observations in proptest::collection::vec(1u64..2_000_000, 0..40),
    ) {
        const GAUGE_VALUES: &[f64] = &[0.0, -2.5, 99.75, 1e12, f64::INFINITY];
        let registry = Registry::new();
        for (i, &n) in counts.iter().enumerate() {
            registry.counter(&format!("tincy_prop_count_{i}"), "generated").add(n);
        }
        for (i, &g) in gauges.iter().enumerate() {
            registry
                .gauge(&format!("tincy_prop_gauge_{i}"), "generated")
                .set(GAUGE_VALUES[g % GAUGE_VALUES.len()]);
        }
        let histogram =
            registry.histogram_with("tincy_prop_hist_seconds", "generated", Buckets::default());
        for &us in &observations {
            histogram.observe(std::time::Duration::from_micros(us));
        }

        let text = prometheus_text(&registry.gather());
        let parsed = parse_prometheus(&text)
            .unwrap_or_else(|e| panic!("exposition failed to parse: {e}\n{text}"));
        check_histogram_series(&parsed)
            .unwrap_or_else(|e| panic!("histogram series invalid: {e}\n{text}"));
        // The counter samples survive with their exact values.
        for (i, &n) in counts.iter().enumerate() {
            let name = format!("tincy_prop_count_{i}");
            let sample = parsed.iter().find(|s| s.name == name);
            prop_assert!(sample.is_some_and(|s| s.value == n as f64), "missing {}", name);
        }
        let count = parsed
            .iter()
            .find(|s| s.name == "tincy_prop_hist_seconds_count")
            .map(|s| s.value);
        prop_assert_eq!(count, Some(observations.len() as f64));
    }
}
