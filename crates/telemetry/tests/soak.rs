//! Soak test for the hardened status server: many keep-alive clients
//! hammer a small-capped server, so accepts beyond the cap are shed
//! with `503` + `Retry-After`, then the server is shut down mid-run.
//! Every response a client manages to read must be complete and
//! byte-identical to the route body (no half-written responses across
//! shedding, request-limit closes or the shutdown drain), and the
//! drain must finish inside its deadline.
//!
//! The client count defaults to 64 (the acceptance floor) and can be
//! reduced via `TINCY_SOAK_CLIENTS` for constrained CI runners.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tincy_telemetry::{HttpClient, Response, ServerConfig, StatusServer};

/// Per-client outcome counters, aggregated by the main thread.
#[derive(Debug, Default)]
struct ClientTally {
    ok: u64,
    shed: u64,
    shed_without_retry_after: u64,
    truncated: u64,
    body_mismatch: u64,
    unexpected_status: u64,
}

fn client_loop(addr: std::net::SocketAddr, expected: &str, stop: &AtomicBool) -> ClientTally {
    let mut tally = ClientTally::default();
    while !stop.load(Ordering::Acquire) {
        let mut client = match HttpClient::connect(addr, Duration::from_secs(1)) {
            Ok(client) => client,
            Err(_) => {
                // Server gone (mid-run shutdown) or transient; back off.
                std::thread::sleep(Duration::from_millis(2));
                continue;
            }
        };
        // Keep-alive inner loop: reuse the connection until the server
        // closes it (request limit, shed, shutdown) or we are stopped.
        while !stop.load(Ordering::Acquire) {
            match client.get("/metrics") {
                Ok(response) if response.status == 200 => {
                    tally.ok += 1;
                    if response.body != expected {
                        tally.body_mismatch += 1;
                    }
                }
                Ok(response) if response.status == 503 => {
                    tally.shed += 1;
                    if response.header("retry-after").is_none() {
                        tally.shed_without_retry_after += 1;
                    }
                    // Shed responses close the connection; honor the
                    // advertised backoff (scaled down for test time).
                    std::thread::sleep(Duration::from_millis(2));
                    break;
                }
                Ok(_) => {
                    tally.unexpected_status += 1;
                    break;
                }
                Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                    // A half-written response: the failure this soak exists
                    // to catch.
                    tally.truncated += 1;
                    break;
                }
                Err(_) => break, // clean close / timeout: reconnect
            }
        }
    }
    tally
}

#[test]
fn soak_keep_alive_clients_survive_shedding_and_mid_run_shutdown() {
    let clients: usize = std::env::var("TINCY_SOAK_CLIENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    // A cap well below the client count forces the shed path at any
    // supported client count.
    let cap = (clients / 4).max(2);
    let body: String = "tincy_soak_metric 1\n".repeat(200);
    let config = ServerConfig {
        max_connections: cap,
        max_requests_per_conn: 8,
        header_deadline: Duration::from_secs(1),
        io_timeout: Duration::from_secs(1),
        drain_deadline: Duration::from_secs(3),
        ..ServerConfig::default()
    };
    let route_body = body.clone();
    let mut server = StatusServer::bind_with(
        "127.0.0.1:0",
        vec![(
            "/metrics",
            Box::new(move || Response::ok("text/plain; charset=utf-8", route_body.clone())),
        )],
        config.clone(),
    )
    .expect("bind soak server");
    let addr = server.addr();

    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..clients)
        .map(|i| {
            let stop = Arc::clone(&stop);
            let expected = body.clone();
            std::thread::Builder::new()
                .name(format!("soak-client-{i}"))
                .spawn(move || client_loop(addr, &expected, &stop))
                .expect("spawn soak client")
        })
        .collect();

    // Let the fleet pound the server, then pull the rug mid-run.
    std::thread::sleep(Duration::from_millis(300));
    let mid_run = server.stats();
    let drain_start = Instant::now();
    server.shutdown();
    let drain = drain_start.elapsed();

    stop.store(true, Ordering::Release);
    let mut total = ClientTally::default();
    for worker in workers {
        let tally = worker.join().expect("soak client must not panic");
        total.ok += tally.ok;
        total.shed += tally.shed;
        total.shed_without_retry_after += tally.shed_without_retry_after;
        total.truncated += tally.truncated;
        total.body_mismatch += tally.body_mismatch;
        total.unexpected_status += tally.unexpected_status;
    }
    let stats = server.stats();

    assert!(total.ok > 0, "no client ever got a response: {total:?}");
    assert_eq!(total.truncated, 0, "half-written responses: {total:?}");
    assert_eq!(total.body_mismatch, 0, "corrupted responses: {total:?}");
    assert_eq!(
        total.shed_without_retry_after, 0,
        "shed 503s must advertise Retry-After: {total:?}"
    );
    assert_eq!(total.unexpected_status, 0, "unexpected statuses: {total:?}");
    assert!(
        total.shed > 0 && stats.shed > 0,
        "cap {cap} under {clients} clients must shed (client view {}, server view {})",
        total.shed,
        stats.shed
    );
    assert!(
        mid_run.active <= cap,
        "active connections {} exceeded the cap {cap}",
        mid_run.active
    );
    assert!(
        drain <= config.drain_deadline + Duration::from_secs(2),
        "shutdown drain took {drain:?}, deadline {:?}",
        config.drain_deadline
    );
    assert_eq!(stats.active, 0, "connections leaked past the drain");
    assert!(stats.accepted > 0 && stats.requests > 0, "stats: {stats:?}");
}
