//! The single hand-rolled JSON layer of the workspace. No serde exists
//! in the offline build, and the schemas are small and fixed, so one
//! incremental writer ([`JsonObject`], [`JsonArray`]) and one
//! recursive-descent parser ([`parse`] into [`JsonValue`]) cover every
//! producer and consumer: the `--metrics-json` paths in the CLI, the
//! `BENCH_*.json` artifacts, Chrome trace export/import, the Prometheus
//! status server's escaping, and the `tincy-explore` frontier report.
//!
//! Domain-specific serializers (serve reports, pipeline metrics, trace
//! events) stay in their own crates; this crate owns only the syntax.

mod value;
mod write;

pub use value::{parse, JsonValue};
pub use write::{array_f64, array_u64, escape, escape_into, JsonArray, JsonObject};
