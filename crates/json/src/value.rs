//! A minimal recursive-descent JSON parser — enough to read the files
//! this workspace writes (Chrome traces, bench artifacts, ModelSpec
//! documents) and reasonable hand-made ones.

/// A parsed JSON value. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (f64 covers the integers our formats use).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object field lookup (None for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// A message with the byte offset of the first malformed construct.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.fail("trailing data after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn fail(&self, what: &str) -> String {
        format!("json error at byte {}: {}", self.pos, what)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(&format!("expected '{}'", byte as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.fail("expected a value")),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.fail(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ascii");
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.fail("malformed number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.fail("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.fail("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.fail("malformed \\u escape"))?;
                            // Surrogate pairs are not emitted by our
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.fail("unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy the full UTF-8 scalar, not byte by byte.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.fail("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.fail("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.fail("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, -2.5, 3e2], "b": {"c": "x\ny", "d": true}, "e": null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("e"), Some(&JsonValue::Null));
    }

    #[test]
    fn escapes_decode() {
        let v = parse("\"\\u0041\\t\\\"é\"").unwrap();
        assert_eq!(v.as_str(), Some("A\t\"é"));
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for doc in ["", "{", "[1,]", "{\"a\":}", "tru", "\"open", "1 2"] {
            assert!(parse(doc).is_err(), "{doc:?} should fail");
        }
    }

    #[test]
    fn writer_output_round_trips_through_parser() {
        let doc = crate::JsonObject::new()
            .str("name", "tincy \"v7\"\n")
            .u64("n", 42)
            .f64("x", 0.5)
            .raw("arr", &crate::array_u64(&[1, 2]))
            .finish();
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("tincy \"v7\"\n"));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(42.0));
        assert_eq!(v.get("arr").unwrap().as_arr().unwrap().len(), 2);
    }
}
