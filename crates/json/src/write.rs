//! Incremental JSON emission: object/array builders plus the string
//! escape, shared by every `--metrics-json` path, bench artifact, and
//! the explore frontier report.

/// Incremental JSON object builder.
pub struct JsonObject {
    out: String,
    first: bool,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        Self {
            out: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        self.out.push('"');
        escape_into(&mut self.out, key);
        self.out.push_str("\":");
    }

    /// Adds a pre-serialized value (object, array, number literal).
    pub fn raw(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        self.out.push_str(value);
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(self, key: &str, value: u64) -> Self {
        let text = value.to_string();
        self.raw(key, &text)
    }

    /// Adds a float field (finite values only; non-finite becomes null).
    pub fn f64(self, key: &str, value: f64) -> Self {
        if value.is_finite() {
            let text = format!("{value:.6}");
            self.raw(key, &text)
        } else {
            self.raw(key, "null")
        }
    }

    /// Adds a boolean field.
    pub fn bool(self, key: &str, value: bool) -> Self {
        self.raw(key, if value { "true" } else { "false" })
    }

    /// Adds a string field, escaped.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        self.out.push('"');
        escape_into(&mut self.out, value);
        self.out.push('"');
        self
    }

    /// Closes the object.
    pub fn finish(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

impl Default for JsonObject {
    fn default() -> Self {
        Self::new()
    }
}

/// Incremental JSON array builder (elements are pre-serialized values).
pub struct JsonArray {
    out: String,
    first: bool,
}

impl JsonArray {
    /// Starts an empty array.
    pub fn new() -> Self {
        Self {
            out: String::from("["),
            first: true,
        }
    }

    /// Appends a pre-serialized element.
    pub fn raw(&mut self, value: &str) -> &mut Self {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        self.out.push_str(value);
        self
    }

    /// Appends a string element, escaped.
    pub fn str(&mut self, value: &str) -> &mut Self {
        if !self.first {
            self.out.push(',');
        }
        self.first = false;
        self.out.push('"');
        escape_into(&mut self.out, value);
        self.out.push('"');
        self
    }

    /// Closes the array.
    pub fn finish(&mut self) -> String {
        let mut out = std::mem::take(&mut self.out);
        out.push(']');
        out
    }
}

impl Default for JsonArray {
    fn default() -> Self {
        Self::new()
    }
}

/// Serializes a `u64` slice as a JSON array.
pub fn array_u64(values: &[u64]) -> String {
    let mut out = String::from("[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
    out
}

/// Serializes an `f64` slice as a JSON array (non-finite becomes null).
pub fn array_f64(values: &[f64]) -> String {
    let mut out = String::from("[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        if v.is_finite() {
            out.push_str(&format!("{v:.6}"));
        } else {
            out.push_str("null");
        }
    }
    out.push(']');
    out
}

/// JSON-escapes a string into a fresh allocation.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(&mut out, s);
    out
}

/// JSON-escapes `s`, appending to `out` (no surrounding quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_builder_escapes_and_separates() {
        let out = JsonObject::new()
            .str("name", "a\"b\\c\nd")
            .u64("n", 3)
            .bool("ok", true)
            .f64("bad", f64::NAN)
            .finish();
        assert_eq!(out, r#"{"name":"a\"b\\c\nd","n":3,"ok":true,"bad":null}"#);
    }

    #[test]
    fn array_builder_separates() {
        let mut arr = JsonArray::new();
        arr.raw("1").str("x\"y").raw("{}");
        assert_eq!(arr.finish(), r#"[1,"x\"y",{}]"#);
        assert_eq!(JsonArray::new().finish(), "[]");
    }

    #[test]
    fn primitive_arrays_serialize() {
        assert_eq!(array_u64(&[]), "[]");
        assert_eq!(array_u64(&[1, 2, 3]), "[1,2,3]");
        assert_eq!(array_f64(&[0.5, f64::NAN]), "[0.500000,null]");
    }

    #[test]
    fn control_chars_escape_as_unicode() {
        assert_eq!(escape("a\u{1}b"), "a\\u0001b");
    }
}
