//! Property-based tests: the MVTU hardware path is bit-exact with the
//! naive integer reference over randomized layer configurations.

use proptest::prelude::*;
use tincy_finn::engine::EngineConfig;
use tincy_finn::{ConvEngine, Mvtu, QnnLayerParams, SlidingWindow};
use tincy_quant::{BinaryDot, ThresholdSet, ThresholdsForLayer};
use tincy_tensor::{BitTensor, ConvGeom, PoolGeom, Shape3, Tensor, U3Tensor};

#[derive(Debug, Clone)]
struct LayerCase {
    in_shape: Shape3,
    out_channels: usize,
    stride: usize,
    pool: Option<PoolGeom>,
    pe: usize,
    simd: usize,
    weight_seed: u64,
    input_seed: u64,
}

fn layer_case() -> impl Strategy<Value = LayerCase> {
    (
        1usize..4,
        4usize..9,
        1usize..6,
        1usize..3,
        proptest::option::of((1usize..3).prop_map(|s| PoolGeom::new(2, s))),
        1usize..6,
        1usize..24,
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(|(c, hw, oc, stride, pool, pe, simd, ws, is)| LayerCase {
            in_shape: Shape3::new(c, hw, hw),
            out_channels: oc,
            stride,
            pool,
            pe,
            simd,
            weight_seed: ws,
            input_seed: is,
        })
}

fn lcg(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed | 1;
    move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    }
}

fn build_layer(case: &LayerCase) -> QnnLayerParams {
    let geom = ConvGeom::same(3, case.stride);
    let cols = geom.dot_length(case.in_shape.channels);
    let mut rng = lcg(case.weight_seed);
    let signs: Vec<i8> = (0..case.out_channels * cols)
        .map(|_| if rng() & 1 == 0 { 1 } else { -1 })
        .collect();
    let weights = BitTensor::from_signs(case.out_channels, cols, &signs).expect("dims");
    let thresholds = ThresholdsForLayer::new(
        (0..case.out_channels)
            .map(|_| {
                let base = (rng() % 40) as i32 - 25;
                let step = (rng() % 6) as i32 + 1;
                ThresholdSet::new((0..7).map(|k| base + k * step).collect()).expect("monotone")
            })
            .collect(),
    )
    .expect("uniform");
    QnnLayerParams::new(case.in_shape, weights, thresholds, geom, case.pool).expect("valid")
}

fn build_input(case: &LayerCase) -> Tensor<u8> {
    let mut rng = lcg(case.input_seed);
    Tensor::from_fn(case.in_shape, |_, _, _| (rng() % 8) as u8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Engine output == naive reference output, for any folding.
    #[test]
    fn engine_bit_exact_with_reference(case in layer_case()) {
        let layer = build_layer(&case);
        let input = build_input(&case);
        let engine = ConvEngine::new(EngineConfig {
            pe: case.pe,
            simd: case.simd,
            ..Default::default()
        }).expect("valid folding");
        let (hw, _) = engine.run_layer(&layer, &input).expect("runs");
        // Reference via a single-layer accelerator.
        let accel = tincy_finn::QnnAccelerator::new(
            vec![layer],
            EngineConfig { pe: case.pe, simd: case.simd, ..Default::default() },
        ).expect("single layer");
        let sw = accel.reference_run(&input).expect("runs");
        prop_assert_eq!(hw, sw);
    }

    /// MVTU accumulators equal the naive signed dot for random vectors.
    #[test]
    fn mvtu_accumulate_matches_binary_dot(
        cols in 1usize..300,
        rows in 1usize..5,
        seed in any::<u64>()
    ) {
        let mut rng = lcg(seed);
        let signs: Vec<i8> = (0..rows * cols).map(|_| if rng() & 1 == 0 { 1 } else { -1 }).collect();
        let weights = BitTensor::from_signs(rows, cols, &signs).expect("dims");
        let thresholds = ThresholdsForLayer::new(
            vec![ThresholdSet::binary(); rows],
        ).expect("uniform");
        let mvtu = Mvtu::new(weights.clone(), thresholds, 2, 7).expect("valid");
        let reference = BinaryDot::new(weights);
        let acts: Vec<u8> = (0..cols).map(|_| (rng() % 8) as u8).collect();
        let packed = U3Tensor::from_values(&acts).expect("3-bit");
        for r in 0..rows {
            prop_assert_eq!(mvtu.accumulate(r, &packed), reference.dot_naive(r, &acts));
        }
    }

    /// The sliding window emits exactly the im2col column for its pixel.
    #[test]
    fn sliding_window_matches_im2col(
        c in 1usize..4,
        hw in 3usize..8,
        stride in 1usize..3,
        seed in any::<u64>()
    ) {
        let shape = Shape3::new(c, hw, hw);
        let mut rng = lcg(seed);
        let fmap: Tensor<u8> = Tensor::from_fn(shape, |_, _, _| (rng() % 8) as u8);
        let geom = ConvGeom::same(3, stride);
        let swu = SlidingWindow::new(shape, geom).expect("valid");
        let cols = tincy_tensor::im2col(&fmap, geom).expect("valid");
        let out_w = swu.out_width();
        for oy in 0..swu.out_height() {
            for ox in 0..out_w {
                let fp = swu.footprint(&fmap, oy, ox).to_values();
                let col = oy * out_w + ox;
                for (r, &v) in fp.iter().enumerate() {
                    prop_assert_eq!(v, cols.at(r, col), "pixel ({},{}) row {}", oy, ox, r);
                }
            }
        }
    }
}
