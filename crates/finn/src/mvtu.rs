//! The Matrix–Vector–Threshold Unit.
//!
//! FINN's workhorse: a PE×SIMD array that multiplies a binary weight matrix
//! with an incoming activation vector and pushes each accumulator through a
//! per-channel integer threshold set (§II). With binary weights the
//! "multipliers" degenerate to XNOR/AND gates feeding popcount trees; with
//! 3-bit activations the dot product is evaluated per bitplane and the
//! planes are combined with shifts — see [`tincy_quant::xnor_popcount_dot`].

use tincy_nn::NnError;
use tincy_quant::{xnor_popcount_dot, ThresholdsForLayer};
use tincy_tensor::{BitTensor, U3Tensor};

/// One Matrix–Vector–Threshold Unit instance.
#[derive(Debug, Clone)]
pub struct Mvtu {
    weights: BitTensor,
    thresholds: ThresholdsForLayer,
    pe: usize,
    simd: usize,
}

impl Mvtu {
    /// Builds an MVTU from packed binary weights, per-channel thresholds
    /// and a folding configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidSpec`] if threshold channels disagree with
    /// weight rows or the folding parameters are zero.
    pub fn new(
        weights: BitTensor,
        thresholds: ThresholdsForLayer,
        pe: usize,
        simd: usize,
    ) -> Result<Self, NnError> {
        if thresholds.num_channels() != weights.rows() {
            return Err(NnError::InvalidSpec {
                what: format!(
                    "thresholds cover {} channels, weight matrix has {} rows",
                    thresholds.num_channels(),
                    weights.rows()
                ),
            });
        }
        if pe == 0 || simd == 0 {
            return Err(NnError::InvalidSpec {
                what: "PE and SIMD folding must be nonzero".to_owned(),
            });
        }
        Ok(Self {
            weights,
            thresholds,
            pe,
            simd,
        })
    }

    /// Output channels (weight matrix rows).
    pub fn out_channels(&self) -> usize {
        self.weights.rows()
    }

    /// Dot-product length (weight matrix columns).
    pub fn dot_length(&self) -> usize {
        self.weights.cols()
    }

    /// PE (output-channel) parallelism.
    pub fn pe(&self) -> usize {
        self.pe
    }

    /// SIMD (dot-element) parallelism.
    pub fn simd(&self) -> usize {
        self.simd
    }

    /// The packed weight matrix.
    pub fn weights(&self) -> &BitTensor {
        &self.weights
    }

    /// The integer accumulator for one output channel and one activation
    /// vector — three XNOR-popcount plane dots combined with shifts.
    ///
    /// # Panics
    ///
    /// Panics if the activation vector length differs from
    /// [`Mvtu::dot_length`].
    pub fn accumulate(&self, channel: usize, activations: &U3Tensor) -> i32 {
        assert_eq!(
            activations.len(),
            self.dot_length(),
            "activation vector length mismatch"
        );
        let w = self.weights.row_words(channel);
        (0..3)
            .map(|p| (1 << p) * xnor_popcount_dot(w, activations.plane_words(p)))
            .sum()
    }

    /// Processes one activation vector through all output channels:
    /// accumulate, then threshold to the quantized activation level.
    ///
    /// # Panics
    ///
    /// Panics if the activation vector length differs from
    /// [`Mvtu::dot_length`].
    pub fn process(&self, activations: &U3Tensor) -> Vec<u8> {
        (0..self.out_channels())
            .map(|c| {
                let acc = self.accumulate(c, activations);
                self.thresholds.channel(c).activate(acc)
            })
            .collect()
    }

    /// Cycles to process one activation vector: the matrix is folded onto
    /// the PE×SIMD array, so one vector takes
    /// `ceil(dot/simd) · ceil(channels/pe)` beats.
    pub fn cycles_per_vector(&self) -> u64 {
        (self.dot_length().div_ceil(self.simd) * self.out_channels().div_ceil(self.pe)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tincy_quant::{BinaryDot, ThresholdSet};

    fn random_mvtu(rng: &mut StdRng, rows: usize, cols: usize) -> Mvtu {
        let signs: Vec<i8> = (0..rows * cols)
            .map(|_| if rng.gen() { 1 } else { -1 })
            .collect();
        let weights = BitTensor::from_signs(rows, cols, &signs).unwrap();
        let thresholds = ThresholdsForLayer::new(
            (0..rows)
                .map(|_| {
                    let base = rng.gen_range(-20i32..0);
                    let step = rng.gen_range(1i32..6);
                    ThresholdSet::new((0..7).map(|k| base + k * step).collect()).unwrap()
                })
                .collect(),
        )
        .unwrap();
        Mvtu::new(weights, thresholds, 4, 8).unwrap()
    }

    #[test]
    fn accumulate_is_bit_exact_with_naive_reference() {
        let mut rng = StdRng::seed_from_u64(77);
        for cols in [9, 27, 64, 144, 200] {
            let mvtu = random_mvtu(&mut rng, 6, cols);
            let reference = BinaryDot::new(mvtu.weights().clone());
            let acts: Vec<u8> = (0..cols).map(|_| rng.gen_range(0..8)).collect();
            let packed = U3Tensor::from_values(&acts).unwrap();
            for c in 0..6 {
                assert_eq!(
                    mvtu.accumulate(c, &packed),
                    reference.dot_naive(c, &acts),
                    "channel {c}, cols {cols}"
                );
            }
        }
    }

    #[test]
    fn process_applies_thresholds() {
        // Single weight row of +1s with thresholds at 0, 10, 20, ...
        let weights = BitTensor::from_signs(1, 4, &[1, 1, 1, 1]).unwrap();
        let thresholds =
            ThresholdsForLayer::new(vec![
                ThresholdSet::new((0..7).map(|k| k * 10).collect()).unwrap()
            ])
            .unwrap();
        let mvtu = Mvtu::new(weights, thresholds, 1, 1).unwrap();
        // acc = 7+7+7+7 = 28 -> passes thresholds 0, 10, 20 -> level 3.
        let acts = U3Tensor::from_values(&[7, 7, 7, 7]).unwrap();
        assert_eq!(mvtu.process(&acts), vec![3]);
        // acc = 0 -> passes only threshold 0 -> level 1.
        let zeros = U3Tensor::from_values(&[0, 0, 0, 0]).unwrap();
        assert_eq!(mvtu.process(&zeros), vec![1]);
    }

    #[test]
    fn folding_cycle_model() {
        let mut rng = StdRng::seed_from_u64(78);
        let mvtu = random_mvtu(&mut rng, 6, 27);
        // ceil(27/8) * ceil(6/4) = 4 * 2 = 8 cycles per vector.
        assert_eq!(mvtu.cycles_per_vector(), 8);
    }

    #[test]
    fn validation() {
        let weights = BitTensor::zeros(2, 9);
        let one_channel = ThresholdsForLayer::new(vec![ThresholdSet::binary()]).unwrap();
        assert!(Mvtu::new(weights.clone(), one_channel, 1, 1).is_err());
        let two = ThresholdsForLayer::new(vec![ThresholdSet::binary(); 2]).unwrap();
        assert!(Mvtu::new(weights.clone(), two.clone(), 0, 1).is_err());
        assert!(Mvtu::new(weights, two, 1, 1).is_ok());
    }
}
