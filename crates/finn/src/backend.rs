//! The `library=fabric.so` offload backend (§III-C, Fig 4).
//!
//! "Using this added offload mechanism, the QNN hardware accelerator within
//! the PL was integrated into the inference path of Darknet." The backend
//! owns the offline FINN flow: it receives the *float* parameters of the
//! hidden layers from the regular weight stream, binarizes the weights,
//! folds batch normalization and activation quantization into integer
//! threshold sets, and hands the result to the [`QnnAccelerator`].

use crate::accel::{AccelReport, QnnAccelerator, QnnLayerParams};
use crate::engine::EngineConfig;
use crate::fault::{FaultInjector, FaultPlan, FaultStats};
use tincy_nn::{
    ConvSpec, NnError, OffloadBackend, OffloadConfig, PoolSpec, WeightsReader, WeightsWriter,
};
use tincy_quant::{binarize, ThresholdSet, ThresholdsForLayer};
use tincy_tensor::{BitTensor, Shape3, Tensor};

/// The registry key the fabric backend is published under (the shared
/// library name of Fig 4).
pub const FABRIC_LIBRARY: &str = "fabric.so";

/// Float parameters of one hidden layer in darknet stream order.
#[derive(Debug, Clone)]
struct FloatParams {
    bias: Vec<f32>,
    gamma: Vec<f32>,
    mean: Vec<f32>,
    var: Vec<f32>,
    weights: Vec<f32>,
}

/// The fabric offload backend: a QNN accelerator behind the Darknet
/// offload interface.
#[derive(Debug)]
pub struct FabricBackend {
    /// Offloaded sub-topology: each entry is a binary conv layer with an
    /// optional fused max-pool.
    hidden: Vec<(ConvSpec, Option<PoolSpec>)>,
    engine_config: EngineConfig,
    /// Uniform activation quantization step of the hidden feature maps.
    act_step: f32,
    input_shape: Option<Shape3>,
    params: Vec<FloatParams>,
    accel: Option<QnnAccelerator>,
    last_report: Option<AccelReport>,
    /// Fault-injection harness; cloned onto every (re)built accelerator so
    /// its counters and invocation stream survive weight reloads.
    injector: Option<FaultInjector>,
}

impl FabricBackend {
    /// Creates the backend for a hidden sub-topology.
    pub fn new(
        hidden: Vec<(ConvSpec, Option<PoolSpec>)>,
        engine_config: EngineConfig,
        act_step: f32,
    ) -> Self {
        Self {
            hidden,
            engine_config,
            act_step,
            input_shape: None,
            params: Vec::new(),
            accel: None,
            last_report: None,
            injector: None,
        }
    }

    /// Arms fault injection: every subsequent accelerator invocation draws
    /// from `plan`'s deterministic schedule. Passing an empty plan
    /// ([`FaultPlan::none`]) disarms it.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.injector = (!plan.is_empty()).then(|| FaultInjector::new(plan));
        if let Some(accel) = self.accel.as_mut() {
            accel.set_fault_injector(self.injector.clone());
        }
    }

    /// Fault counters, if injection is armed.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.injector.as_ref().map(FaultInjector::stats)
    }

    /// The timing report of the most recent forward pass.
    pub fn last_report(&self) -> Option<&AccelReport> {
        self.last_report.as_ref()
    }

    /// The built accelerator (after `load_weights`).
    pub fn accelerator(&self) -> Option<&QnnAccelerator> {
        self.accel.as_ref()
    }

    /// The uniform hidden activation step.
    pub fn act_step(&self) -> f32 {
        self.act_step
    }

    fn conv_param_count(spec: &ConvSpec, in_channels: usize) -> usize {
        spec.num_params(in_channels)
    }

    /// Deterministic default parameters so a freshly initialized backend is
    /// immediately runnable (mirroring Darknet's random layer init); a
    /// later `load_weights` overrides them.
    fn default_params(&self, input: Shape3) -> Vec<FloatParams> {
        // Small xorshift generator — keeps finn free of a rand dependency.
        let mut state: u64 = 0x9E37_79B9_7F4A_7C15 ^ (input.volume() as u64);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Uniform in [0, 1).
            (state >> 11) as f32 / (1u64 << 53) as f32
        };
        let shapes = self.shapes(input);
        self.hidden
            .iter()
            .enumerate()
            .map(|(i, (conv, _))| {
                let in_c = shapes[i].channels;
                let fan_in = conv.size * conv.size * in_c;
                let std = (2.0 / fan_in as f32).sqrt();
                FloatParams {
                    bias: (0..conv.filters).map(|_| (next() - 0.5) * 0.1).collect(),
                    gamma: (0..conv.filters).map(|_| 0.8 + 0.4 * next()).collect(),
                    mean: (0..conv.filters).map(|_| (next() - 0.5) * 0.2).collect(),
                    var: (0..conv.filters).map(|_| 0.5 + next()).collect(),
                    weights: (0..conv.filters * fan_in)
                        .map(|_| (next() - 0.5) * 2.0 * std)
                        .collect(),
                }
            })
            .collect()
    }

    fn shapes(&self, input: Shape3) -> Vec<Shape3> {
        let mut shapes = vec![input];
        let mut shape = input;
        for (conv, pool) in &self.hidden {
            shape = conv.geom().output_shape(shape, conv.filters);
            if let Some(p) = pool {
                shape = p.geom().output_shape(shape);
            }
            shapes.push(shape);
        }
        shapes
    }

    /// Runs the offline FINN flow: binarize weights, fold BN + activation
    /// quantization into thresholds, assemble the accelerator.
    fn build_accelerator(&mut self) -> Result<(), NnError> {
        let input = self.input_shape.ok_or(NnError::InvalidSpec {
            what: "fabric backend used before init".to_owned(),
        })?;
        let shapes = self.shapes(input);
        let mut layers = Vec::with_capacity(self.hidden.len());
        for (i, ((conv, pool), params)) in self.hidden.iter().zip(&self.params).enumerate() {
            let in_shape = shapes[i];
            let cols = conv.geom().dot_length(in_shape.channels);
            // Per-layer mean-absolute weight scale α: folded into the
            // thresholds so the fabric operates on pure ±1 weights.
            let n = params.weights.len().max(1);
            let alpha = params.weights.iter().map(|w| w.abs()).sum::<f32>() / n as f32;
            let signs = binarize(&params.weights);
            let weights =
                BitTensor::from_signs(conv.filters, cols, &signs).map_err(NnError::Tensor)?;
            // One accumulator unit is worth α·q_in real units.
            let acc_scale = alpha * self.act_step;
            let mut channel_thresholds = Vec::with_capacity(conv.filters);
            for c in 0..conv.filters {
                let (a, b) = if conv.batch_normalize {
                    let inv_std = 1.0 / (params.var[c] + 1e-5).sqrt();
                    (
                        params.gamma[c] * inv_std * acc_scale,
                        params.gamma[c] * (params.bias[c] - params.mean[c]) * inv_std,
                    )
                } else {
                    (acc_scale, params.bias[c])
                };
                channel_thresholds.push(ThresholdSet::from_affine(a, b, self.act_step, 8)?);
            }
            layers.push(QnnLayerParams::new(
                in_shape,
                weights,
                ThresholdsForLayer::new(channel_thresholds)?,
                conv.geom(),
                pool.map(|p| p.geom()),
            )?);
        }
        let mut accel = QnnAccelerator::new(layers, self.engine_config)?;
        // Reattach the injector so rebuilds (weight reloads) keep the same
        // fault schedule position and counters.
        accel.set_fault_injector(self.injector.clone());
        self.accel = Some(accel);
        Ok(())
    }
}

impl OffloadBackend for FabricBackend {
    fn library_name(&self) -> &str {
        FABRIC_LIBRARY
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn init(&mut self, config: &OffloadConfig) -> Result<(), NnError> {
        if self.hidden.is_empty() {
            return Err(NnError::InvalidSpec {
                what: "fabric backend has no hidden layers".to_owned(),
            });
        }
        for (conv, _) in &self.hidden {
            if !conv.precision.offloadable() {
                return Err(NnError::InvalidSpec {
                    what: format!(
                        "hidden layer precision {} is not offloadable",
                        conv.precision
                    ),
                });
            }
        }
        let shapes = self.shapes(config.input_shape);
        let produced = *shapes.last().expect("shapes includes the input");
        if produced != config.output_shape {
            return Err(NnError::ShapeMismatch {
                expected: config.output_shape.to_string(),
                actual: produced.to_string(),
            });
        }
        self.input_shape = Some(config.input_shape);
        // Make the backend runnable immediately (Darknet layers are usable
        // with their init-time parameters); load_weights overrides.
        if self.params.is_empty() {
            self.params = self.default_params(config.input_shape);
            self.build_accelerator()?;
        }
        Ok(())
    }

    fn load_weights(&mut self, reader: &mut WeightsReader<'_>) -> Result<(), NnError> {
        let input = self.input_shape.ok_or(NnError::InvalidSpec {
            what: "load_weights before init".to_owned(),
        })?;
        let shapes = self.shapes(input);
        let mut params = Vec::with_capacity(self.hidden.len());
        for (i, (conv, _)) in self.hidden.iter().enumerate() {
            let in_channels = shapes[i].channels;
            let bias = reader.read_f32s(conv.filters)?;
            let (gamma, mean, var) = if conv.batch_normalize {
                (
                    reader.read_f32s(conv.filters)?,
                    reader.read_f32s(conv.filters)?,
                    reader.read_f32s(conv.filters)?,
                )
            } else {
                (
                    vec![1.0; conv.filters],
                    vec![0.0; conv.filters],
                    vec![1.0; conv.filters],
                )
            };
            let weights = reader.read_f32s(conv.filters * conv.size * conv.size * in_channels)?;
            params.push(FloatParams {
                bias,
                gamma,
                mean,
                var,
                weights,
            });
        }
        self.params = params;
        self.build_accelerator()
    }

    fn write_weights(&self, writer: &mut WeightsWriter<'_>) -> Result<(), NnError> {
        for ((conv, _), params) in self.hidden.iter().zip(&self.params) {
            writer.write_f32s(&params.bias)?;
            if conv.batch_normalize {
                writer.write_f32s(&params.gamma)?;
                writer.write_f32s(&params.mean)?;
                writer.write_f32s(&params.var)?;
            }
            writer.write_f32s(&params.weights)?;
        }
        Ok(())
    }

    fn forward(&mut self, input: &Tensor<f32>) -> Result<Tensor<f32>, NnError> {
        let accel = self.accel.as_ref().ok_or(NnError::InvalidSpec {
            what: "fabric backend used before load_weights".to_owned(),
        })?;
        let step = self.act_step;
        let quantized: Tensor<u8> = input.map(|v| ((v / step).round().clamp(0.0, 7.0)) as u8);
        let (levels, report) = accel.run(&quantized)?;
        self.last_report = Some(report);
        Ok(levels.map(|l| l as f32 * step))
    }

    /// CPU fallback: the golden software reference, which the hardware path
    /// matches **bit exactly** — so frames completed in degraded mode are
    /// byte-identical to fault-free frames.
    fn forward_reference(&mut self, input: &Tensor<f32>) -> Result<Tensor<f32>, NnError> {
        let accel = self.accel.as_ref().ok_or(NnError::InvalidSpec {
            what: "fabric backend used before load_weights".to_owned(),
        })?;
        let step = self.act_step;
        let quantized: Tensor<u8> = input.map(|v| ((v / step).round().clamp(0.0, 7.0)) as u8);
        let levels = accel.reference_run(&quantized)?;
        // No hardware report for a host-side pass; leave the last one.
        Ok(levels.map(|l| l as f32 * step))
    }

    /// Batched offload: one accelerator invocation for the whole
    /// micro-batch, streaming each layer's weights in once — the
    /// amortization the serving layer's batch former exists to exploit.
    fn forward_batch(&mut self, inputs: &[Tensor<f32>]) -> Result<Vec<Tensor<f32>>, NnError> {
        let accel = self.accel.as_ref().ok_or(NnError::InvalidSpec {
            what: "fabric backend used before load_weights".to_owned(),
        })?;
        let step = self.act_step;
        let quantized: Vec<Tensor<u8>> = inputs
            .iter()
            .map(|input| input.map(|v| ((v / step).round().clamp(0.0, 7.0)) as u8))
            .collect();
        let (levels, report) = accel.run_batch(&quantized)?;
        self.last_report = Some(report);
        Ok(levels
            .into_iter()
            .map(|t| t.map(|l| l as f32 * step))
            .collect())
    }

    fn num_params(&self) -> usize {
        let Some(input) = self.input_shape else {
            return 0;
        };
        let shapes = self.shapes(input);
        self.hidden
            .iter()
            .enumerate()
            .map(|(i, (conv, _))| Self::conv_param_count(conv, shapes[i].channels))
            .sum()
    }

    fn ops_per_frame(&self) -> u64 {
        self.accel.as_ref().map_or(0, QnnAccelerator::total_ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tincy_nn::Activation;
    use tincy_quant::PrecisionConfig;

    fn hidden_spec() -> Vec<(ConvSpec, Option<PoolSpec>)> {
        let conv = |filters: usize| ConvSpec {
            filters,
            size: 3,
            stride: 1,
            pad: 1,
            activation: Activation::Relu,
            batch_normalize: true,
            precision: PrecisionConfig::W1A3,
        };
        vec![
            (conv(8), Some(PoolSpec { size: 2, stride: 2 })),
            (conv(6), None),
        ]
    }

    fn config(input: Shape3, output: Shape3) -> OffloadConfig {
        OffloadConfig {
            library: FABRIC_LIBRARY.to_owned(),
            network: "hidden.cfg".to_owned(),
            weights: "hidden.weights".to_owned(),
            input_shape: input,
            output_shape: output,
        }
    }

    fn loaded_backend() -> FabricBackend {
        let mut backend = FabricBackend::new(hidden_spec(), EngineConfig::default(), 0.125);
        backend
            .init(&config(Shape3::new(4, 8, 8), Shape3::new(6, 4, 4)))
            .unwrap();
        // Deterministic pseudo-random float parameters.
        let count = backend.num_params();
        let values: Vec<f32> = (0..count)
            .map(|i| {
                let x = ((i as u64).wrapping_mul(6364136223846793005).wrapping_add(1) >> 33) as f32
                    / (1u64 << 31) as f32;
                // Keep variances positive by construction below.
                x - 0.5
            })
            .collect();
        let mut fixed = values;
        // Overwrite the BN variance slots with positive values: layout is
        // bias, gamma, mean, var, weights per layer.
        let mut offset = 0;
        for (conv, _) in hidden_spec() {
            offset += 2 * conv.filters; // bias + gamma
            offset += conv.filters; // mean
            for v in &mut fixed[offset..offset + conv.filters] {
                *v = v.abs() + 0.5;
            }
            offset += conv.filters;
            let in_c = if conv.filters == 8 { 4 } else { 8 };
            offset += conv.filters * 9 * in_c;
        }
        let mut buf = Vec::new();
        WeightsWriter::new(&mut buf).write_f32s(&fixed).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        backend
            .load_weights(&mut WeightsReader::new(&mut cursor))
            .unwrap();
        backend
    }

    #[test]
    fn init_validates_geometry() {
        let mut backend = FabricBackend::new(hidden_spec(), EngineConfig::default(), 0.125);
        assert!(backend
            .init(&config(Shape3::new(4, 8, 8), Shape3::new(6, 4, 4)))
            .is_ok());
        assert!(backend
            .init(&config(Shape3::new(4, 8, 8), Shape3::new(5, 4, 4)))
            .is_err());
    }

    #[test]
    fn rejects_non_offloadable_precision() {
        let mut hidden = hidden_spec();
        hidden[0].0.precision = PrecisionConfig::W8A8;
        let mut backend = FabricBackend::new(hidden, EngineConfig::default(), 0.125);
        assert!(backend
            .init(&config(Shape3::new(4, 8, 8), Shape3::new(6, 4, 4)))
            .is_err());
    }

    #[test]
    fn forward_before_init_fails_but_init_alone_suffices() {
        let mut backend = FabricBackend::new(hidden_spec(), EngineConfig::default(), 0.125);
        let input = Tensor::filled(Shape3::new(4, 8, 8), 0.5f32);
        // No init: unusable.
        assert!(backend.forward(&input).is_err());
        // After init the backend self-initializes deterministic parameters
        // (like Darknet's layer init) and is runnable.
        backend
            .init(&config(Shape3::new(4, 8, 8), Shape3::new(6, 4, 4)))
            .unwrap();
        let out = backend.forward(&input).unwrap();
        assert_eq!(out.shape(), Shape3::new(6, 4, 4));
        // Deterministic: a second identical backend agrees.
        let mut other = FabricBackend::new(hidden_spec(), EngineConfig::default(), 0.125);
        other
            .init(&config(Shape3::new(4, 8, 8), Shape3::new(6, 4, 4)))
            .unwrap();
        assert_eq!(other.forward(&input).unwrap(), out);
    }

    #[test]
    fn forward_produces_quantized_levels_and_report() {
        let mut backend = loaded_backend();
        let input = Tensor::from_fn(Shape3::new(4, 8, 8), |c, y, x| {
            ((c + y + x) % 8) as f32 * 0.125
        });
        let out = backend.forward(&input).unwrap();
        assert_eq!(out.shape(), Shape3::new(6, 4, 4));
        // Outputs are multiples of the activation step.
        for &v in out.as_slice() {
            let level = v / 0.125;
            assert!((level - level.round()).abs() < 1e-5);
            assert!((0.0..=7.0).contains(&level));
        }
        let report = backend.last_report().expect("report recorded");
        assert_eq!(report.layer_cycles.len(), 2);
        assert!(backend.ops_per_frame() > 0);
    }

    #[test]
    fn reference_forward_matches_hardware_forward() {
        let mut backend = loaded_backend();
        let input = Tensor::from_fn(Shape3::new(4, 8, 8), |c, y, x| {
            ((c + 2 * y + x) % 8) as f32 * 0.125
        });
        let hw = backend.forward(&input).unwrap();
        let sw = backend.forward_reference(&input).unwrap();
        assert_eq!(hw, sw, "fallback path must be bit-exact with the fabric");
    }

    #[test]
    fn fault_plan_survives_weight_reload() {
        use crate::fault::FaultPlan;
        let mut backend = loaded_backend();
        backend.set_fault_plan(FaultPlan::outage(0, 1));
        let input = Tensor::filled(Shape3::new(4, 8, 8), 0.25f32);
        assert!(
            backend.forward(&input).is_err(),
            "invocation 0 is inside the outage"
        );

        // Reload weights (rebuilds the accelerator) — the injector keeps
        // its position, so invocation 1 is past the outage and succeeds.
        let mut buf = Vec::new();
        backend
            .write_weights(&mut WeightsWriter::new(&mut buf))
            .unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        backend
            .load_weights(&mut WeightsReader::new(&mut cursor))
            .unwrap();
        assert!(backend.forward(&input).is_ok());
        let stats = backend.fault_stats().unwrap();
        assert_eq!((stats.invocations, stats.faults), (2, 1));

        // Disarming clears injection entirely.
        backend.set_fault_plan(FaultPlan::none());
        assert!(backend.fault_stats().is_none());
        assert!(backend.forward(&input).is_ok());
    }

    #[test]
    fn batched_forward_matches_singles_and_reports_batch() {
        let mut backend = loaded_backend();
        let inputs: Vec<Tensor<f32>> = (0..3)
            .map(|k| {
                Tensor::from_fn(Shape3::new(4, 8, 8), move |c, y, x| {
                    ((c + y + k * x) % 8) as f32 * 0.125
                })
            })
            .collect();
        let singles: Vec<Tensor<f32>> =
            inputs.iter().map(|i| backend.forward(i).unwrap()).collect();
        let batched = backend.forward_batch(&inputs).unwrap();
        assert_eq!(batched, singles, "micro-batching never changes results");
        let report = backend.last_report().expect("batched report recorded");
        assert_eq!(report.batch, 3);
    }

    #[test]
    fn weight_stream_round_trip() {
        let backend = loaded_backend();
        let mut buf = Vec::new();
        backend
            .write_weights(&mut WeightsWriter::new(&mut buf))
            .unwrap();
        assert_eq!(buf.len(), backend.num_params() * 4);

        let mut other = FabricBackend::new(hidden_spec(), EngineConfig::default(), 0.125);
        other
            .init(&config(Shape3::new(4, 8, 8), Shape3::new(6, 4, 4)))
            .unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        other
            .load_weights(&mut WeightsReader::new(&mut cursor))
            .unwrap();

        let input = Tensor::from_fn(Shape3::new(4, 8, 8), |c, y, x| {
            ((c * 2 + y + x) % 8) as f32 * 0.125
        });
        let mut a = backend;
        let out_a = a.forward(&input).unwrap();
        let out_b = other.forward(&input).unwrap();
        assert_eq!(out_a, out_b);
    }
}
