//! The generalized convolutional layer engine.
//!
//! §III-A: "only a single generalized convolutional layer together with its
//! subsequent pooling layer would fit into the available fabric. The layers
//! of the network must be run one after the other on the same accelerator."
//! One [`ConvEngine`] is that hardware: a sliding-window unit feeding a
//! folded MVTU, with an optional in-stream max-pool unit.

use crate::accel::QnnLayerParams;
use crate::mvtu::Mvtu;
use crate::sliding::SlidingWindow;
use tincy_nn::NnError;
use tincy_tensor::{PoolGeom, Shape3, Tensor};

/// Engine folding and clocking configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Output-channel parallelism of the MVTU.
    pub pe: usize,
    /// Dot-element parallelism of the MVTU.
    pub simd: usize,
    /// Fabric clock in Hz.
    pub clock_hz: u64,
    /// Pipeline fill/drain overhead per layer invocation, in cycles.
    pub pipeline_latency: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        // 16x16 at 300 MHz: 256 binary MACs/cycle, the operating point that
        // reproduces the paper's 30 ms hidden-layer budget.
        Self::from(tincy_nn::FoldSpec::SHIPPED)
    }
}

impl From<tincy_nn::FoldSpec> for EngineConfig {
    fn from(fold: tincy_nn::FoldSpec) -> Self {
        Self {
            pe: fold.pe,
            simd: fold.simd,
            clock_hz: fold.clock_hz,
            pipeline_latency: fold.pipeline_latency,
        }
    }
}

impl From<EngineConfig> for tincy_nn::FoldSpec {
    fn from(config: EngineConfig) -> Self {
        Self {
            pe: config.pe,
            simd: config.simd,
            clock_hz: config.clock_hz,
            pipeline_latency: config.pipeline_latency,
        }
    }
}

/// One generalized conv(+pool) engine instance.
#[derive(Debug, Clone)]
pub struct ConvEngine {
    config: EngineConfig,
}

impl ConvEngine {
    /// Creates an engine.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidSpec`] for zero folding or clock.
    pub fn new(config: EngineConfig) -> Result<Self, NnError> {
        if config.pe == 0 || config.simd == 0 || config.clock_hz == 0 {
            return Err(NnError::InvalidSpec {
                what: "engine pe, simd and clock must be nonzero".to_owned(),
            });
        }
        Ok(Self { config })
    }

    /// The engine configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Runs one layer on the engine, returning the 3-bit output feature map
    /// and the consumed cycles.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] if the input does not match the layer geometry.
    pub fn run_layer(
        &self,
        params: &QnnLayerParams,
        input: &Tensor<u8>,
    ) -> Result<(Tensor<u8>, u64), NnError> {
        if input.shape() != params.in_shape() {
            return Err(NnError::ShapeMismatch {
                expected: params.in_shape().to_string(),
                actual: input.shape().to_string(),
            });
        }
        let swu = SlidingWindow::new(params.in_shape(), params.geom())?;
        let mvtu = Mvtu::new(
            params.weights().clone(),
            params.thresholds().clone(),
            self.config.pe,
            self.config.simd,
        )?;
        let conv_shape = Shape3::new(mvtu.out_channels(), swu.out_height(), swu.out_width());
        let mut conv_out = Tensor::zeros(conv_shape);
        for oy in 0..swu.out_height() {
            for ox in 0..swu.out_width() {
                let footprint = swu.footprint(input, oy, ox);
                for (c, level) in mvtu.process(&footprint).into_iter().enumerate() {
                    *conv_out.at_mut(c, oy, ox) = level;
                }
            }
        }
        let cycles =
            conv_shape.spatial() as u64 * mvtu.cycles_per_vector() + self.config.pipeline_latency;
        let out = match params.pool() {
            // The in-stream pool unit adds no cycles: it consumes the MVTU
            // output stream at line rate.
            Some(pool) => max_pool_levels(&conv_out, pool),
            None => conv_out,
        };
        Ok((out, cycles))
    }

    /// Wall-clock seconds for a cycle count at the configured clock.
    pub fn seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.config.clock_hz as f64
    }
}

/// Cycles one engine invocation takes for a conv layer of the given
/// dimensions — the pure form of the model used by
/// [`ConvEngine::run_layer`], usable for planning without weights.
pub fn conv_layer_cycles(
    in_shape: Shape3,
    out_channels: usize,
    geom: tincy_tensor::ConvGeom,
    config: EngineConfig,
) -> u64 {
    let out = geom.output_shape(in_shape, out_channels);
    let fold =
        geom.dot_length(in_shape.channels).div_ceil(config.simd) * out_channels.div_ceil(config.pe);
    out.spatial() as u64 * fold as u64 + config.pipeline_latency
}

/// Max-pooling over quantized activation levels.
pub fn max_pool_levels(input: &Tensor<u8>, geom: PoolGeom) -> Tensor<u8> {
    let out_shape = geom.output_shape(input.shape());
    let mut out = Tensor::zeros(out_shape);
    for c in 0..out_shape.channels {
        for oy in 0..out_shape.height {
            for ox in 0..out_shape.width {
                let mut best = 0u8;
                for ky in 0..geom.size {
                    for kx in 0..geom.size {
                        let iy = oy * geom.stride + ky;
                        let ix = ox * geom.stride + kx;
                        if iy < input.shape().height && ix < input.shape().width {
                            best = best.max(input.at(c, iy, ix));
                        }
                    }
                }
                *out.at_mut(c, oy, ox) = best;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accel::QnnLayerParams;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tincy_quant::{ThresholdSet, ThresholdsForLayer};
    use tincy_tensor::{BitTensor, ConvGeom};

    fn layer_params(
        rng: &mut StdRng,
        in_shape: Shape3,
        out_c: usize,
        geom: ConvGeom,
        pool: Option<PoolGeom>,
    ) -> QnnLayerParams {
        let cols = geom.dot_length(in_shape.channels);
        let signs: Vec<i8> = (0..out_c * cols)
            .map(|_| if rng.gen() { 1 } else { -1 })
            .collect();
        let weights = BitTensor::from_signs(out_c, cols, &signs).unwrap();
        let thresholds = ThresholdsForLayer::new(
            (0..out_c)
                .map(|_| {
                    let base = rng.gen_range(-10i32..0);
                    ThresholdSet::new((0..7).map(|k| base + k * 3).collect()).unwrap()
                })
                .collect(),
        )
        .unwrap();
        QnnLayerParams::new(in_shape, weights, thresholds, geom, pool).unwrap()
    }

    #[test]
    fn engine_output_is_three_bit() {
        let mut rng = StdRng::seed_from_u64(9);
        let in_shape = Shape3::new(4, 6, 6);
        let params = layer_params(&mut rng, in_shape, 8, ConvGeom::same(3, 1), None);
        let engine = ConvEngine::new(EngineConfig::default()).unwrap();
        let input = Tensor::from_fn(in_shape, |_, _, _| rng.gen_range(0..8) as u8);
        let (out, cycles) = engine.run_layer(&params, &input).unwrap();
        assert_eq!(out.shape(), Shape3::new(8, 6, 6));
        assert!(out.as_slice().iter().all(|&v| v <= 7));
        assert!(cycles > 0);
    }

    #[test]
    fn fused_pool_halves_output() {
        let mut rng = StdRng::seed_from_u64(10);
        let in_shape = Shape3::new(4, 8, 8);
        let params = layer_params(
            &mut rng,
            in_shape,
            8,
            ConvGeom::same(3, 1),
            Some(PoolGeom::new(2, 2)),
        );
        let engine = ConvEngine::new(EngineConfig::default()).unwrap();
        let input = Tensor::from_fn(in_shape, |_, _, _| rng.gen_range(0..8) as u8);
        let (out, _) = engine.run_layer(&params, &input).unwrap();
        assert_eq!(out.shape(), Shape3::new(8, 4, 4));
    }

    #[test]
    fn cycles_scale_with_folding() {
        let mut rng = StdRng::seed_from_u64(11);
        let in_shape = Shape3::new(16, 8, 8);
        let params = layer_params(&mut rng, in_shape, 32, ConvGeom::same(3, 1), None);
        let input = Tensor::from_fn(in_shape, |_, _, _| rng.gen_range(0..8) as u8);
        let fast = ConvEngine::new(EngineConfig {
            pe: 32,
            simd: 16,
            ..Default::default()
        })
        .unwrap();
        let slow = ConvEngine::new(EngineConfig {
            pe: 8,
            simd: 4,
            ..Default::default()
        })
        .unwrap();
        let (out_fast, cycles_fast) = fast.run_layer(&params, &input).unwrap();
        let (out_slow, cycles_slow) = slow.run_layer(&params, &input).unwrap();
        // Folding changes time, never results.
        assert_eq!(out_fast, out_slow);
        assert!(cycles_slow > cycles_fast);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut rng = StdRng::seed_from_u64(12);
        let params = layer_params(
            &mut rng,
            Shape3::new(4, 6, 6),
            8,
            ConvGeom::same(3, 1),
            None,
        );
        let engine = ConvEngine::new(EngineConfig::default()).unwrap();
        let wrong = Tensor::<u8>::zeros(Shape3::new(4, 7, 7));
        assert!(engine.run_layer(&params, &wrong).is_err());
    }

    #[test]
    fn pool_levels_max() {
        let input = Tensor::from_fn(Shape3::new(1, 2, 2), |_, y, x| (y * 2 + x) as u8);
        let out = max_pool_levels(&input, PoolGeom::new(2, 2));
        assert_eq!(out.as_slice(), &[3]);
    }

    #[test]
    fn seconds_at_clock() {
        let engine = ConvEngine::new(EngineConfig::default()).unwrap();
        assert!((engine.seconds(300_000_000) - 1.0).abs() < 1e-9);
    }
}
