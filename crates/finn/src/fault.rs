//! Deterministic fault injection for the accelerator offload path.
//!
//! A production deployment of the paper's system lives or dies on the
//! robustness of the host↔accelerator boundary (cf. FINN-R): DMA engines
//! time out, the PL can lose its configuration, result buffers arrive
//! corrupted, and the fabric can simply be busy. [`FaultPlan`] describes
//! *when* and *how* the simulated accelerator misbehaves — driven purely by
//! a seed and the invocation counter, so a plan replays **identically**
//! across runs. [`FaultInjector`] carries the plan at run time and keeps
//! shared counters that the host-side health reporting surfaces.
//!
//! Every injected fault is a *detected* fault: the accelerator returns a
//! retryable [`NnError::Accel`] instead of silently wrong data (corrupted
//! result buffers are caught by a checksum compare, modelling the CRC on
//! the DMA return path). Recovery policy — retry, backoff, CPU fallback —
//! lives host-side in `tincy-nn`'s offload layer.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tincy_nn::NnError;

/// The accelerator fault classes the injector can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The DMA transfer of the input or output feature map timed out.
    DmaTimeout,
    /// The fabric rejected the invocation because it is busy (e.g. a
    /// competing tenant holds the single conv engine).
    TransientBusy,
    /// The result buffer failed its integrity check on the way back.
    CorruptResult,
    /// The PL lost its configuration; the bitstream must be reloaded
    /// before the next invocation can succeed.
    BitstreamLost,
}

impl FaultKind {
    /// Human-readable description used in error messages.
    pub fn describe(self) -> &'static str {
        match self {
            FaultKind::DmaTimeout => "DMA transfer timeout",
            FaultKind::TransientBusy => "fabric busy",
            FaultKind::CorruptResult => "result buffer checksum mismatch",
            FaultKind::BitstreamLost => "bitstream reload required",
        }
    }

    /// The error the accelerator raises for this fault. All injected
    /// faults are detected and retryable; policy decides what to do.
    pub fn to_error(self) -> NnError {
        NnError::Accel {
            what: self.describe().to_owned(),
            retryable: true,
        }
    }
}

/// A contiguous accelerator outage: every invocation in
/// `start..start + length` fails with `kind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultWindow {
    /// First failing accelerator invocation (0-based).
    pub start: u64,
    /// Number of consecutive failing invocations.
    pub length: u64,
    /// The fault every invocation in the window raises.
    pub kind: FaultKind,
}

impl FaultWindow {
    /// Whether `invocation` falls inside the outage.
    pub fn contains(&self, invocation: u64) -> bool {
        invocation >= self.start && invocation - self.start < self.length
    }
}

/// A deterministic, seed-driven fault schedule.
///
/// The plan is a pure function of `(plan, invocation index)`: the same plan
/// observes the same faults at the same invocations in every run, which is
/// what makes degraded runs byte-reproducible. Rates are per-mille
/// probabilities evaluated with independent hash draws per invocation; an
/// optional [`FaultWindow`] models a hard outage on top.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed decorrelating the random draws of otherwise identical plans.
    pub seed: u64,
    /// Per-mille chance of a [`FaultKind::DmaTimeout`] per invocation.
    pub dma_timeout_per_mille: u16,
    /// Per-mille chance of a [`FaultKind::TransientBusy`] per invocation.
    pub busy_per_mille: u16,
    /// Per-mille chance of a [`FaultKind::CorruptResult`] per invocation.
    pub corrupt_per_mille: u16,
    /// Per-mille chance of a [`FaultKind::BitstreamLost`] per invocation.
    pub bitstream_lost_per_mille: u16,
    /// Hard outage window, checked before the probabilistic draws.
    pub outage: Option<FaultWindow>,
    /// Cycle penalty charged to the first successful invocation after a
    /// [`FaultKind::BitstreamLost`] (the reconfiguration time).
    pub reload_penalty_cycles: u64,
}

impl FaultPlan {
    /// The empty plan: never faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// A mixed transient-fault plan with moderate rates (~5% of
    /// invocations fault) — the general soak-test setting.
    pub fn from_seed(seed: u64) -> Self {
        Self {
            seed,
            dma_timeout_per_mille: 20,
            busy_per_mille: 20,
            corrupt_per_mille: 10,
            bitstream_lost_per_mille: 2,
            outage: None,
            reload_penalty_cycles: crate::FpgaDevice::XCZU3EG.bitstream_reload_cycles(128),
        }
    }

    /// A plan whose only fault is a hard DMA outage over
    /// `start..start + length` invocations.
    pub fn outage(start: u64, length: u64) -> Self {
        Self {
            outage: Some(FaultWindow {
                start,
                length,
                kind: FaultKind::DmaTimeout,
            }),
            ..Self::default()
        }
    }

    /// Replaces the outage window, keeping the probabilistic rates.
    #[must_use]
    pub fn with_outage(mut self, window: FaultWindow) -> Self {
        self.outage = Some(window);
        self
    }

    /// Whether the plan can ever fault.
    pub fn is_empty(&self) -> bool {
        self.outage.is_none()
            && self.dma_timeout_per_mille == 0
            && self.busy_per_mille == 0
            && self.corrupt_per_mille == 0
            && self.bitstream_lost_per_mille == 0
    }

    /// The fault (if any) for one accelerator invocation — a pure
    /// function, so schedules replay identically.
    pub fn fault_for(&self, invocation: u64) -> Option<FaultKind> {
        if let Some(window) = &self.outage {
            if window.contains(invocation) {
                return Some(window.kind);
            }
        }
        let draw = |salt: u64, per_mille: u16| {
            per_mille > 0 && mix(self.seed ^ salt, invocation) % 1000 < u64::from(per_mille)
        };
        if draw(0x1, self.dma_timeout_per_mille) {
            Some(FaultKind::DmaTimeout)
        } else if draw(0x2, self.busy_per_mille) {
            Some(FaultKind::TransientBusy)
        } else if draw(0x3, self.corrupt_per_mille) {
            Some(FaultKind::CorruptResult)
        } else if draw(0x4, self.bitstream_lost_per_mille) {
            Some(FaultKind::BitstreamLost)
        } else {
            None
        }
    }
}

/// SplitMix64-style avalanche over `(seed, invocation)`.
fn mix(seed: u64, invocation: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(invocation.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a checksum over a byte stream — the model of the CRC guarding the
/// DMA return path.
pub fn result_checksum(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Counters shared between the accelerator and host-side health reporting.
#[derive(Debug, Default)]
struct InjectorCounters {
    invocations: AtomicU64,
    faults: AtomicU64,
    dma_timeouts: AtomicU64,
    busy: AtomicU64,
    corrupt: AtomicU64,
    bitstream_lost: AtomicU64,
    /// Set while the PL configuration is lost; the next successful
    /// invocation pays the reload penalty and clears it.
    reload_pending: AtomicU64,
    reloads: AtomicU64,
}

/// A snapshot of the injector's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Accelerator invocations attempted (including faulted ones).
    pub invocations: u64,
    /// Total injected faults.
    pub faults: u64,
    /// [`FaultKind::DmaTimeout`] count.
    pub dma_timeouts: u64,
    /// [`FaultKind::TransientBusy`] count.
    pub busy: u64,
    /// [`FaultKind::CorruptResult`] count.
    pub corrupt: u64,
    /// [`FaultKind::BitstreamLost`] count.
    pub bitstream_lost: u64,
    /// Completed bitstream reloads (penalties paid).
    pub reloads: u64,
}

/// Run-time carrier of a [`FaultPlan`]: draws one fault decision per
/// accelerator invocation and keeps shared counters.
///
/// Cloneable handles (`Arc` inside) let a backend rebuild its accelerator
/// without resetting the invocation stream.
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    plan: FaultPlan,
    counters: Arc<InjectorCounters>,
}

impl FaultInjector {
    /// Creates an injector for a plan.
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            counters: Arc::default(),
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Draws the fault decision for the next invocation, updating
    /// counters. Returns `None` when the invocation should succeed.
    pub fn next_fault(&self) -> Option<FaultKind> {
        let invocation = self.counters.invocations.fetch_add(1, Ordering::Relaxed);
        let fault = self.plan.fault_for(invocation)?;
        self.counters.faults.fetch_add(1, Ordering::Relaxed);
        let counter = match fault {
            FaultKind::DmaTimeout => &self.counters.dma_timeouts,
            FaultKind::TransientBusy => &self.counters.busy,
            FaultKind::CorruptResult => &self.counters.corrupt,
            FaultKind::BitstreamLost => {
                self.counters.reload_pending.store(1, Ordering::Relaxed);
                &self.counters.bitstream_lost
            }
        };
        counter.fetch_add(1, Ordering::Relaxed);
        Some(fault)
    }

    /// Cycle penalty the current invocation must pay for a pending
    /// bitstream reload (0 if the configuration is intact). Clears the
    /// pending flag: the reload happens as part of this invocation.
    pub fn take_reload_penalty(&self) -> u64 {
        if self.counters.reload_pending.swap(0, Ordering::Relaxed) != 0 {
            self.counters.reloads.fetch_add(1, Ordering::Relaxed);
            self.plan.reload_penalty_cycles
        } else {
            0
        }
    }

    /// Deterministically corrupts one byte of a result buffer — the
    /// injected "bit flip on the DMA return path".
    pub fn corrupt_in_place(&self, data: &mut [u8]) {
        if data.is_empty() {
            return;
        }
        let invocation = self.counters.invocations.load(Ordering::Relaxed);
        let pos = (mix(self.plan.seed ^ 0xC0FFEE, invocation) as usize) % data.len();
        data[pos] ^= 0x2A;
    }

    /// Counter snapshot.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            invocations: self.counters.invocations.load(Ordering::Relaxed),
            faults: self.counters.faults.load(Ordering::Relaxed),
            dma_timeouts: self.counters.dma_timeouts.load(Ordering::Relaxed),
            busy: self.counters.busy.load(Ordering::Relaxed),
            corrupt: self.counters.corrupt.load(Ordering::Relaxed),
            bitstream_lost: self.counters.bitstream_lost.load(Ordering::Relaxed),
            reloads: self.counters.reloads.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_faults() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert!((0..10_000).all(|i| plan.fault_for(i).is_none()));
    }

    #[test]
    fn outage_window_is_exact() {
        let plan = FaultPlan::outage(5, 3);
        for i in 0..20 {
            let expected = (5..8).contains(&i).then_some(FaultKind::DmaTimeout);
            assert_eq!(plan.fault_for(i), expected, "invocation {i}");
        }
    }

    #[test]
    fn schedules_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::from_seed(7);
        let b = FaultPlan::from_seed(7);
        let c = FaultPlan::from_seed(8);
        let schedule = |p: &FaultPlan| (0..4000).map(|i| p.fault_for(i)).collect::<Vec<_>>();
        assert_eq!(schedule(&a), schedule(&b));
        assert_ne!(schedule(&a), schedule(&c));
        let faults = schedule(&a).iter().filter(|f| f.is_some()).count();
        assert!(
            faults > 50,
            "expected a visible fault rate, got {faults}/4000"
        );
        assert!(faults < 1000, "fault rate implausibly high: {faults}/4000");
    }

    #[test]
    fn injector_counts_by_kind_and_replays() {
        let injector = FaultInjector::new(FaultPlan::from_seed(3));
        let seen: Vec<_> = (0..2000).map(|_| injector.next_fault()).collect();
        let stats = injector.stats();
        assert_eq!(stats.invocations, 2000);
        assert_eq!(
            stats.faults as usize,
            seen.iter().filter(|f| f.is_some()).count()
        );
        assert_eq!(
            stats.faults,
            stats.dma_timeouts + stats.busy + stats.corrupt + stats.bitstream_lost
        );
        // A cloned handle shares the counter stream.
        let other = injector.clone();
        assert_eq!(other.stats(), stats);
        // A fresh injector over the same plan replays the same schedule.
        let replay = FaultInjector::new(FaultPlan::from_seed(3));
        let seen2: Vec<_> = (0..2000).map(|_| replay.next_fault()).collect();
        assert_eq!(seen, seen2);
    }

    #[test]
    fn reload_penalty_paid_once_after_bitstream_loss() {
        let plan = FaultPlan {
            reload_penalty_cycles: 1234,
            ..FaultPlan::outage(0, 1)
        };
        let plan = FaultPlan {
            outage: Some(FaultWindow {
                start: 0,
                length: 1,
                kind: FaultKind::BitstreamLost,
            }),
            ..plan
        };
        let injector = FaultInjector::new(plan);
        assert_eq!(injector.next_fault(), Some(FaultKind::BitstreamLost));
        assert_eq!(injector.take_reload_penalty(), 1234);
        assert_eq!(
            injector.take_reload_penalty(),
            0,
            "penalty paid exactly once"
        );
        assert_eq!(injector.stats().reloads, 1);
    }

    #[test]
    fn corruption_flips_exactly_one_byte_deterministically() {
        let injector = FaultInjector::new(FaultPlan::from_seed(9));
        let clean = vec![0u8; 64];
        let mut a = clean.clone();
        let mut b = clean.clone();
        injector.corrupt_in_place(&mut a);
        injector.corrupt_in_place(&mut b);
        assert_eq!(a, b, "same invocation corrupts the same byte");
        let flipped = clean.iter().zip(&a).filter(|(x, y)| x != y).count();
        assert_eq!(flipped, 1);
        assert_ne!(result_checksum(&clean), result_checksum(&a));
    }
}
