//! Programmable-logic device models.

use crate::resource::ResourceEstimate;

/// A programmable-logic resource budget.
///
/// The paper targets "a rather small XCZU3EG chip" (§III-A); its fabric
/// budget decides that only a single generalized conv engine fits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FpgaDevice {
    /// Marketing name.
    pub name: &'static str,
    /// 6-input look-up tables.
    pub luts: u64,
    /// 36 Kib block RAMs.
    pub bram36: u64,
    /// DSP48 slices.
    pub dsps: u64,
}

impl FpgaDevice {
    /// The Zynq UltraScale+ XCZU3EG (Ultra96-class) fabric.
    pub const XCZU3EG: Self = Self {
        name: "XCZU3EG",
        luts: 70_560,
        bram36: 216,
        dsps: 360,
    };

    /// A mid-range Zynq UltraScale+ (ZU7EV-class) for comparison.
    pub const XCZU7EV: Self = Self {
        name: "XCZU7EV",
        luts: 230_400,
        bram36: 312,
        dsps: 1_728,
    };

    /// Whether an estimate fits within this device (with a utilization
    /// ceiling — full occupation never routes).
    pub fn fits(&self, estimate: &ResourceEstimate) -> bool {
        self.fits_with_utilization(estimate, 0.9)
    }

    /// [`FpgaDevice::fits`] with an explicit utilization ceiling.
    pub fn fits_with_utilization(&self, estimate: &ResourceEstimate, ceiling: f64) -> bool {
        (estimate.luts as f64) <= self.luts as f64 * ceiling
            && (estimate.bram36 as f64) <= self.bram36 as f64 * ceiling
            && (estimate.dsps as f64) <= self.dsps as f64 * ceiling
    }

    /// Configuration-bitstream size in bits, approximated from the fabric
    /// size (UltraScale+ frames hold config for roughly 100 bits/LUT of
    /// fabric state; the XCZU3EG bitstream is ~5.6 MiB).
    pub fn bitstream_bits(&self) -> u64 {
        self.luts * 640
    }

    /// Cycles to stream the full bitstream back into the PL over a
    /// `bits_per_cycle`-wide configuration port — the cost a running system
    /// pays when the fabric loses its configuration and must be reloaded.
    pub fn bitstream_reload_cycles(&self, bits_per_cycle: u64) -> u64 {
        self.bitstream_bits().div_ceil(bits_per_cycle.max(1))
    }

    /// Utilization fractions `(lut, bram, dsp)` of an estimate.
    pub fn utilization(&self, estimate: &ResourceEstimate) -> (f64, f64, f64) {
        (
            estimate.luts as f64 / self.luts as f64,
            estimate.bram36 as f64 / self.bram36 as f64,
            estimate.dsps as f64 / self.dsps as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_respects_ceiling() {
        let dev = FpgaDevice::XCZU3EG;
        let small = ResourceEstimate {
            luts: 10_000,
            bram36: 50,
            dsps: 0,
        };
        assert!(dev.fits(&small));
        let lut_heavy = ResourceEstimate {
            luts: 69_000,
            bram36: 10,
            dsps: 0,
        };
        assert!(!dev.fits(&lut_heavy)); // above the 90% ceiling
        assert!(dev.fits_with_utilization(&lut_heavy, 1.0));
    }

    #[test]
    fn bram_bound_detected() {
        let dev = FpgaDevice::XCZU3EG;
        let bram_heavy = ResourceEstimate {
            luts: 1_000,
            bram36: 217,
            dsps: 0,
        };
        assert!(!dev.fits(&bram_heavy));
    }

    #[test]
    fn utilization_fractions() {
        let dev = FpgaDevice::XCZU3EG;
        let est = ResourceEstimate {
            luts: 35_280,
            bram36: 108,
            dsps: 180,
        };
        let (l, b, d) = dev.utilization(&est);
        assert!((l - 0.5).abs() < 1e-9);
        assert!((b - 0.5).abs() < 1e-9);
        assert!((d - 0.5).abs() < 1e-9);
    }

    #[test]
    fn reload_cycles_scale_with_port_width() {
        let dev = FpgaDevice::XCZU3EG;
        let narrow = dev.bitstream_reload_cycles(32);
        let wide = dev.bitstream_reload_cycles(128);
        assert!(narrow > wide);
        assert_eq!(narrow, dev.bitstream_bits().div_ceil(32));
        // Zero width must not divide by zero.
        assert_eq!(dev.bitstream_reload_cycles(0), dev.bitstream_bits());
    }

    #[test]
    fn bigger_device_fits_more() {
        let est = ResourceEstimate {
            luts: 100_000,
            bram36: 250,
            dsps: 0,
        };
        assert!(!FpgaDevice::XCZU3EG.fits(&est));
        assert!(FpgaDevice::XCZU7EV.fits(&est));
    }
}
