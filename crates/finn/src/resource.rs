//! Resource estimation for MVTU-based conv engines.
//!
//! The estimates are calibrated against published FINN configurations: a
//! binary-weight PE×SIMD array needs no DSPs (XNOR + popcount trees are LUT
//! logic), its weight storage comes from BRAM, and a fixed overhead covers
//! the sliding-window unit, stream infrastructure and control.

use crate::engine::EngineConfig;
use std::ops::Add;
use tincy_nn::{LayerSpec, ModelSpec};

/// A LUT/BRAM/DSP bill of materials.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceEstimate {
    /// 6-input look-up tables.
    pub luts: u64,
    /// 36 Kib block RAMs.
    pub bram36: u64,
    /// DSP48 slices.
    pub dsps: u64,
}

impl Add for ResourceEstimate {
    type Output = ResourceEstimate;

    fn add(self, rhs: ResourceEstimate) -> ResourceEstimate {
        ResourceEstimate {
            luts: self.luts + rhs.luts,
            bram36: self.bram36 + rhs.bram36,
            dsps: self.dsps + rhs.dsps,
        }
    }
}

impl ResourceEstimate {
    /// LUT cost of one PE×SIMD binary MAC cell with 3-bit activations:
    /// three XNOR/AND plane taps, the shared popcount adder tree slice and
    /// the accumulator share. Calibrated so a 16×16 array with overheads
    /// lands in the tens-of-kLUTs regime of published FINN builds.
    pub const LUTS_PER_MAC_W1A3: u64 = 40;

    /// Fixed engine overhead: sliding-window unit, width converters,
    /// threshold memories' addressing, control FSM, AXI plumbing.
    pub const ENGINE_OVERHEAD_LUTS: u64 = 9_000;

    /// LUT cost per threshold comparator (7 per output channel at A3).
    pub const LUTS_PER_THRESHOLD: u64 = 12;

    /// Estimates an MVTU-based conv engine.
    ///
    /// * `pe` — output-channel parallelism,
    /// * `simd` — dot-product-element parallelism,
    /// * `weight_bits` — binary weight storage the engine must hold
    ///   on-chip (the largest layer for a time-multiplexed engine; the layer
    ///   itself for a dataflow stage),
    /// * `levels` — activation levels (8 for A3).
    pub fn conv_engine(pe: usize, simd: usize, weight_bits: u64, levels: usize) -> Self {
        let mac_luts = (pe * simd) as u64 * Self::LUTS_PER_MAC_W1A3;
        let threshold_luts = (pe * (levels - 1)) as u64 * Self::LUTS_PER_THRESHOLD;
        // Dual-port weight buffer, double-buffered for weight swapping.
        let bram36 = (2 * weight_bits).div_ceil(36 * 1024);
        ResourceEstimate {
            luts: mac_luts + threshold_luts + Self::ENGINE_OVERHEAD_LUTS,
            bram36,
            dsps: 0, // binary weights need no multipliers
        }
    }
}

/// Estimates the fabric bill of materials for a whole design point: one
/// time-multiplexed engine at the model's folding, sized by the largest
/// offloadable layer's weight store and the widest activation among the
/// offloaded layers. A model with no offloadable layer needs no engine
/// and costs nothing.
pub fn model_estimate(model: &ModelSpec) -> ResourceEstimate {
    let mut shape = model.network.input;
    let mut max_weight_bits = 0u64;
    let mut max_levels = 0usize;
    for layer in &model.network.layers {
        if let LayerSpec::Conv(c) = layer {
            if c.precision.offloadable() {
                let weights = (c.filters * c.size * c.size * shape.channels) as u64;
                max_weight_bits =
                    max_weight_bits.max(weights * u64::from(c.precision.weights.bits()));
                max_levels = max_levels.max(c.precision.activations.levels());
            }
        }
        shape = layer.output_shape(shape);
    }
    if max_weight_bits == 0 {
        return ResourceEstimate::default();
    }
    let config = EngineConfig::from(model.fold);
    ResourceEstimate::conv_engine(config.pe, config.simd, max_weight_bits, max_levels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::FpgaDevice;

    #[test]
    fn binary_engine_uses_no_dsps() {
        let est = ResourceEstimate::conv_engine(16, 16, 2_359_296, 8);
        assert_eq!(est.dsps, 0);
    }

    #[test]
    fn single_tincy_engine_fits_xczu3eg() {
        // One 16x16 engine holding the largest hidden layer
        // (512x512x3x3 = 2,359,296 weight bits, double buffered).
        let est = ResourceEstimate::conv_engine(16, 16, 2_359_296, 8);
        assert!(
            FpgaDevice::XCZU3EG.fits(&est),
            "single engine must fit: {est:?}"
        );
    }

    #[test]
    fn addition_accumulates() {
        let a = ResourceEstimate {
            luts: 1,
            bram36: 2,
            dsps: 3,
        };
        let b = ResourceEstimate {
            luts: 10,
            bram36: 20,
            dsps: 30,
        };
        assert_eq!(
            a + b,
            ResourceEstimate {
                luts: 11,
                bram36: 22,
                dsps: 33
            }
        );
    }

    #[test]
    fn weight_storage_drives_bram() {
        let small = ResourceEstimate::conv_engine(16, 16, 9_216, 8);
        let large = ResourceEstimate::conv_engine(16, 16, 2_359_296, 8);
        assert!(large.bram36 > small.bram36);
        // 2 * 2,359,296 bits / 36Kib = 128 BRAM36.
        assert_eq!(large.bram36, 128);
    }
}
