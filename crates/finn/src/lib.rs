//! A behavioural and cycle-approximate simulator of the FINN-style QNN
//! hardware accelerator the paper offloads Tincy YOLO's hidden layers to
//! (§II, §III-A/C).
//!
//! The real system instantiates, through the HLS library of FINN \[7\], a
//! single *generalized convolutional layer engine* (plus its subsequent
//! pooling layer) in the programmable logic of an XCZU3EG — the device is
//! too small for a per-layer dataflow pipeline, so "the layers of the
//! network must be run one after the other on the same accelerator". We
//! model exactly that:
//!
//! * [`mvtu`] — the Matrix–Vector–Threshold Unit: PE×SIMD-folded
//!   XNOR-popcount dot products followed by integer threshold activations.
//!   Its arithmetic is **bit-exact** against the naive integer reference in
//!   [`tincy_quant::BinaryDot`].
//! * [`sliding`] — the sliding-window unit feeding kernel footprints to the
//!   MVTU (the on-the-fly `im2col` of the dataflow architecture).
//! * [`engine`] — one generalized conv(+pool) engine with a cycle model.
//! * [`accel`] — the layer-at-a-time accelerator executing a whole hidden
//!   stack on one engine, including weight-swap traffic.
//! * [`fault`] — deterministic fault injection for the offload boundary
//!   (DMA timeouts, busy fabric, corrupted result buffers, bitstream
//!   loss), driving the host-side retry/fallback machinery.
//! * [`resource`] / [`device`] — LUT/BRAM/DSP estimates and the XCZU3EG
//!   budget, reproducing the §III-A feasibility argument.
//! * [`backend`] — the `library=fabric.so` offload backend plugging the
//!   accelerator into `tincy-nn` networks (Fig 4).

pub mod accel;
pub mod backend;
pub mod device;
pub mod engine;
pub mod fault;
pub mod mvtu;
pub mod resource;
pub mod sliding;

pub use accel::{AccelReport, QnnAccelerator, QnnLayerParams};
pub use backend::{FabricBackend, FABRIC_LIBRARY};
pub use device::FpgaDevice;
pub use engine::{conv_layer_cycles, max_pool_levels, ConvEngine, EngineConfig};
pub use fault::{FaultInjector, FaultKind, FaultPlan, FaultStats, FaultWindow};
pub use mvtu::Mvtu;
pub use resource::{model_estimate, ResourceEstimate};
pub use sliding::SlidingWindow;
