//! The sliding-window unit: on-the-fly `im2col` over 3-bit feature maps.
//!
//! In the FINN dataflow architecture a sliding-window unit buffers incoming
//! feature-map rows and emits one kernel footprint per output pixel to the
//! MVTU. Functionally this is `im2col` restricted to a single column at a
//! time; padding emits level 0, which is exact because hidden feature maps
//! are unsigned quantized activations whose level 0 *is* real zero (the
//! output of a ReLU-style threshold stack).

use tincy_nn::NnError;
use tincy_tensor::{ConvGeom, Shape3, Tensor, U3Tensor};

/// Sliding-window generator for one layer application.
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    shape: Shape3,
    geom: ConvGeom,
    out_h: usize,
    out_w: usize,
}

impl SlidingWindow {
    /// Creates a window generator.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidSpec`] if the geometry does not fit the
    /// input shape.
    pub fn new(shape: Shape3, geom: ConvGeom) -> Result<Self, NnError> {
        geom.validate(shape).map_err(|e| NnError::InvalidSpec {
            what: e.to_string(),
        })?;
        Ok(Self {
            shape,
            geom,
            out_h: geom.output_extent(shape.height),
            out_w: geom.output_extent(shape.width),
        })
    }

    /// Output spatial height.
    pub fn out_height(&self) -> usize {
        self.out_h
    }

    /// Output spatial width.
    pub fn out_width(&self) -> usize {
        self.out_w
    }

    /// Length of each emitted footprint vector (`K²·C`).
    pub fn vector_len(&self) -> usize {
        self.geom.dot_length(self.shape.channels)
    }

    /// Emits the packed footprint for output pixel `(oy, ox)`.
    ///
    /// Element order is channel-major `(c, ky, kx)`, matching the weight
    /// row linearization.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range or the feature map shape
    /// disagrees with the construction shape.
    pub fn footprint(&self, fmap: &Tensor<u8>, oy: usize, ox: usize) -> U3Tensor {
        assert_eq!(fmap.shape(), self.shape, "feature map shape mismatch");
        assert!(
            oy < self.out_h && ox < self.out_w,
            "output pixel out of range"
        );
        let mut out = U3Tensor::zeros(self.vector_len());
        let mut i = 0;
        for c in 0..self.shape.channels {
            for ky in 0..self.geom.kernel {
                for kx in 0..self.geom.kernel {
                    let iy = (oy * self.geom.stride + ky) as isize - self.geom.pad as isize;
                    let ix = (ox * self.geom.stride + kx) as isize - self.geom.pad as isize;
                    let v = if iy < 0
                        || ix < 0
                        || iy as usize >= self.shape.height
                        || ix as usize >= self.shape.width
                    {
                        0
                    } else {
                        fmap.at(c, iy as usize, ix as usize)
                    };
                    out.set(i, v);
                    i += 1;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fmap() -> Tensor<u8> {
        Tensor::from_fn(Shape3::new(2, 4, 4), |c, y, x| {
            ((c * 3 + y * 2 + x) % 8) as u8
        })
    }

    #[test]
    fn footprint_matches_direct_gather() {
        let f = fmap();
        let geom = ConvGeom::same(3, 1);
        let swu = SlidingWindow::new(f.shape(), geom).unwrap();
        let fp = swu.footprint(&f, 1, 2).to_values();
        let mut expected = Vec::new();
        for c in 0..2 {
            for ky in 0..3 {
                for kx in 0..3 {
                    let iy = 1 + ky as isize - 1;
                    let ix = 2 + kx as isize - 1;
                    expected.push(if iy < 0 || ix < 0 || iy >= 4 || ix >= 4 {
                        0
                    } else {
                        f.at(c, iy as usize, ix as usize)
                    });
                }
            }
        }
        assert_eq!(fp, expected);
    }

    #[test]
    fn border_padding_is_level_zero() {
        let f = Tensor::filled(Shape3::new(1, 3, 3), 7u8);
        let swu = SlidingWindow::new(f.shape(), ConvGeom::same(3, 1)).unwrap();
        let fp = swu.footprint(&f, 0, 0).to_values();
        // Top-left footprint: first row and column are padding.
        assert_eq!(fp, vec![0, 0, 0, 0, 7, 7, 0, 7, 7]);
    }

    #[test]
    fn stride_moves_window() {
        let f = fmap();
        let swu = SlidingWindow::new(f.shape(), ConvGeom::new(2, 2, 0)).unwrap();
        assert_eq!(swu.out_height(), 2);
        assert_eq!(swu.out_width(), 2);
        let fp = swu.footprint(&f, 1, 1).to_values();
        assert_eq!(fp[0], f.at(0, 2, 2));
    }

    #[test]
    fn vector_len_is_dot_length() {
        let swu = SlidingWindow::new(Shape3::new(16, 8, 8), ConvGeom::same(3, 1)).unwrap();
        assert_eq!(swu.vector_len(), 144);
    }
}
