//! The layer-at-a-time QNN accelerator.
//!
//! Resource constraints on the XCZU3EG preclude a per-layer dataflow
//! pipeline, so one [`ConvEngine`] executes the offloaded hidden layers
//! sequentially, swapping weights between invocations. "Note that this
//! precludes concurrency across layers and implies a higher latency compared
//! to a pipeline as the feature maps between layers are computed in full
//! before the computation of the next layer can be triggered" (§III-A).

use crate::device::FpgaDevice;
use crate::engine::{ConvEngine, EngineConfig};
use crate::fault::{result_checksum, FaultInjector, FaultKind};
use crate::resource::ResourceEstimate;
use std::sync::Arc;
use tincy_kernels::{KernelPlan, PackedLayer, TuneBudget};
use tincy_nn::NnError;
use tincy_quant::{BinaryDot, ThresholdsForLayer};
use tincy_tensor::{BitTensor, ConvGeom, PoolGeom, Shape3, Tensor, U3Tensor};
use tincy_trace::static_label;

/// Activation bit width of the offloaded hidden layers (W1A3).
const HIDDEN_ACT_BITS: usize = 3;

/// Parameters of one offloaded W1A3 conv(+pool) layer.
#[derive(Debug, Clone)]
pub struct QnnLayerParams {
    in_shape: Shape3,
    weights: BitTensor,
    thresholds: ThresholdsForLayer,
    geom: ConvGeom,
    pool: Option<PoolGeom>,
}

impl QnnLayerParams {
    /// Creates layer parameters.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidSpec`] on any dimensional inconsistency.
    pub fn new(
        in_shape: Shape3,
        weights: BitTensor,
        thresholds: ThresholdsForLayer,
        geom: ConvGeom,
        pool: Option<PoolGeom>,
    ) -> Result<Self, NnError> {
        geom.validate(in_shape).map_err(|e| NnError::InvalidSpec {
            what: e.to_string(),
        })?;
        if weights.cols() != geom.dot_length(in_shape.channels) {
            return Err(NnError::InvalidSpec {
                what: format!(
                    "weight columns {} do not match K^2*C = {}",
                    weights.cols(),
                    geom.dot_length(in_shape.channels)
                ),
            });
        }
        if thresholds.num_channels() != weights.rows() {
            return Err(NnError::InvalidSpec {
                what: format!(
                    "thresholds cover {} channels, weights have {} rows",
                    thresholds.num_channels(),
                    weights.rows()
                ),
            });
        }
        Ok(Self {
            in_shape,
            weights,
            thresholds,
            geom,
            pool,
        })
    }

    /// Expected input feature-map shape.
    pub fn in_shape(&self) -> Shape3 {
        self.in_shape
    }

    /// Output shape after convolution and optional pooling.
    pub fn out_shape(&self) -> Shape3 {
        let conv = self.geom.output_shape(self.in_shape, self.weights.rows());
        match self.pool {
            Some(pool) => pool.output_shape(conv),
            None => conv,
        }
    }

    /// The packed binary weights.
    pub fn weights(&self) -> &BitTensor {
        &self.weights
    }

    /// The per-channel threshold sets.
    pub fn thresholds(&self) -> &ThresholdsForLayer {
        &self.thresholds
    }

    /// The convolution geometry.
    pub fn geom(&self) -> ConvGeom {
        self.geom
    }

    /// The fused pooling geometry, if any.
    pub fn pool(&self) -> Option<PoolGeom> {
        self.pool
    }

    /// Binary weight storage in bits.
    pub fn weight_bits(&self) -> u64 {
        (self.weights.rows() * self.weights.cols()) as u64
    }

    /// Dot-product operations per frame (paper accounting, conv only).
    pub fn ops(&self) -> u64 {
        let conv = self.geom.output_shape(self.in_shape, self.weights.rows());
        2 * self.weights.cols() as u64 * conv.spatial() as u64 * self.weights.rows() as u64
    }
}

/// Timing report of one accelerator invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct AccelReport {
    /// Compute cycles per layer, in execution order. For a batched
    /// invocation these are summed over every frame in the batch.
    pub layer_cycles: Vec<u64>,
    /// Cycles spent streaming weights between layer invocations. Weights
    /// are swapped once per layer per *invocation*, so a micro-batch
    /// amortizes this cost over [`AccelReport::batch`] frames.
    pub weight_swap_cycles: u64,
    /// Cycles spent reloading the bitstream after a configuration loss
    /// (0 unless a [`FaultKind::BitstreamLost`] preceded this invocation).
    pub reload_cycles: u64,
    /// Fabric clock the cycles refer to.
    pub clock_hz: u64,
    /// Frames processed by this invocation (1 for a single-frame run).
    pub batch: usize,
}

impl AccelReport {
    /// Total cycles including weight swaps and any bitstream reload.
    pub fn total_cycles(&self) -> u64 {
        self.layer_cycles.iter().sum::<u64>() + self.weight_swap_cycles + self.reload_cycles
    }

    /// Total wall-clock seconds.
    pub fn total_seconds(&self) -> f64 {
        self.total_cycles() as f64 / self.clock_hz as f64
    }

    /// Cycles per frame — the number a serving layer compares across batch
    /// sizes to see the weight-swap amortization.
    pub fn cycles_per_frame(&self) -> u64 {
        self.total_cycles() / self.batch.max(1) as u64
    }
}

/// The sequential, single-engine accelerator.
#[derive(Debug, Clone)]
pub struct QnnAccelerator {
    layers: Vec<QnnLayerParams>,
    /// The same stack prepared for the packed CPU fallback path.
    packed: Vec<PackedLayer>,
    /// Autotuned kernel choice per layer (shared via the process cache).
    plan: Arc<KernelPlan>,
    engine: ConvEngine,
    /// AXI weight-stream width in bits per cycle.
    axi_bits_per_cycle: u64,
    /// Fault-injection harness; `None` runs the fabric fault-free.
    injector: Option<FaultInjector>,
}

impl QnnAccelerator {
    /// Builds an accelerator over a hidden-layer stack.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidSpec`] if consecutive layer shapes do not
    /// chain or the stack is empty.
    pub fn new(layers: Vec<QnnLayerParams>, config: EngineConfig) -> Result<Self, NnError> {
        if layers.is_empty() {
            return Err(NnError::InvalidSpec {
                what: "accelerator needs at least one layer".to_owned(),
            });
        }
        for pair in layers.windows(2) {
            if pair[0].out_shape() != pair[1].in_shape() {
                return Err(NnError::InvalidSpec {
                    what: format!(
                        "layer output {} does not feed next layer input {}",
                        pair[0].out_shape(),
                        pair[1].in_shape()
                    ),
                });
            }
        }
        let packed: Vec<PackedLayer> = layers
            .iter()
            .enumerate()
            .map(|(i, layer)| {
                #[allow(clippy::cast_possible_truncation)]
                PackedLayer::new(
                    layer.in_shape(),
                    layer.weights().clone(),
                    layer.thresholds().clone(),
                    layer.geom(),
                    layer.pool(),
                    HIDDEN_ACT_BITS,
                )
                .with_trace_layer(i as u32)
            })
            .collect();
        let plan = tincy_kernels::plan_for(&packed, &TuneBudget::default());
        Ok(Self {
            layers,
            packed,
            plan,
            engine: ConvEngine::new(config)?,
            axi_bits_per_cycle: 128,
            injector: None,
        })
    }

    /// Attaches a fault-injection harness (builder style). The injector's
    /// counters are shared through its handle, so re-attaching a clone
    /// after a rebuild continues the same invocation stream.
    #[must_use]
    pub fn with_fault_injector(mut self, injector: FaultInjector) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Attaches or detaches the fault-injection harness in place.
    pub fn set_fault_injector(&mut self, injector: Option<FaultInjector>) {
        self.injector = injector;
    }

    /// The attached fault injector, if any.
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.injector.as_ref()
    }

    /// The offloaded layers.
    pub fn layers(&self) -> &[QnnLayerParams] {
        &self.layers
    }

    /// Expected input shape (first layer).
    pub fn input_shape(&self) -> Shape3 {
        self.layers[0].in_shape()
    }

    /// Produced output shape (last layer).
    pub fn output_shape(&self) -> Shape3 {
        self.layers
            .last()
            .expect("nonempty by construction")
            .out_shape()
    }

    /// AXI cycles to stream one layer's weights onto the fabric.
    fn layer_swap_cycles(&self, layer: &QnnLayerParams) -> u64 {
        layer.weight_bits().div_ceil(self.axi_bits_per_cycle)
    }

    /// Total weight-swap cycles charged per accelerator invocation:
    /// every layer's weights cross the AXI bus exactly once regardless
    /// of batch size. This is the fixed cost a micro-batch amortizes,
    /// and the per-invocation swap count the serving layer accounts
    /// when it swaps between hosted model variants.
    pub fn swap_cycles_per_invocation(&self) -> u64 {
        self.layers
            .iter()
            .map(|layer| self.layer_swap_cycles(layer))
            .sum()
    }

    /// Runs the whole hidden stack on one engine, layer by layer.
    ///
    /// With a fault injector attached, the invocation first draws its fault
    /// decision: transfer-class faults (DMA timeout, busy fabric, lost
    /// bitstream) abort before any compute; a corrupted result buffer is
    /// computed, corrupted on the simulated DMA return path, and *detected*
    /// by the checksum compare — injected faults never escape as silently
    /// wrong data. A successful invocation after a bitstream loss pays the
    /// reload penalty in its report.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] on a shape mismatch or an injected
    /// (retryable) accelerator fault.
    pub fn run(&self, input: &Tensor<u8>) -> Result<(Tensor<u8>, AccelReport), NnError> {
        let (mut outs, report) = self.run_batch(std::slice::from_ref(input))?;
        Ok((outs.pop().expect("batch of one yields one output"), report))
    }

    /// Runs a whole micro-batch through the hidden stack in **one**
    /// accelerator invocation: per layer, the engine streams the weights in
    /// once and then processes every frame of the batch before moving on —
    /// amortizing the weight-swap traffic that dominates small frames. One
    /// invocation also means one fault draw: a faulted batch fails as a
    /// unit, exactly like a faulted single-frame DMA transfer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidSpec`] for an empty batch, otherwise the
    /// same contract as [`QnnAccelerator::run`].
    pub fn run_batch(
        &self,
        inputs: &[Tensor<u8>],
    ) -> Result<(Vec<Tensor<u8>>, AccelReport), NnError> {
        if inputs.is_empty() {
            return Err(NnError::InvalidSpec {
                what: "accelerator micro-batch must not be empty".to_owned(),
            });
        }
        let fault = self.injector.as_ref().and_then(FaultInjector::next_fault);
        if let Some(
            kind @ (FaultKind::DmaTimeout | FaultKind::TransientBusy | FaultKind::BitstreamLost),
        ) = fault
        {
            return Err(kind.to_error());
        }
        let reload_cycles = self
            .injector
            .as_ref()
            .map_or(0, FaultInjector::take_reload_penalty);
        let mut fmaps: Vec<Tensor<u8>> = inputs.to_vec();
        let mut layer_cycles = Vec::with_capacity(self.layers.len());
        let mut swap = 0u64;
        #[allow(clippy::cast_possible_truncation)]
        let batch = inputs.len() as u32;
        for (index, layer) in self.layers.iter().enumerate() {
            #[allow(clippy::cast_possible_truncation)]
            let layer_ix = index as u32;
            // Weight swap: the engine streams this layer's weights in once
            // for the whole batch.
            let swap_cycles = self.layer_swap_cycles(layer);
            swap += swap_cycles;
            tincy_trace::span(static_label!("finn.weight_swap"))
                .layer(layer_ix)
                .cycles(swap_cycles)
                .emit();
            let mut cycles = 0u64;
            {
                let _span = tincy_trace::span(static_label!("finn.layer"))
                    .layer(layer_ix)
                    .batch(batch)
                    .start();
                for fmap in &mut fmaps {
                    let (out, layer_time) = self.engine.run_layer(layer, fmap)?;
                    cycles += layer_time;
                    *fmap = out;
                }
            }
            tincy_trace::span(static_label!("finn.layer_cycles"))
                .layer(layer_ix)
                .cycles(cycles)
                .emit();
            layer_cycles.push(cycles);
        }
        if fault == Some(FaultKind::CorruptResult) {
            let injector = self.injector.as_ref().expect("fault implies injector");
            let first = fmaps.first().expect("nonempty batch");
            let expected = result_checksum(first.as_slice());
            let mut wire = first.clone();
            injector.corrupt_in_place(wire.as_mut_slice());
            if result_checksum(wire.as_slice()) != expected {
                return Err(FaultKind::CorruptResult.to_error());
            }
        }
        let report = AccelReport {
            layer_cycles,
            weight_swap_cycles: swap,
            reload_cycles,
            clock_hz: self.engine.config().clock_hz,
            batch: inputs.len(),
        };
        Ok((fmaps, report))
    }

    /// The bit-exact software fallback path, served by the autotuned
    /// packed XNOR-popcount kernels. Identical results to
    /// [`QnnAccelerator::reference_run_naive`] (and therefore to the
    /// hardware path) at a fraction of the time — this is what degraded
    /// serving runs per frame.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] on a shape mismatch.
    pub fn reference_run(&self, input: &Tensor<u8>) -> Result<Tensor<u8>, NnError> {
        let mut fmap = input.clone();
        for (index, packed) in self.packed.iter().enumerate() {
            if fmap.shape() != packed.in_shape() {
                return Err(NnError::ShapeMismatch {
                    expected: packed.in_shape().to_string(),
                    actual: fmap.shape().to_string(),
                });
            }
            let entry = self.plan.entry(index);
            fmap = packed.forward(&fmap, entry.variant, entry.threads);
        }
        Ok(fmap)
    }

    /// Pure-software golden reference: naive signed dot products plus
    /// threshold activation, no packing, no folding. The hardware path and
    /// the packed fallback path must both match this **bit exactly**.
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] on a shape mismatch.
    pub fn reference_run_naive(&self, input: &Tensor<u8>) -> Result<Tensor<u8>, NnError> {
        let mut fmap = input.clone();
        for layer in &self.layers {
            fmap = reference_layer(layer, &fmap)?;
        }
        Ok(fmap)
    }

    /// Naive reference evaluation of a single layer (bench comparisons).
    ///
    /// # Errors
    ///
    /// Returns [`NnError`] on a shape mismatch or out-of-range index.
    pub fn reference_layer_naive(
        &self,
        index: usize,
        input: &Tensor<u8>,
    ) -> Result<Tensor<u8>, NnError> {
        let layer = self.layers.get(index).ok_or_else(|| NnError::InvalidSpec {
            what: format!("layer index {index} out of range"),
        })?;
        reference_layer(layer, input)
    }

    /// The packed fallback layers, aligned with [`QnnAccelerator::layers`].
    pub fn packed_layers(&self) -> &[PackedLayer] {
        &self.packed
    }

    /// The autotuned kernel plan serving the fallback path.
    pub fn kernel_plan(&self) -> &KernelPlan {
        &self.plan
    }

    /// Resource estimate for the actual single-engine design: the MVTU array
    /// plus a weight buffer sized for the *largest* layer.
    pub fn engine_resources(&self) -> ResourceEstimate {
        let config = self.engine.config();
        let max_bits = self
            .layers
            .iter()
            .map(QnnLayerParams::weight_bits)
            .max()
            .unwrap_or(0);
        ResourceEstimate::conv_engine(config.pe, config.simd, max_bits, 8)
    }

    /// Resource estimate for a hypothetical per-layer dataflow pipeline:
    /// one engine *per layer*, each holding its own weights. On the
    /// XCZU3EG "this option quickly fails on resource constraints"
    /// (§III-A) — see [`QnnAccelerator::dataflow_fits`].
    pub fn dataflow_resources(&self) -> ResourceEstimate {
        let config = self.engine.config();
        self.layers
            .iter()
            .map(|l| ResourceEstimate::conv_engine(config.pe, config.simd, l.weight_bits(), 8))
            .fold(ResourceEstimate::default(), |a, b| a + b)
    }

    /// Whether the dataflow pipeline would fit a device (it must not, for
    /// Tincy YOLO on the XCZU3EG).
    pub fn dataflow_fits(&self, device: &FpgaDevice) -> bool {
        device.fits(&self.dataflow_resources())
    }

    /// Total offloaded dot-product operations per frame.
    pub fn total_ops(&self) -> u64 {
        self.layers.iter().map(QnnLayerParams::ops).sum()
    }
}

/// Reference evaluation of one layer (shared with tests and the backend).
pub(crate) fn reference_layer(
    layer: &QnnLayerParams,
    input: &Tensor<u8>,
) -> Result<Tensor<u8>, NnError> {
    if input.shape() != layer.in_shape() {
        return Err(NnError::ShapeMismatch {
            expected: layer.in_shape().to_string(),
            actual: input.shape().to_string(),
        });
    }
    let geom = layer.geom();
    let conv_shape = geom.output_shape(layer.in_shape(), layer.weights().rows());
    let dot = BinaryDot::new(layer.weights().clone());
    let mut conv_out = Tensor::zeros(conv_shape);
    let mut footprint = vec![0u8; geom.dot_length(layer.in_shape().channels)];
    for oy in 0..conv_shape.height {
        for ox in 0..conv_shape.width {
            let mut i = 0;
            for c in 0..layer.in_shape().channels {
                for ky in 0..geom.kernel {
                    for kx in 0..geom.kernel {
                        let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
                        let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
                        footprint[i] = if iy < 0
                            || ix < 0
                            || iy as usize >= layer.in_shape().height
                            || ix as usize >= layer.in_shape().width
                        {
                            0
                        } else {
                            input.at(c, iy as usize, ix as usize)
                        };
                        i += 1;
                    }
                }
            }
            // The packed path exists only on the engine; here we stay naive.
            let _ = U3Tensor::from_values(&footprint);
            for ch in 0..conv_shape.channels {
                let acc = dot.dot_naive(ch, &footprint);
                *conv_out.at_mut(ch, oy, ox) = layer.thresholds().channel(ch).activate(acc);
            }
        }
    }
    Ok(match layer.pool() {
        Some(pool) => crate::engine::max_pool_levels(&conv_out, pool),
        None => conv_out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tincy_quant::ThresholdSet;

    pub(crate) fn random_layer(
        rng: &mut StdRng,
        in_shape: Shape3,
        out_c: usize,
        stride: usize,
        pool: Option<PoolGeom>,
    ) -> QnnLayerParams {
        let geom = ConvGeom::same(3, stride);
        let cols = geom.dot_length(in_shape.channels);
        let signs: Vec<i8> = (0..out_c * cols)
            .map(|_| if rng.gen() { 1 } else { -1 })
            .collect();
        let weights = BitTensor::from_signs(out_c, cols, &signs).unwrap();
        let thresholds = ThresholdsForLayer::new(
            (0..out_c)
                .map(|_| {
                    let base = rng.gen_range(-15i32..5);
                    let step = rng.gen_range(1i32..5);
                    ThresholdSet::new((0..7).map(|k| base + k * step).collect()).unwrap()
                })
                .collect(),
        )
        .unwrap();
        QnnLayerParams::new(in_shape, weights, thresholds, geom, pool).unwrap()
    }

    fn two_layer_accel(rng: &mut StdRng) -> QnnAccelerator {
        let l1 = random_layer(rng, Shape3::new(4, 8, 8), 8, 1, Some(PoolGeom::new(2, 2)));
        let l2 = random_layer(rng, l1.out_shape(), 6, 1, None);
        QnnAccelerator::new(vec![l1, l2], EngineConfig::default()).unwrap()
    }

    #[test]
    fn hardware_path_is_bit_exact_with_reference() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..3 {
            let accel = two_layer_accel(&mut rng);
            let input = Tensor::from_fn(accel.input_shape(), |_, _, _| rng.gen_range(0..8) as u8);
            let (hw, _) = accel.run(&input).unwrap();
            let sw = accel.reference_run(&input).unwrap();
            assert_eq!(
                hw, sw,
                "MVTU path must match the naive integer reference bit-exactly"
            );
        }
    }

    #[test]
    fn packed_fallback_is_bit_exact_with_naive_reference() {
        let mut rng = StdRng::seed_from_u64(109);
        for _ in 0..3 {
            let accel = two_layer_accel(&mut rng);
            let input = Tensor::from_fn(accel.input_shape(), |_, _, _| rng.gen_range(0..8) as u8);
            assert_eq!(
                accel.reference_run(&input).unwrap(),
                accel.reference_run_naive(&input).unwrap(),
                "packed kernels must match the naive integer reference bit-exactly"
            );
        }
        let accel = two_layer_accel(&mut rng);
        assert_eq!(accel.kernel_plan().entries().len(), accel.layers().len());
        assert_eq!(accel.packed_layers().len(), accel.layers().len());
    }

    #[test]
    fn layer_chaining_validated() {
        let mut rng = StdRng::seed_from_u64(100);
        let l1 = random_layer(&mut rng, Shape3::new(4, 8, 8), 8, 1, None);
        let l2 = random_layer(&mut rng, Shape3::new(9, 9, 9), 6, 1, None);
        assert!(QnnAccelerator::new(vec![l1, l2], EngineConfig::default()).is_err());
        assert!(QnnAccelerator::new(vec![], EngineConfig::default()).is_err());
    }

    #[test]
    fn report_accumulates_cycles_and_swaps() {
        let mut rng = StdRng::seed_from_u64(101);
        let accel = two_layer_accel(&mut rng);
        let input = Tensor::from_fn(accel.input_shape(), |_, _, _| rng.gen_range(0..8) as u8);
        let (_, report) = accel.run(&input).unwrap();
        assert_eq!(report.layer_cycles.len(), 2);
        assert!(report.weight_swap_cycles > 0);
        assert!(report.total_seconds() > 0.0);
        assert_eq!(
            report.total_cycles(),
            report.layer_cycles.iter().sum::<u64>() + report.weight_swap_cycles
        );
    }

    #[test]
    fn swap_cycles_per_invocation_matches_report_regardless_of_batch() {
        let mut rng = StdRng::seed_from_u64(102);
        let accel = two_layer_accel(&mut rng);
        let fixed = accel.swap_cycles_per_invocation();
        assert!(fixed > 0);
        for batch in [1usize, 4] {
            let inputs: Vec<Tensor<u8>> = (0..batch)
                .map(|_| Tensor::from_fn(accel.input_shape(), |_, _, _| rng.gen_range(0..8) as u8))
                .collect();
            let (_, report) = accel.run_batch(&inputs).unwrap();
            assert_eq!(
                report.weight_swap_cycles, fixed,
                "swap traffic is per-invocation, not per-frame"
            );
        }
    }

    #[test]
    fn injected_outage_fails_then_recovers_bit_exactly() {
        use crate::fault::{FaultInjector, FaultPlan};
        let mut rng = StdRng::seed_from_u64(104);
        let accel = two_layer_accel(&mut rng)
            .with_fault_injector(FaultInjector::new(FaultPlan::outage(0, 2)));
        let input = Tensor::from_fn(accel.input_shape(), |_, _, _| rng.gen_range(0..8) as u8);
        for _ in 0..2 {
            let err = accel.run(&input).unwrap_err();
            assert!(
                err.is_retryable(),
                "injected faults must be retryable: {err}"
            );
        }
        let (out, _) = accel.run(&input).unwrap();
        assert_eq!(out, accel.reference_run(&input).unwrap());
        let stats = accel.fault_injector().unwrap().stats();
        assert_eq!(
            (stats.invocations, stats.faults, stats.dma_timeouts),
            (3, 2, 2)
        );
    }

    #[test]
    fn bitstream_loss_charges_reload_on_next_success() {
        use crate::fault::{FaultInjector, FaultKind, FaultPlan, FaultWindow};
        let mut rng = StdRng::seed_from_u64(105);
        let plan = FaultPlan {
            outage: Some(FaultWindow {
                start: 0,
                length: 1,
                kind: FaultKind::BitstreamLost,
            }),
            reload_penalty_cycles: 9_999,
            ..FaultPlan::default()
        };
        let accel = two_layer_accel(&mut rng).with_fault_injector(FaultInjector::new(plan));
        let input = Tensor::from_fn(accel.input_shape(), |_, _, _| rng.gen_range(0..8) as u8);
        assert!(accel.run(&input).is_err());
        let (_, report) = accel.run(&input).unwrap();
        assert_eq!(report.reload_cycles, 9_999);
        assert_eq!(
            report.total_cycles(),
            report.layer_cycles.iter().sum::<u64>() + report.weight_swap_cycles + 9_999
        );
        let (_, report) = accel.run(&input).unwrap();
        assert_eq!(report.reload_cycles, 0, "reload penalty paid exactly once");
    }

    #[test]
    fn corrupt_result_is_detected_never_escapes() {
        use crate::fault::{FaultInjector, FaultKind, FaultPlan, FaultWindow};
        let mut rng = StdRng::seed_from_u64(106);
        let plan = FaultPlan::default().with_outage(FaultWindow {
            start: 0,
            length: 1,
            kind: FaultKind::CorruptResult,
        });
        let accel = two_layer_accel(&mut rng).with_fault_injector(FaultInjector::new(plan));
        let input = Tensor::from_fn(accel.input_shape(), |_, _, _| rng.gen_range(0..8) as u8);
        let err = accel.run(&input).unwrap_err();
        assert!(err.is_retryable());
        assert!(
            err.to_string().contains("checksum"),
            "corruption is CRC-detected: {err}"
        );
        let (out, _) = accel.run(&input).unwrap();
        assert_eq!(
            out,
            accel.reference_run(&input).unwrap(),
            "clean retry is bit-exact"
        );
    }

    #[test]
    fn batched_run_is_bit_exact_and_amortizes_weight_swaps() {
        let mut rng = StdRng::seed_from_u64(107);
        let accel = two_layer_accel(&mut rng);
        let inputs: Vec<Tensor<u8>> = (0..4)
            .map(|_| Tensor::from_fn(accel.input_shape(), |_, _, _| rng.gen_range(0..8) as u8))
            .collect();

        let (batched, report) = accel.run_batch(&inputs).unwrap();
        assert_eq!(report.batch, 4);
        let mut single_swap = 0;
        for (input, out) in inputs.iter().zip(&batched) {
            let (one, single_report) = accel.run(input).unwrap();
            assert_eq!(&one, out, "batched output matches single-frame run");
            single_swap = single_report.weight_swap_cycles;
        }
        // The batch streams each layer's weights once, not once per frame.
        assert_eq!(report.weight_swap_cycles, single_swap);
        let single_cpf = accel.run(&inputs[0]).unwrap().1.cycles_per_frame();
        assert!(
            report.cycles_per_frame() < single_cpf,
            "batching must amortize: {} !< {}",
            report.cycles_per_frame(),
            single_cpf
        );
        assert!(accel.run_batch(&[]).is_err());
    }

    #[test]
    fn batched_run_draws_one_fault_per_invocation() {
        use crate::fault::{FaultInjector, FaultPlan};
        let mut rng = StdRng::seed_from_u64(108);
        let accel = two_layer_accel(&mut rng)
            .with_fault_injector(FaultInjector::new(FaultPlan::outage(0, 1)));
        let inputs: Vec<Tensor<u8>> = (0..3)
            .map(|_| Tensor::from_fn(accel.input_shape(), |_, _, _| rng.gen_range(0..8) as u8))
            .collect();
        assert!(accel.run_batch(&inputs).is_err(), "whole batch faults once");
        let (outs, _) = accel.run_batch(&inputs).unwrap();
        assert_eq!(outs.len(), 3);
        let stats = accel.fault_injector().unwrap().stats();
        assert_eq!((stats.invocations, stats.faults), (2, 1));
    }

    #[test]
    fn dataflow_needs_more_resources_than_single_engine() {
        let mut rng = StdRng::seed_from_u64(102);
        let accel = two_layer_accel(&mut rng);
        let single = accel.engine_resources();
        let dataflow = accel.dataflow_resources();
        assert!(dataflow.luts > single.luts);
        assert!(dataflow.bram36 >= single.bram36);
    }

    #[test]
    fn ops_accounting_matches_formula() {
        let mut rng = StdRng::seed_from_u64(103);
        let layer = random_layer(&mut rng, Shape3::new(16, 13, 13), 32, 1, None);
        // 2 * (9*16) * 169 * 32
        assert_eq!(layer.ops(), 2 * 144 * 169 * 32);
    }
}
