//! Pascal-VOC-style mean average precision (Table IV's metric).

use crate::{Detection, GroundTruth};

/// How average precision is integrated over the PR curve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApMethod {
    /// The classic VOC 11-point interpolation (used by the VOC 2007 protocol
    /// and by Darknet's published mAP numbers).
    Voc11Point,
    /// Continuous interpolation (area under the interpolated PR curve).
    Continuous,
}

/// One point of a precision/recall curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrPoint {
    /// Recall at this operating point.
    pub recall: f32,
    /// Precision at this operating point.
    pub precision: f32,
}

/// Result of a full mAP evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalSummary {
    /// Mean average precision over classes with ground truth.
    pub map: f32,
    /// Per-class average precision (`NaN`-free; classes without ground truth
    /// are reported as `None`).
    pub per_class_ap: Vec<Option<f32>>,
}

impl EvalSummary {
    /// mAP as a percentage, the unit used in Table IV.
    pub fn map_percent(&self) -> f32 {
        self.map * 100.0
    }
}

/// Computes average precision for one class.
///
/// `detections` and `ground_truth` carry `(image_id, ..)` pairs so that
/// matches are constrained to the same image. Every ground-truth box may be
/// matched at most once (VOC protocol); additional overlapping detections
/// count as false positives.
///
/// Returns the AP and the raw PR curve.
pub fn average_precision(
    detections: &[(usize, Detection)],
    ground_truth: &[(usize, GroundTruth)],
    iou_threshold: f32,
    method: ApMethod,
) -> (f32, Vec<PrPoint>) {
    if ground_truth.is_empty() {
        return (0.0, Vec::new());
    }
    let mut dets: Vec<&(usize, Detection)> = detections.iter().collect();
    dets.sort_by(|a, b| {
        b.1.score
            .partial_cmp(&a.1.score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut matched = vec![false; ground_truth.len()];
    let mut curve = Vec::with_capacity(dets.len());
    let mut tp = 0usize;
    let mut fp = 0usize;
    for (img, det) in dets {
        let mut best: Option<(usize, f32)> = None;
        for (gi, (gimg, gt)) in ground_truth.iter().enumerate() {
            if gimg != img || matched[gi] {
                continue;
            }
            let iou = det.bbox.iou(&gt.bbox);
            if iou >= iou_threshold && best.is_none_or(|(_, b)| iou > b) {
                best = Some((gi, iou));
            }
        }
        match best {
            Some((gi, _)) => {
                matched[gi] = true;
                tp += 1;
            }
            None => fp += 1,
        }
        curve.push(PrPoint {
            recall: tp as f32 / ground_truth.len() as f32,
            precision: tp as f32 / (tp + fp) as f32,
        });
    }
    (integrate(&curve, method), curve)
}

fn integrate(curve: &[PrPoint], method: ApMethod) -> f32 {
    if curve.is_empty() {
        return 0.0;
    }
    match method {
        ApMethod::Voc11Point => {
            let mut ap = 0.0;
            for i in 0..=10 {
                let r = i as f32 / 10.0;
                let p = curve
                    .iter()
                    .filter(|pt| pt.recall >= r - 1e-7)
                    .map(|pt| pt.precision)
                    .fold(0.0f32, f32::max);
                ap += p / 11.0;
            }
            ap
        }
        ApMethod::Continuous => {
            // Monotone envelope, then rectangle integration over recall.
            let mut pts: Vec<PrPoint> = curve.to_vec();
            let mut max_p = 0.0f32;
            for pt in pts.iter_mut().rev() {
                max_p = max_p.max(pt.precision);
                pt.precision = max_p;
            }
            let mut ap = 0.0;
            let mut prev_recall = 0.0;
            for pt in &pts {
                ap += (pt.recall - prev_recall).max(0.0) * pt.precision;
                prev_recall = pt.recall;
            }
            ap
        }
    }
}

/// Computes mAP over a dataset.
///
/// `detections_per_image[i]` and `truths_per_image[i]` describe image `i`.
/// Classes that never appear in the ground truth are excluded from the mean
/// (reported as `None` in [`EvalSummary::per_class_ap`]).
///
/// # Panics
///
/// Panics if the two slices have different lengths.
pub fn mean_average_precision(
    detections_per_image: &[Vec<Detection>],
    truths_per_image: &[Vec<GroundTruth>],
    num_classes: usize,
    iou_threshold: f32,
    method: ApMethod,
) -> EvalSummary {
    assert_eq!(
        detections_per_image.len(),
        truths_per_image.len(),
        "detections and ground truth must cover the same images"
    );
    let mut per_class_ap = Vec::with_capacity(num_classes);
    let mut sum = 0.0;
    let mut counted = 0usize;
    for class in 0..num_classes {
        let dets: Vec<(usize, Detection)> = detections_per_image
            .iter()
            .enumerate()
            .flat_map(|(i, v)| v.iter().filter(|d| d.class == class).map(move |&d| (i, d)))
            .collect();
        let gts: Vec<(usize, GroundTruth)> = truths_per_image
            .iter()
            .enumerate()
            .flat_map(|(i, v)| v.iter().filter(|g| g.class == class).map(move |&g| (i, g)))
            .collect();
        if gts.is_empty() {
            per_class_ap.push(None);
            continue;
        }
        let (ap, _) = average_precision(&dets, &gts, iou_threshold, method);
        per_class_ap.push(Some(ap));
        sum += ap;
        counted += 1;
    }
    EvalSummary {
        map: if counted == 0 {
            0.0
        } else {
            sum / counted as f32
        },
        per_class_ap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BBox;

    fn gt(x: f32, class: usize) -> GroundTruth {
        GroundTruth::new(BBox::new(x, 0.5, 0.2, 0.2), class)
    }

    fn det(x: f32, class: usize, score: f32) -> Detection {
        Detection::new(BBox::new(x, 0.5, 0.2, 0.2), class, score)
    }

    #[test]
    fn perfect_detections_give_ap_one() {
        let gts = vec![(0, gt(0.3, 0)), (1, gt(0.7, 0))];
        let dets = vec![(0, det(0.3, 0, 0.9)), (1, det(0.7, 0, 0.8))];
        let (ap, _) = average_precision(&dets, &gts, 0.5, ApMethod::Voc11Point);
        assert!((ap - 1.0).abs() < 1e-6);
        let (ap, _) = average_precision(&dets, &gts, 0.5, ApMethod::Continuous);
        assert!((ap - 1.0).abs() < 1e-6);
    }

    #[test]
    fn no_detections_give_ap_zero() {
        let gts = vec![(0, gt(0.3, 0))];
        let (ap, curve) = average_precision(&[], &gts, 0.5, ApMethod::Voc11Point);
        assert_eq!(ap, 0.0);
        assert!(curve.is_empty());
    }

    #[test]
    fn duplicate_detection_counts_as_false_positive() {
        // One GT, two matching detections: second is FP (VOC protocol).
        let gts = vec![(0, gt(0.3, 0))];
        let dets = vec![(0, det(0.3, 0, 0.9)), (0, det(0.31, 0, 0.8))];
        let (_, curve) = average_precision(&dets, &gts, 0.5, ApMethod::Voc11Point);
        assert_eq!(curve.len(), 2);
        assert!((curve[1].precision - 0.5).abs() < 1e-6);
        assert!((curve[1].recall - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cross_image_matches_forbidden() {
        let gts = vec![(0, gt(0.3, 0))];
        let dets = vec![(1, det(0.3, 0, 0.9))]; // right place, wrong image
        let (ap, _) = average_precision(&dets, &gts, 0.5, ApMethod::Voc11Point);
        assert_eq!(ap, 0.0);
    }

    #[test]
    fn eleven_point_ap_half_recall_case() {
        // 2 GT, 1 perfect detection: recall tops out at 0.5 with
        // precision 1.0 => 11-point AP = 6/11.
        let gts = vec![(0, gt(0.2, 0)), (0, gt(0.8, 0))];
        let dets = vec![(0, det(0.2, 0, 0.9))];
        let (ap, _) = average_precision(&dets, &gts, 0.5, ApMethod::Voc11Point);
        assert!((ap - 6.0 / 11.0).abs() < 1e-6);
    }

    #[test]
    fn map_averages_only_present_classes() {
        let truths = vec![vec![gt(0.3, 0), gt(0.7, 2)]];
        let dets = vec![vec![det(0.3, 0, 0.9)]]; // class 2 missed entirely
        let summary = mean_average_precision(&dets, &truths, 3, 0.5, ApMethod::Voc11Point);
        assert_eq!(summary.per_class_ap.len(), 3);
        assert!(summary.per_class_ap[0].unwrap() > 0.99);
        assert!(summary.per_class_ap[1].is_none());
        assert_eq!(summary.per_class_ap[2].unwrap(), 0.0);
        assert!((summary.map - 0.5).abs() < 0.01);
        assert!((summary.map_percent() - 50.0).abs() < 1.0);
    }

    #[test]
    fn higher_iou_threshold_is_stricter() {
        let gts = vec![(0, gt(0.30, 0))];
        let dets = vec![(0, det(0.35, 0, 0.9))]; // moderate overlap
        let (lenient, _) = average_precision(&dets, &gts, 0.3, ApMethod::Voc11Point);
        let (strict, _) = average_precision(&dets, &gts, 0.9, ApMethod::Voc11Point);
        assert!(lenient > strict);
    }
}
