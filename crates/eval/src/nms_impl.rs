use crate::Detection;

/// Greedy per-class non-maximum suppression.
///
/// Detections are processed in descending score order; a detection is kept
/// unless it overlaps an already-kept detection *of the same class* with
/// IoU above `iou_threshold`. The returned list is sorted by descending
/// score.
///
/// # Example
///
/// ```
/// use tincy_eval::{nms, BBox, Detection};
///
/// let dets = vec![
///     Detection::new(BBox::new(0.5, 0.5, 0.2, 0.2), 0, 0.9),
///     Detection::new(BBox::new(0.51, 0.5, 0.2, 0.2), 0, 0.8), // duplicate
///     Detection::new(BBox::new(0.2, 0.2, 0.1, 0.1), 0, 0.7),
/// ];
/// let kept = nms(dets, 0.5);
/// assert_eq!(kept.len(), 2);
/// ```
pub fn nms(mut detections: Vec<Detection>, iou_threshold: f32) -> Vec<Detection> {
    detections.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut kept: Vec<Detection> = Vec::with_capacity(detections.len());
    for det in detections {
        let suppressed = kept
            .iter()
            .any(|k| k.class == det.class && k.bbox.iou(&det.bbox) > iou_threshold);
        if !suppressed {
            kept.push(det);
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BBox;

    fn det(x: f32, class: usize, score: f32) -> Detection {
        Detection::new(BBox::new(x, 0.5, 0.2, 0.2), class, score)
    }

    #[test]
    fn suppresses_lower_scored_duplicates() {
        let kept = nms(vec![det(0.50, 0, 0.6), det(0.51, 0, 0.9)], 0.5);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].score, 0.9);
    }

    #[test]
    fn different_classes_do_not_suppress_each_other() {
        let kept = nms(vec![det(0.5, 0, 0.9), det(0.5, 1, 0.8)], 0.5);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn distant_boxes_survive() {
        let kept = nms(vec![det(0.2, 0, 0.9), det(0.8, 0, 0.8)], 0.5);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn output_sorted_by_score() {
        let kept = nms(
            vec![det(0.2, 0, 0.3), det(0.8, 0, 0.9), det(0.5, 1, 0.6)],
            0.5,
        );
        let scores: Vec<f32> = kept.iter().map(|d| d.score).collect();
        assert_eq!(scores, vec![0.9, 0.6, 0.3]);
    }

    #[test]
    fn threshold_one_keeps_everything_overlapping() {
        // IoU can never exceed 1, so threshold 1.0 disables suppression.
        let kept = nms(vec![det(0.5, 0, 0.9), det(0.5, 0, 0.8)], 1.0);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn empty_input() {
        assert!(nms(vec![], 0.5).is_empty());
    }
}
