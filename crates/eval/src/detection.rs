use crate::BBox;

/// A scored class prediction with localization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Detection {
    /// Predicted bounding box.
    pub bbox: BBox,
    /// Predicted class index.
    pub class: usize,
    /// Confidence score in `0.0..=1.0` (objectness × class probability for
    /// YOLO-style heads).
    pub score: f32,
}

impl Detection {
    /// Creates a detection.
    pub const fn new(bbox: BBox, class: usize, score: f32) -> Self {
        Self { bbox, class, score }
    }
}

/// A ground-truth object annotation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroundTruth {
    /// Annotated bounding box.
    pub bbox: BBox,
    /// Class index.
    pub class: usize,
}

impl GroundTruth {
    /// Creates a ground-truth annotation.
    pub const fn new(bbox: BBox, class: usize) -> Self {
        Self { bbox, class }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction() {
        let d = Detection::new(BBox::new(0.5, 0.5, 0.1, 0.1), 3, 0.9);
        assert_eq!(d.class, 3);
        let g = GroundTruth::new(d.bbox, 3);
        assert!((g.bbox.iou(&d.bbox) - 1.0).abs() < 1e-6);
    }
}
