//! Detection evaluation: bounding boxes, IoU, non-maximum suppression and
//! Pascal-VOC-style mean average precision.
//!
//! The paper evaluates its Tiny YOLO variants with Pascal VOC mAP
//! (Table IV). This crate implements the metric pipeline end to end so that
//! the accuracy study can be reproduced on the synthetic detection task:
//!
//! * [`BBox`] — center-format boxes with IoU,
//! * [`Detection`] / [`GroundTruth`] — scored predictions and labels,
//! * [`nms`] — per-class greedy non-maximum suppression,
//! * [`average_precision`] / [`mean_average_precision`] — the VOC metric
//!   (both 11-point interpolated and continuous variants).

mod bbox;
mod detection;
mod map;
mod nms_impl;

pub use bbox::BBox;
pub use detection::{Detection, GroundTruth};
pub use map::{average_precision, mean_average_precision, ApMethod, EvalSummary, PrPoint};
pub use nms_impl::nms;
