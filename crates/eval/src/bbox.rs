/// An axis-aligned bounding box in center format, in relative image
/// coordinates (`0.0..=1.0` for boxes inside the image).
///
/// # Example
///
/// ```
/// use tincy_eval::BBox;
///
/// let a = BBox::new(0.5, 0.5, 0.4, 0.4);
/// assert!((a.iou(&a) - 1.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BBox {
    /// Center x.
    pub x: f32,
    /// Center y.
    pub y: f32,
    /// Width.
    pub w: f32,
    /// Height.
    pub h: f32,
}

impl BBox {
    /// Creates a box from center coordinates and extents.
    pub const fn new(x: f32, y: f32, w: f32, h: f32) -> Self {
        Self { x, y, w, h }
    }

    /// Creates a box from corner coordinates.
    pub fn from_corners(x0: f32, y0: f32, x1: f32, y1: f32) -> Self {
        Self {
            x: (x0 + x1) / 2.0,
            y: (y0 + y1) / 2.0,
            w: x1 - x0,
            h: y1 - y0,
        }
    }

    /// Left edge.
    pub fn left(&self) -> f32 {
        self.x - self.w / 2.0
    }

    /// Right edge.
    pub fn right(&self) -> f32 {
        self.x + self.w / 2.0
    }

    /// Top edge.
    pub fn top(&self) -> f32 {
        self.y - self.h / 2.0
    }

    /// Bottom edge.
    pub fn bottom(&self) -> f32 {
        self.y + self.h / 2.0
    }

    /// Box area (zero for degenerate boxes).
    pub fn area(&self) -> f32 {
        (self.w.max(0.0)) * (self.h.max(0.0))
    }

    /// Intersection area with another box.
    ///
    /// Clamped to `min(self.area(), other.area())` so that floating-point
    /// rounding can never report an intersection exceeding a member box
    /// (which would drive IoU above 1).
    pub fn intersection(&self, other: &BBox) -> f32 {
        let iw = (self.right().min(other.right()) - self.left().max(other.left())).max(0.0);
        let ih = (self.bottom().min(other.bottom()) - self.top().max(other.top())).max(0.0);
        (iw * ih).min(self.area()).min(other.area())
    }

    /// Intersection over union with another box; zero when both are
    /// degenerate.
    pub fn iou(&self, other: &BBox) -> f32 {
        let inter = self.intersection(other);
        let union = self.area() + other.area() - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_boxes_have_iou_one() {
        let b = BBox::new(0.3, 0.4, 0.2, 0.1);
        assert!((b.iou(&b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn disjoint_boxes_have_iou_zero() {
        let a = BBox::new(0.2, 0.2, 0.2, 0.2);
        let b = BBox::new(0.8, 0.8, 0.2, 0.2);
        assert_eq!(a.iou(&b), 0.0);
    }

    #[test]
    fn half_overlap() {
        // Two unit squares sharing half their area: IoU = 1/3.
        let a = BBox::from_corners(0.0, 0.0, 1.0, 1.0);
        let b = BBox::from_corners(0.5, 0.0, 1.5, 1.0);
        assert!((a.iou(&b) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn containment() {
        let outer = BBox::from_corners(0.0, 0.0, 1.0, 1.0);
        let inner = BBox::from_corners(0.25, 0.25, 0.75, 0.75);
        assert!((outer.iou(&inner) - 0.25).abs() < 1e-6);
        assert_eq!(outer.intersection(&inner), inner.area());
    }

    #[test]
    fn iou_is_symmetric() {
        let a = BBox::new(0.3, 0.3, 0.4, 0.5);
        let b = BBox::new(0.5, 0.4, 0.3, 0.3);
        assert!((a.iou(&b) - b.iou(&a)).abs() < 1e-7);
    }

    #[test]
    fn degenerate_boxes() {
        let zero = BBox::new(0.5, 0.5, 0.0, 0.0);
        assert_eq!(zero.area(), 0.0);
        assert_eq!(zero.iou(&zero), 0.0);
        let neg = BBox::new(0.5, 0.5, -0.1, 0.2);
        assert_eq!(neg.area(), 0.0);
    }

    #[test]
    fn corner_round_trip() {
        let b = BBox::from_corners(0.1, 0.2, 0.5, 0.8);
        assert!((b.left() - 0.1).abs() < 1e-6);
        assert!((b.top() - 0.2).abs() < 1e-6);
        assert!((b.right() - 0.5).abs() < 1e-6);
        assert!((b.bottom() - 0.8).abs() < 1e-6);
    }
}
