//! Property-based tests for the detection metric pipeline.

use proptest::prelude::*;
use tincy_eval::{
    average_precision, mean_average_precision, nms, ApMethod, BBox, Detection, GroundTruth,
};

fn bbox() -> impl Strategy<Value = BBox> {
    (0.1f32..0.9, 0.1f32..0.9, 0.05f32..0.4, 0.05f32..0.4)
        .prop_map(|(x, y, w, h)| BBox::new(x, y, w, h))
}

fn detection() -> impl Strategy<Value = Detection> {
    (bbox(), 0usize..4, 0.0f32..1.0).prop_map(|(b, c, s)| Detection::new(b, c, s))
}

proptest! {
    #[test]
    fn iou_is_bounded_and_symmetric(a in bbox(), b in bbox()) {
        let ab = a.iou(&b);
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert!((ab - b.iou(&a)).abs() < 1e-6);
        // Self-IoU: corner recomputation rounds in f32, so demand 0.999+
        // rather than exact unity.
        prop_assert!(a.iou(&a) > 0.999);
    }

    #[test]
    fn nms_output_invariants(
        dets in proptest::collection::vec(detection(), 0..30),
        threshold in 0.1f32..0.9
    ) {
        let kept = nms(dets.clone(), threshold);
        // No frame invented, none duplicated beyond the input multiset.
        prop_assert!(kept.len() <= dets.len());
        // Score sorted.
        for pair in kept.windows(2) {
            prop_assert!(pair[0].score >= pair[1].score);
        }
        // No same-class surviving pair overlaps beyond the threshold.
        for (i, a) in kept.iter().enumerate() {
            for b in &kept[i + 1..] {
                if a.class == b.class {
                    prop_assert!(
                        a.bbox.iou(&b.bbox) <= threshold + 1e-6,
                        "surviving pair overlaps: {} > {threshold}",
                        a.bbox.iou(&b.bbox)
                    );
                }
            }
        }
        // The top-scored input detection always survives.
        if let Some(best) = dets.iter().max_by(|a, b| a.score.total_cmp(&b.score)) {
            prop_assert!(kept.iter().any(|k| (k.score - best.score).abs() < 1e-9));
        }
    }

    #[test]
    fn ap_is_bounded(
        truths in proptest::collection::vec((0usize..5, bbox()), 1..10),
        dets in proptest::collection::vec((0usize..5, detection()), 0..20)
    ) {
        let gts: Vec<(usize, GroundTruth)> =
            truths.iter().map(|&(img, b)| (img, GroundTruth::new(b, 0))).collect();
        let ds: Vec<(usize, Detection)> = dets
            .iter()
            .map(|&(img, d)| (img, Detection::new(d.bbox, 0, d.score)))
            .collect();
        for method in [ApMethod::Voc11Point, ApMethod::Continuous] {
            let (ap, curve) = average_precision(&ds, &gts, 0.5, method);
            prop_assert!((0.0..=1.0 + 1e-6).contains(&ap), "{method:?}: ap {ap}");
            for pt in &curve {
                prop_assert!((0.0..=1.0 + 1e-6).contains(&pt.recall));
                prop_assert!((0.0..=1.0 + 1e-6).contains(&pt.precision));
            }
        }
    }

    #[test]
    fn perfect_detector_always_scores_one(
        truths in proptest::collection::vec(bbox(), 1..8),
        classes in proptest::collection::vec(0usize..3, 8)
    ) {
        // Echoing the ground truth as detections gives mAP 1 over the
        // classes present.
        let gt_per_image: Vec<Vec<GroundTruth>> = truths
            .iter()
            .zip(&classes)
            .map(|(b, &c)| vec![GroundTruth::new(*b, c)])
            .collect();
        let det_per_image: Vec<Vec<Detection>> = truths
            .iter()
            .zip(&classes)
            .map(|(b, &c)| vec![Detection::new(*b, c, 0.9)])
            .collect();
        let summary =
            mean_average_precision(&det_per_image, &gt_per_image, 3, 0.5, ApMethod::Voc11Point);
        prop_assert!((summary.map - 1.0).abs() < 1e-5, "map {}", summary.map);
    }
}
