//! Property-based tests: every packed kernel variant is bit-exact with
//! the naive signed reference over randomized layer configurations and
//! thread counts, across the precision profiles the fallback path serves
//! (W1A1, W1A3 binarized-weight layers and W8A8 quantized GEMM), and the
//! autotuner is deterministic under a fixed budget.

use proptest::prelude::*;
use tincy_kernels::{autotune, gemm_q8, gemm_q8_reference, PackedLayer, TuneBudget, Variant};
use tincy_quant::{ThresholdSet, ThresholdsForLayer};
use tincy_tensor::{BitTensor, ConvGeom, PoolGeom, Shape3, Tensor};

#[derive(Debug, Clone)]
struct LayerCase {
    in_shape: Shape3,
    out_channels: usize,
    stride: usize,
    pool: Option<PoolGeom>,
    act_bits: usize,
    threads: usize,
    weight_seed: u64,
    input_seed: u64,
}

fn layer_case() -> impl Strategy<Value = LayerCase> {
    (
        1usize..4,
        4usize..9,
        1usize..7,
        1usize..3,
        proptest::option::of((1usize..3).prop_map(|s| PoolGeom::new(2, s))),
        // W1A1 and W1A3 activation profiles; 2-bit rides along since the
        // packing is per-plane.
        1usize..4,
        1usize..5,
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(
            |(c, hw, oc, stride, pool, act_bits, threads, ws, is)| LayerCase {
                in_shape: Shape3::new(c, hw, hw),
                out_channels: oc,
                stride,
                pool,
                act_bits,
                threads,
                weight_seed: ws,
                input_seed: is,
            },
        )
}

fn lcg(seed: u64) -> impl FnMut() -> u64 {
    let mut state = seed | 1;
    move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    }
}

fn build_layer(case: &LayerCase) -> PackedLayer {
    let geom = ConvGeom::same(3, case.stride);
    let cols = geom.dot_length(case.in_shape.channels);
    let mut rng = lcg(case.weight_seed);
    let signs: Vec<i8> = (0..case.out_channels * cols)
        .map(|_| if rng() & 1 == 0 { 1 } else { -1 })
        .collect();
    let weights = BitTensor::from_signs(case.out_channels, cols, &signs).expect("dims");
    let levels = (1usize << case.act_bits) - 1;
    let thresholds = ThresholdsForLayer::new(
        (0..case.out_channels)
            .map(|_| {
                let base = (rng() % 40) as i32 - 25;
                let step = (rng() % 6) as i32 + 1;
                let taus: Vec<i32> = (0..levels as i32).map(|k| base + k * step).collect();
                let ascending = rng() & 1 == 0;
                ThresholdSet::with_direction(taus, ascending).expect("monotone")
            })
            .collect(),
    )
    .expect("uniform");
    PackedLayer::new(
        case.in_shape,
        weights,
        thresholds,
        geom,
        case.pool,
        case.act_bits,
    )
}

fn build_input(case: &LayerCase) -> Tensor<u8> {
    let mut rng = lcg(case.input_seed);
    let ceiling = 1u64 << case.act_bits;
    Tensor::from_fn(case.in_shape, |_, _, _| (rng() % ceiling) as u8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every packed variant equals the naive signed reference, at any
    /// thread count, for W1A1 through W1A3 layers with arbitrary strides
    /// and pooling.
    #[test]
    fn packed_variants_bit_exact_with_reference(case in layer_case()) {
        let layer = build_layer(&case);
        let input = build_input(&case);
        let expected = layer.forward_reference(&input);
        for variant in Variant::ALL {
            let got = layer.forward(&input, variant, case.threads);
            prop_assert_eq!(
                got.as_slice(), expected.as_slice(),
                "variant {:?} threads {}", variant, case.threads
            );
        }
    }

    /// The W8A8 quantized GEMM variants equal the naive i32 reference.
    #[test]
    fn gemm_q8_variants_bit_exact_with_reference(
        m in 1usize..12,
        k in 1usize..40,
        n in 1usize..40,
        threads in 1usize..5,
        seed in any::<u64>()
    ) {
        let mut rng = lcg(seed);
        let a: Vec<i8> = (0..m * k).map(|_| (rng() % 256) as u8 as i8).collect();
        let b: Vec<u8> = (0..k * n).map(|_| (rng() % 256) as u8).collect();
        let expected = gemm_q8_reference(&a, &b, m, k, n);
        for variant in Variant::ALL {
            let got = gemm_q8(&a, &b, m, k, n, variant, threads);
            prop_assert_eq!(
                &got, &expected,
                "variant {:?} threads {}", variant, threads
            );
        }
    }

    /// Model-mode autotuning is a pure function of the layer shapes: the
    /// same stack always yields the same plan, regardless of seed.
    #[test]
    fn autotuner_is_deterministic(case in layer_case(), seed in any::<u64>()) {
        let layer = build_layer(&case);
        let layers = [layer];
        let first = autotune(&layers, &TuneBudget::model());
        let mut reseeded = TuneBudget::model();
        reseeded.seed = seed;
        let second = autotune(&layers, &reseeded);
        prop_assert_eq!(first.entries(), second.entries());
        for entry in first.entries() {
            prop_assert!(entry.threads >= 1);
            prop_assert!(Variant::ALL.contains(&entry.variant));
        }
    }
}
