//! Bit-packed XNOR-popcount CPU kernels for the fallback path.
//!
//! The hidden W1A3 layers of Tincy YOLO are served by the FINN fabric in
//! normal operation, but every degraded-mode frame (FINN faulted out, host
//! workers engaged, fleet shards drained) runs the bit-exact software
//! reference instead. The naive reference evaluates `Σ sign(wᵢ)·aᵢ` one
//! byte at a time; this crate computes the identical arithmetic on packed
//! `u64` lanes:
//!
//! * [`pack`] — im2col footprints packed into activation bitplanes with
//!   per-pixel popcount-correction terms, evaluated by the packed GEMM
//!   variants and activated through the folded batchnorm thresholds,
//! * [`gemm`] — the W8A8 quantized GEMM variants for mixed-precision
//!   profiles that keep 8-bit hidden layers,
//! * [`tune`] — the startup autotuner that picks a winning variant per
//!   layer shape and records it in a [`KernelPlan`], plus the process-wide
//!   plan cache and registry backing the `tincy_kernel_variant` metric.
//!
//! Every variant computes the same integer accumulators in a different
//! order, so outputs are bit-exact with the naive reference by
//! construction — the autotuner can never change results, only speed.

pub mod gemm;
pub mod pack;
pub mod tune;

pub use gemm::{gemm_q8, gemm_q8_reference};
pub use pack::PackedLayer;
pub use tune::{
    autotune, plan_for, plan_snapshot, registry_json, KernelPlan, LayerShape, PlanEntry,
    TuneBudget, TuneMode, Variant,
};
