//! Cache-blocked quantized GEMM for mixed-precision (W8A8) profiles.
//!
//! Design-space exploration can keep some hidden layers at 8 bits; those
//! layers fall back to an integer GEMM instead of the XNOR-popcount path.
//! `C[m][n] = Σ_k A[m][k]·B[k][n]` with `A` the signed 8-bit weights
//! (row-major `m × k`), `B` the unsigned 8-bit activations (row-major
//! `k × n`) and 32-bit accumulators. All variants perform the same exact
//! integer additions, so they are bit-exact with each other and with
//! [`gemm_q8_reference`].

use crate::tune::Variant;
use tincy_trace::{static_label, Backend};

/// Depth tile of the cache-blocked variant: a `K_TILE × N_TILE` panel of
/// `B` stays L1-resident while a row tile of `A` streams by.
const K_TILE: usize = 256;

/// Column tile of the cache-blocked variant.
const N_TILE: usize = 64;

/// Naive i-k-j reference for the quantized GEMM.
///
/// # Panics
///
/// Panics if the slice lengths do not match `m·k` / `k·n`.
pub fn gemm_q8_reference(a: &[i8], b: &[u8], m: usize, k: usize, n: usize) -> Vec<i32> {
    assert_eq!(a.len(), m * k, "A size mismatch");
    assert_eq!(b.len(), k * n, "B size mismatch");
    let mut c = vec![0i32; m * n];
    for i in 0..m {
        for p in 0..k {
            let av = a[i * k + p] as i32;
            for j in 0..n {
                c[i * n + j] += av * b[p * n + j] as i32;
            }
        }
    }
    c
}

/// Quantized GEMM with a selectable kernel variant.
///
/// `threads` only matters for [`Variant::Threaded`]; every variant returns
/// bit-identical accumulators.
///
/// # Panics
///
/// Panics if the slice lengths do not match `m·k` / `k·n`.
pub fn gemm_q8(
    a: &[i8],
    b: &[u8],
    m: usize,
    k: usize,
    n: usize,
    variant: Variant,
    threads: usize,
) -> Vec<i32> {
    assert_eq!(a.len(), m * k, "A size mismatch");
    assert_eq!(b.len(), k * n, "B size mismatch");
    let _span = tincy_trace::span(static_label!("cpu.kernel.q8"))
        .backend(Backend::Host)
        .variant(variant.label())
        .start();
    let mut c = vec![0i32; m * n];
    if variant == Variant::Threaded && threads > 1 && m > 1 {
        let chunk = m.div_ceil(threads.min(m));
        std::thread::scope(|scope| {
            let mut rest = c.as_mut_slice();
            let mut i0 = 0usize;
            while i0 < m {
                let i1 = (i0 + chunk).min(m);
                let (head, tail) = rest.split_at_mut((i1 - i0) * n);
                rest = tail;
                scope.spawn(move || {
                    gemm_q8_range(&a[i0 * k..i1 * k], b, head, i1 - i0, k, n, Variant::Blocked);
                });
                i0 = i1;
            }
        });
    } else {
        let sequential = if variant == Variant::Threaded {
            Variant::Blocked
        } else {
            variant
        };
        gemm_q8_range(a, b, &mut c, m, k, n, sequential);
    }
    c
}

/// Evaluates `rows × n` output rows for the row-sliced `A` panel.
fn gemm_q8_range(
    a: &[i8],
    b: &[u8],
    c: &mut [i32],
    rows: usize,
    k: usize,
    n: usize,
    variant: Variant,
) {
    match variant {
        Variant::Scalar => {
            for i in 0..rows {
                for p in 0..k {
                    let av = a[i * k + p] as i32;
                    if av == 0 {
                        continue;
                    }
                    for j in 0..n {
                        c[i * n + j] += av * b[p * n + j] as i32;
                    }
                }
            }
        }
        Variant::Unrolled4 => {
            let full = n & !3;
            for i in 0..rows {
                for p in 0..k {
                    let av = a[i * k + p] as i32;
                    if av == 0 {
                        continue;
                    }
                    let brow = &b[p * n..(p + 1) * n];
                    let crow = &mut c[i * n..(i + 1) * n];
                    let mut j = 0usize;
                    while j < full {
                        crow[j] += av * brow[j] as i32;
                        crow[j + 1] += av * brow[j + 1] as i32;
                        crow[j + 2] += av * brow[j + 2] as i32;
                        crow[j + 3] += av * brow[j + 3] as i32;
                        j += 4;
                    }
                    for j in full..n {
                        crow[j] += av * brow[j] as i32;
                    }
                }
            }
        }
        Variant::Blocked | Variant::Threaded => {
            let mut p0 = 0usize;
            while p0 < k {
                let p1 = (p0 + K_TILE).min(k);
                let mut j0 = 0usize;
                while j0 < n {
                    let j1 = (j0 + N_TILE).min(n);
                    for i in 0..rows {
                        let crow = &mut c[i * n..(i + 1) * n];
                        for p in p0..p1 {
                            let av = a[i * k + p] as i32;
                            if av == 0 {
                                continue;
                            }
                            let brow = &b[p * n..(p + 1) * n];
                            for j in j0..j1 {
                                crow[j] += av * brow[j] as i32;
                            }
                        }
                    }
                    j0 = j1;
                }
                p0 = p1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn variants_match_reference() {
        let mut rng = StdRng::seed_from_u64(21);
        for (m, k, n) in [
            (1usize, 1usize, 1usize),
            (3, 7, 5),
            (16, 27, 33),
            (9, 300, 70),
        ] {
            let a: Vec<i8> = (0..m * k)
                .map(|_| rng.gen_range(-128i32..128) as i8)
                .collect();
            let b: Vec<u8> = (0..k * n).map(|_| rng.gen_range(0..256u32) as u8).collect();
            let expected = gemm_q8_reference(&a, &b, m, k, n);
            for variant in Variant::ALL {
                for threads in [1usize, 3] {
                    assert_eq!(
                        gemm_q8(&a, &b, m, k, n, variant, threads),
                        expected,
                        "m={m} k={k} n={n} variant={variant:?} threads={threads}"
                    );
                }
            }
        }
    }
}
