//! Bit-packed im2col footprints and the packed hidden-layer evaluator.
//!
//! # Packing format
//!
//! For one hidden layer the weights are already a packed [`BitTensor`]
//! (bit set ⇔ +1): one row per output channel, `K²·C` columns padded to
//! whole `u64` words with the padding bits clear. The activations are
//! packed to match: for every output pixel the `K²·C` im2col footprint
//! (zero-padded at the borders, exactly like the naive reference) is
//! written as `planes` bitplanes of `words_per_row` words each, the same
//! word layout as the weight rows. Plane `p` holds bit `p` of each
//! activation, so a 3-bit activation column contributes to up to three
//! planes with weights 1, 2 and 4.
//!
//! # Correction-term math
//!
//! With `w ∈ {−1,+1}` packed as a bitmask, `Σ wᵢ·bᵢ = 2·pc(w ∧ b) − pc(b)`
//! per plane. The `pc(b)` term depends only on the activations, so it is
//! folded once per pixel into a correction term
//!
//! ```text
//! asum[pix] = Σ_p 2^p · pc(plane_p[pix])
//! ```
//!
//! and the per-(row, pixel) inner loop reduces to AND+popcount only:
//!
//! ```text
//! acc = 2 · Σ_p 2^p · pc(w_row ∧ plane_p[pix]) − asum[pix]
//! ```
//!
//! `acc` then goes through the layer's folded batchnorm [`ThresholdSet`]
//! (ascending or descending) to produce the next 3-bit activation, and an
//! optional max-pool finishes the layer. Every kernel variant sums the
//! same integers in a different order, so all variants are bit-exact with
//! the naive signed-arithmetic reference.

use crate::tune::{LayerShape, Variant};
use tincy_quant::{and_popcount, ThresholdsForLayer};
use tincy_simd::U64x4;
use tincy_tensor::{BitTensor, ConvGeom, PoolGeom, Shape3, Tensor};
use tincy_trace::{static_label, Backend};

/// Bits per packed word (matches [`BitTensor`]).
const WORD_BITS: usize = 64;

/// Output-channel tile of the cache-blocked variants: 16 weight rows keep
/// the tile's weight words resident in L1 while a pixel tile streams by.
const ROW_TILE: usize = 16;

/// Pixel tile of the cache-blocked variants.
const PIX_TILE: usize = 64;

/// One hidden layer prepared for packed evaluation: packed weights, folded
/// thresholds, convolution geometry and optional max-pool.
#[derive(Debug, Clone)]
pub struct PackedLayer {
    in_shape: Shape3,
    weights: BitTensor,
    thresholds: ThresholdsForLayer,
    geom: ConvGeom,
    pool: Option<PoolGeom>,
    act_bits: usize,
    trace_layer: Option<u32>,
}

/// Activation bitplanes for one input feature map: `planes[p]` holds
/// `pixels × words` packed words, plane-major, pixel rows contiguous.
struct PackedMap {
    pixels: usize,
    words: usize,
    planes: Vec<Vec<u64>>,
    /// Per-pixel popcount-correction term `Σ_p 2^p · pc(plane_p)`.
    asum: Vec<i32>,
}

impl PackedLayer {
    /// Prepares a layer for packed evaluation.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not validate against `in_shape`, the
    /// weight width differs from the im2col dot length, the threshold
    /// channel count differs from the weight row count, or `act_bits` is
    /// outside `1..=3` — all programmer errors (upstream layer builders
    /// validate these shapes).
    pub fn new(
        in_shape: Shape3,
        weights: BitTensor,
        thresholds: ThresholdsForLayer,
        geom: ConvGeom,
        pool: Option<PoolGeom>,
        act_bits: usize,
    ) -> Self {
        assert!(
            (1..=3).contains(&act_bits),
            "act_bits must be in 1..=3, got {act_bits}"
        );
        geom.validate(in_shape).expect("conv geometry");
        assert_eq!(
            weights.cols(),
            geom.dot_length(in_shape.channels),
            "weight width mismatch"
        );
        assert_eq!(
            thresholds.num_channels(),
            weights.rows(),
            "threshold channel count mismatch"
        );
        Self {
            in_shape,
            weights,
            thresholds,
            geom,
            pool,
            act_bits,
            trace_layer: None,
        }
    }

    /// Tags `kernel.*` spans emitted by this layer with a layer index.
    #[must_use]
    pub fn with_trace_layer(mut self, layer: u32) -> Self {
        self.trace_layer = Some(layer);
        self
    }

    /// Input feature-map shape.
    pub fn in_shape(&self) -> Shape3 {
        self.in_shape
    }

    /// Output feature-map shape (after the optional max-pool).
    pub fn out_shape(&self) -> Shape3 {
        let conv = self.geom.output_shape(self.in_shape, self.weights.rows());
        match self.pool {
            Some(pool) => pool.output_shape(conv),
            None => conv,
        }
    }

    /// Activation bit width consumed by this layer.
    pub fn act_bits(&self) -> usize {
        self.act_bits
    }

    /// The shape key the autotuner bins this layer under.
    pub fn shape(&self) -> LayerShape {
        let conv = self.geom.output_shape(self.in_shape, self.weights.rows());
        LayerShape {
            rows: self.weights.rows(),
            cols: self.weights.cols(),
            pixels: conv.spatial(),
            planes: self.act_bits,
        }
    }

    /// Evaluates the layer with the chosen kernel variant.
    ///
    /// `threads` only matters for [`Variant::Threaded`]; every variant
    /// produces bit-identical output.
    ///
    /// # Panics
    ///
    /// Panics if `input` has the wrong shape.
    pub fn forward(&self, input: &Tensor<u8>, variant: Variant, threads: usize) -> Tensor<u8> {
        assert_eq!(input.shape(), self.in_shape, "input shape mismatch");
        let label = match variant {
            Variant::Scalar => static_label!("cpu.kernel.scalar"),
            Variant::Unrolled4 => static_label!("cpu.kernel.unrolled4"),
            Variant::Blocked => static_label!("cpu.kernel.blocked"),
            Variant::Threaded => static_label!("cpu.kernel.threaded"),
        };
        let mut builder = tincy_trace::span(label)
            .backend(Backend::Host)
            .variant(variant.label());
        if let Some(layer) = self.trace_layer {
            builder = builder.layer(layer);
        }
        let _span = builder.start();
        let conv_shape = self.geom.output_shape(self.in_shape, self.weights.rows());
        let map = self.pack_input(input, conv_shape);
        let mut conv_out = Tensor::zeros(conv_shape);
        self.gemm_into(&map, conv_out.as_mut_slice(), variant, threads);
        match self.pool {
            Some(pool) => max_pool_levels(&conv_out, pool),
            None => conv_out,
        }
    }

    /// Naive signed-arithmetic reference: the golden path the packed
    /// variants are proven bit-exact against.
    ///
    /// # Panics
    ///
    /// Panics if `input` has the wrong shape.
    pub fn forward_reference(&self, input: &Tensor<u8>) -> Tensor<u8> {
        assert_eq!(input.shape(), self.in_shape, "input shape mismatch");
        let conv_shape = self.geom.output_shape(self.in_shape, self.weights.rows());
        let mut conv_out = Tensor::zeros(conv_shape);
        for oy in 0..conv_shape.height {
            for ox in 0..conv_shape.width {
                for ch in 0..self.weights.rows() {
                    let mut acc = 0i32;
                    let mut col = 0usize;
                    for c in 0..self.in_shape.channels {
                        for ky in 0..self.geom.kernel {
                            let iy = (oy * self.geom.stride + ky) as isize - self.geom.pad as isize;
                            for kx in 0..self.geom.kernel {
                                let ix =
                                    (ox * self.geom.stride + kx) as isize - self.geom.pad as isize;
                                let inside = iy >= 0
                                    && (iy as usize) < self.in_shape.height
                                    && ix >= 0
                                    && (ix as usize) < self.in_shape.width;
                                if inside {
                                    let a = input.at(c, iy as usize, ix as usize) as i32;
                                    acc += self.weights.sign(ch, col) * a;
                                }
                                col += 1;
                            }
                        }
                    }
                    *conv_out.at_mut(ch, oy, ox) = self.thresholds.channel(ch).activate(acc);
                }
            }
        }
        match self.pool {
            Some(pool) => max_pool_levels(&conv_out, pool),
            None => conv_out,
        }
    }

    /// Packs the im2col footprint of every output pixel into activation
    /// bitplanes and computes the per-pixel correction terms.
    fn pack_input(&self, input: &Tensor<u8>, conv_shape: Shape3) -> PackedMap {
        let pixels = conv_shape.spatial();
        let words = self.weights.words_per_row();
        let mut planes = vec![vec![0u64; pixels * words]; self.act_bits];
        let mut pix = 0usize;
        for oy in 0..conv_shape.height {
            for ox in 0..conv_shape.width {
                let base = pix * words;
                let mut col = 0usize;
                for c in 0..self.in_shape.channels {
                    for ky in 0..self.geom.kernel {
                        let iy = (oy * self.geom.stride + ky) as isize - self.geom.pad as isize;
                        if iy < 0 || iy as usize >= self.in_shape.height {
                            col += self.geom.kernel;
                            continue;
                        }
                        for kx in 0..self.geom.kernel {
                            let ix = (ox * self.geom.stride + kx) as isize - self.geom.pad as isize;
                            if ix < 0 || ix as usize >= self.in_shape.width {
                                col += 1;
                                continue;
                            }
                            let v = input.at(c, iy as usize, ix as usize);
                            debug_assert!(
                                (v as usize) >> self.act_bits == 0,
                                "activation {v} exceeds {} bits",
                                self.act_bits
                            );
                            if v != 0 {
                                let word = base + col / WORD_BITS;
                                let mask = 1u64 << (col % WORD_BITS);
                                for (p, plane) in planes.iter_mut().enumerate() {
                                    if (v >> p) & 1 == 1 {
                                        plane[word] |= mask;
                                    }
                                }
                            }
                            col += 1;
                        }
                    }
                }
                pix += 1;
            }
        }
        let mut asum = vec![0i32; pixels];
        for (p, plane) in planes.iter().enumerate() {
            for (pix, total) in asum.iter_mut().enumerate() {
                let row = &plane[pix * words..(pix + 1) * words];
                let pc: u32 = row.iter().map(|&w| w.count_ones()).sum();
                *total += (pc as i32) << p;
            }
        }
        PackedMap {
            pixels,
            words,
            planes,
            asum,
        }
    }

    /// Dispatches the packed GEMM; `out` is channel-major
    /// (`rows × pixels`).
    fn gemm_into(&self, map: &PackedMap, out: &mut [u8], variant: Variant, threads: usize) {
        let rows = self.weights.rows();
        if variant == Variant::Threaded && threads > 1 && rows > 1 {
            let chunk = rows.div_ceil(threads.min(rows));
            std::thread::scope(|scope| {
                let mut rest = out;
                let mut r0 = 0usize;
                while r0 < rows {
                    let r1 = (r0 + chunk).min(rows);
                    let (head, tail) = rest.split_at_mut((r1 - r0) * map.pixels);
                    rest = tail;
                    scope.spawn(move || self.gemm_range(map, head, r0, r1, Variant::Blocked));
                    r0 = r1;
                }
            });
        } else {
            let sequential = if variant == Variant::Threaded {
                Variant::Blocked
            } else {
                variant
            };
            self.gemm_range(map, out, 0, rows, sequential);
        }
    }

    /// Evaluates output rows `r0..r1` into `out` (length
    /// `(r1-r0) × pixels`).
    fn gemm_range(&self, map: &PackedMap, out: &mut [u8], r0: usize, r1: usize, variant: Variant) {
        let pixels = map.pixels;
        let words = map.words;
        match variant {
            Variant::Scalar | Variant::Unrolled4 => {
                let unrolled = variant == Variant::Unrolled4;
                for r in r0..r1 {
                    let wrow = self.weights.row_words(r);
                    let tset = self.thresholds.channel(r);
                    for pix in 0..pixels {
                        let base = pix * words;
                        let pos = if unrolled {
                            dot_unrolled(wrow, &map.planes, base)
                        } else {
                            dot_scalar(wrow, &map.planes, base)
                        };
                        let acc = 2 * pos - map.asum[pix];
                        out[(r - r0) * pixels + pix] = tset.activate(acc);
                    }
                }
            }
            Variant::Blocked | Variant::Threaded => {
                let mut pt = 0usize;
                while pt < pixels {
                    let pend = (pt + PIX_TILE).min(pixels);
                    let mut rt = r0;
                    while rt < r1 {
                        let rend = (rt + ROW_TILE).min(r1);
                        for r in rt..rend {
                            let wrow = self.weights.row_words(r);
                            let tset = self.thresholds.channel(r);
                            for pix in pt..pend {
                                let pos = dot_unrolled(wrow, &map.planes, pix * words);
                                let acc = 2 * pos - map.asum[pix];
                                out[(r - r0) * pixels + pix] = tset.activate(acc);
                            }
                        }
                        rt = rend;
                    }
                    pt = pend;
                }
            }
        }
    }
}

/// Plane-weighted AND-popcount `Σ_p 2^p · pc(w ∧ plane_p)`, one word at a
/// time.
#[inline]
fn dot_scalar(wrow: &[u64], planes: &[Vec<u64>], base: usize) -> i32 {
    let mut acc = 0i32;
    for (p, plane) in planes.iter().enumerate() {
        let pc = and_popcount(wrow, &plane[base..base + wrow.len()]);
        acc += (pc as i32) << p;
    }
    acc
}

/// Plane-weighted AND-popcount, four words per iteration on [`U64x4`].
#[inline]
fn dot_unrolled(wrow: &[u64], planes: &[Vec<u64>], base: usize) -> i32 {
    let words = wrow.len();
    let full = words & !3;
    let mut acc = 0i32;
    for (p, plane) in planes.iter().enumerate() {
        let brow = &plane[base..base + words];
        let mut pc = 0u32;
        let mut j = 0usize;
        while j < full {
            pc += U64x4::load(&wrow[j..])
                .and(U64x4::load(&brow[j..]))
                .count_ones();
            j += 4;
        }
        for j in full..words {
            pc += (wrow[j] & brow[j]).count_ones();
        }
        acc += (pc as i32) << p;
    }
    acc
}

/// Max-pool over quantization levels — the unsigned activation codes are
/// monotone in the represented value, so pooling codes equals pooling
/// values. Same semantics as the fabric engine's pooling stage: ragged
/// edge windows are truncated at the feature-map border.
fn max_pool_levels(input: &Tensor<u8>, geom: PoolGeom) -> Tensor<u8> {
    let shape = input.shape();
    let out_shape = geom.output_shape(shape);
    let mut out = Tensor::zeros(out_shape);
    for c in 0..shape.channels {
        for oy in 0..out_shape.height {
            for ox in 0..out_shape.width {
                let mut best = 0u8;
                for ky in 0..geom.size {
                    for kx in 0..geom.size {
                        let iy = oy * geom.stride + ky;
                        let ix = ox * geom.stride + kx;
                        if iy < shape.height && ix < shape.width {
                            best = best.max(input.at(c, iy, ix));
                        }
                    }
                }
                *out.at_mut(c, oy, ox) = best;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tincy_quant::ThresholdSet;

    fn random_layer(
        rng: &mut StdRng,
        in_shape: Shape3,
        out_c: usize,
        stride: usize,
    ) -> PackedLayer {
        let geom = ConvGeom::same(3, stride);
        let cols = geom.dot_length(in_shape.channels);
        let signs: Vec<i8> = (0..out_c * cols)
            .map(|_| if rng.gen() { 1 } else { -1 })
            .collect();
        let weights = BitTensor::from_signs(out_c, cols, &signs).unwrap();
        let sets: Vec<ThresholdSet> = (0..out_c)
            .map(|_| {
                let mut taus = Vec::with_capacity(7);
                let mut t = rng.gen_range(-40..-20);
                for _ in 0..7 {
                    t += rng.gen_range(1..8);
                    taus.push(t);
                }
                let ascending = rng.gen();
                ThresholdSet::with_direction(taus, ascending).unwrap()
            })
            .collect();
        let thresholds = ThresholdsForLayer::new(sets).unwrap();
        PackedLayer::new(in_shape, weights, thresholds, geom, None, 3)
    }

    fn random_input(rng: &mut StdRng, shape: Shape3, act_bits: usize) -> Tensor<u8> {
        Tensor::from_fn(shape, |_, _, _| rng.gen_range(0..1u8 << act_bits))
    }

    #[test]
    fn all_variants_match_reference() {
        let mut rng = StdRng::seed_from_u64(11);
        let in_shape = Shape3::new(3, 6, 5);
        let layer = random_layer(&mut rng, in_shape, 9, 1);
        let input = random_input(&mut rng, in_shape, 3);
        let expected = layer.forward_reference(&input);
        for variant in Variant::ALL {
            for threads in [1usize, 3] {
                let got = layer.forward(&input, variant, threads);
                assert_eq!(
                    got.as_slice(),
                    expected.as_slice(),
                    "variant={variant:?} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn pooled_and_strided_layers_match_reference() {
        let mut rng = StdRng::seed_from_u64(12);
        let in_shape = Shape3::new(2, 7, 7);
        let geom = ConvGeom::same(3, 2);
        let cols = geom.dot_length(in_shape.channels);
        let signs: Vec<i8> = (0..4 * cols)
            .map(|_| if rng.gen() { 1 } else { -1 })
            .collect();
        let weights = BitTensor::from_signs(4, cols, &signs).unwrap();
        let sets: Vec<ThresholdSet> = (0..4)
            .map(|_| {
                let mut taus = Vec::with_capacity(7);
                let mut t = rng.gen_range(-30..-15);
                for _ in 0..7 {
                    t += rng.gen_range(1..6);
                    taus.push(t);
                }
                ThresholdSet::new(taus).unwrap()
            })
            .collect();
        let thresholds = ThresholdsForLayer::new(sets).unwrap();
        let layer = PackedLayer::new(
            in_shape,
            weights,
            thresholds,
            geom,
            Some(PoolGeom::new(2, 2)),
            3,
        );
        let input = random_input(&mut rng, in_shape, 3);
        let expected = layer.forward_reference(&input);
        for variant in Variant::ALL {
            let got = layer.forward(&input, variant, 2);
            assert_eq!(got.as_slice(), expected.as_slice(), "variant={variant:?}");
        }
        assert_eq!(expected.shape(), layer.out_shape());
    }

    #[test]
    fn binary_activations_pack_to_one_plane() {
        let mut rng = StdRng::seed_from_u64(13);
        let in_shape = Shape3::new(4, 4, 4);
        let geom = ConvGeom::same(3, 1);
        let cols = geom.dot_length(in_shape.channels);
        let signs: Vec<i8> = (0..5 * cols)
            .map(|_| if rng.gen() { 1 } else { -1 })
            .collect();
        let weights = BitTensor::from_signs(5, cols, &signs).unwrap();
        let sets = vec![ThresholdSet::binary(); 5];
        let thresholds = ThresholdsForLayer::new(sets).unwrap();
        let layer = PackedLayer::new(in_shape, weights, thresholds, geom, None, 1);
        let input = random_input(&mut rng, in_shape, 1);
        let expected = layer.forward_reference(&input);
        for variant in Variant::ALL {
            let got = layer.forward(&input, variant, 2);
            assert_eq!(got.as_slice(), expected.as_slice(), "variant={variant:?}");
        }
    }
}
