//! The startup autotuner: pick a kernel variant per layer shape.
//!
//! # Protocol
//!
//! Variant choice never changes results — every variant is bit-exact — so
//! tuning is purely a performance decision and can be as cheap as a cost
//! model. Two modes:
//!
//! * [`TuneMode::Model`] (default): a deterministic analytic cost model
//!   over the layer shape. Machine-independent, zero startup cost, and
//!   keeps the exported `tincy_kernel_variant` series stable across hosts
//!   (the metrics-shape goldens pin label values).
//! * [`TuneMode::Measure`] (opt-in via `TINCY_KERNEL_TUNE=measure`): time
//!   each variant on a seeded synthetic input under a small warmup budget
//!   and keep the fastest. Deterministic inputs, not deterministic
//!   winners — wall-clock decides.
//!
//! Plans are cached process-wide by the stack's shape key so identical
//! worker engines (serve CPU workers, fleet shards) tune once; every tuned
//! layer emits a `kernel.autotune` trace span and lands in a global
//! registry backing the `tincy_kernel_variant` metric and the
//! `--kernel-plan` CLI flag.

use crate::pack::PackedLayer;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;
use tincy_json::{JsonArray, JsonObject};
use tincy_tensor::{Shape3, Tensor};
use tincy_trace::static_label;

/// One packed-GEMM implementation strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Variant {
    /// One word at a time, per-plane accumulators.
    Scalar,
    /// Four words per iteration on `U64x4` lanes.
    Unrolled4,
    /// Cache-blocked row × pixel tiles around the unrolled inner loop.
    Blocked,
    /// Row-parallel blocked tiles across a scoped thread pool.
    Threaded,
}

impl Variant {
    /// Every variant, in deterministic tie-break order (earlier wins ties).
    pub const ALL: [Variant; 4] = [
        Variant::Scalar,
        Variant::Unrolled4,
        Variant::Blocked,
        Variant::Threaded,
    ];

    /// Stable label used in metrics, traces and plan JSON.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Scalar => "scalar",
            Variant::Unrolled4 => "unrolled4",
            Variant::Blocked => "blocked",
            Variant::Threaded => "threaded",
        }
    }
}

/// The shape key the autotuner bins layers under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LayerShape {
    /// Output channels (weight rows).
    pub rows: usize,
    /// Im2col dot length (`K²·C`).
    pub cols: usize,
    /// Convolution output pixels.
    pub pixels: usize,
    /// Activation bitplanes.
    pub planes: usize,
}

impl LayerShape {
    /// Compact `rows x cols x pixels x planes` form for labels and JSON.
    pub fn token(&self) -> String {
        format!(
            "{}x{}x{}x{}",
            self.rows, self.cols, self.pixels, self.planes
        )
    }
}

/// How the autotuner decides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TuneMode {
    /// Deterministic analytic cost model (default).
    Model,
    /// Timed warmup runs on seeded synthetic inputs.
    Measure,
}

/// The autotuner's decision procedure and warmup budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuneBudget {
    /// Decision mode.
    pub mode: TuneMode,
    /// Seed for the synthetic warmup inputs (Measure mode).
    pub seed: u64,
    /// Timed iterations per variant, best-of (Measure mode).
    pub iters: usize,
    /// Worker threads assumed for [`Variant::Threaded`].
    pub threads: usize,
}

impl Default for TuneBudget {
    /// Model mode unless `TINCY_KERNEL_TUNE=measure`; a fixed 4-thread
    /// assumption keeps Model-mode plans identical across machines.
    fn default() -> Self {
        let mode = match std::env::var("TINCY_KERNEL_TUNE") {
            Ok(v) if v == "measure" => TuneMode::Measure,
            _ => TuneMode::Model,
        };
        Self {
            mode,
            seed: 7,
            iters: 3,
            threads: 4,
        }
    }
}

impl TuneBudget {
    /// A Model-mode budget regardless of the environment.
    pub fn model() -> Self {
        Self {
            mode: TuneMode::Model,
            ..Self::default()
        }
    }
}

/// The tuned decision for one layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanEntry {
    /// Layer index within the tuned stack.
    pub layer: u32,
    /// The shape the decision was made for.
    pub shape: LayerShape,
    /// Winning variant.
    pub variant: Variant,
    /// Thread count the variant runs with (1 unless Threaded).
    pub threads: usize,
    /// The winning cost (model units or measured nanoseconds).
    pub cost: f64,
}

/// The autotuner's output: one entry per layer of the tuned stack.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelPlan {
    entries: Vec<PlanEntry>,
}

impl KernelPlan {
    /// Entries in layer order.
    pub fn entries(&self) -> &[PlanEntry] {
        &self.entries
    }

    /// The decision for one layer.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn entry(&self, layer: usize) -> &PlanEntry {
        &self.entries[layer]
    }

    /// Serializes the plan as a JSON object.
    pub fn to_json(&self) -> String {
        let mut rows = JsonArray::new();
        for entry in &self.entries {
            rows.raw(&plan_entry_json(
                entry.layer,
                entry.shape,
                entry.variant,
                entry.threads,
            ));
        }
        JsonObject::new()
            .u64("layers", self.entries.len() as u64)
            .raw("entries", &rows.finish())
            .finish()
    }
}

fn plan_entry_json(layer: u32, shape: LayerShape, variant: Variant, threads: usize) -> String {
    JsonObject::new()
        .u64("layer", layer as u64)
        .str("shape", &shape.token())
        .u64("rows", shape.rows as u64)
        .u64("cols", shape.cols as u64)
        .u64("pixels", shape.pixels as u64)
        .u64("planes", shape.planes as u64)
        .str("variant", variant.label())
        .u64("threads", threads as u64)
        .finish()
}

/// Analytic cost of running `shape` with `variant` (arbitrary units).
///
/// `work` counts packed inner-loop word operations. The factors encode the
/// mechanisms, not a specific host: unrolling pays once rows span several
/// quads, tiles pay once the weight matrix spills L1, threads amortize a
/// fixed spawn cost.
fn model_cost(shape: LayerShape, variant: Variant, threads: usize) -> f64 {
    let words = shape.cols.div_ceil(64) as f64;
    let work = shape.rows as f64 * shape.pixels as f64 * words * shape.planes as f64;
    let unrolled = work * if words >= 4.0 { 0.70 } else { 1.02 };
    let weight_bytes = shape.rows as f64 * words * 8.0;
    let blocked = unrolled
        * if weight_bytes > 32.0 * 1024.0 && shape.pixels >= 2 * 64 {
            0.85
        } else {
            1.03
        };
    match variant {
        Variant::Scalar => work,
        Variant::Unrolled4 => unrolled,
        Variant::Blocked => blocked,
        Variant::Threaded => {
            let threads = threads.max(1) as f64;
            blocked / threads + 30_000.0 * threads
        }
    }
}

/// SplitMix64 step, the workspace's standard seed expander.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic synthetic warmup input for Measure mode.
fn seeded_input(shape: Shape3, act_bits: usize, seed: u64) -> Tensor<u8> {
    let mut state = seed ^ (shape.volume() as u64).rotate_left(17);
    let levels = 1u64 << act_bits;
    Tensor::from_fn(shape, |_, _, _| (splitmix64(&mut state) % levels) as u8)
}

fn measured_cost(layer: &PackedLayer, variant: Variant, budget: &TuneBudget) -> f64 {
    let input = seeded_input(layer.in_shape(), layer.act_bits(), budget.seed);
    let mut best = f64::INFINITY;
    for _ in 0..budget.iters.max(1) {
        let start = Instant::now();
        let out = layer.forward(&input, variant, budget.threads);
        let elapsed = start.elapsed().as_nanos() as f64;
        std::hint::black_box(out);
        if elapsed < best {
            best = elapsed;
        }
    }
    best
}

/// Tunes one stack of packed layers, emitting a `kernel.autotune` span per
/// layer.
pub fn autotune(layers: &[PackedLayer], budget: &TuneBudget) -> KernelPlan {
    let entries = layers
        .iter()
        .enumerate()
        .map(|(i, layer)| {
            let shape = layer.shape();
            let mut winner = Variant::Scalar;
            let mut best = f64::INFINITY;
            for variant in Variant::ALL {
                let cost = match budget.mode {
                    TuneMode::Model => model_cost(shape, variant, budget.threads),
                    TuneMode::Measure => measured_cost(layer, variant, budget),
                };
                if cost < best {
                    best = cost;
                    winner = variant;
                }
            }
            let threads = if winner == Variant::Threaded {
                budget.threads.max(1)
            } else {
                1
            };
            tincy_trace::span(static_label!("kernel.autotune"))
                .layer(i as u32)
                .variant(winner.label())
                .cycles(best as u64)
                .emit();
            PlanEntry {
                layer: i as u32,
                shape,
                variant: winner,
                threads,
                cost: best,
            }
        })
        .collect();
    KernelPlan { entries }
}

type PlanCache = Mutex<HashMap<Vec<LayerShape>, Arc<KernelPlan>>>;
type PlanRegistry = Mutex<BTreeMap<(u32, LayerShape), (Variant, usize)>>;

fn cache() -> &'static PlanCache {
    static CACHE: OnceLock<PlanCache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn registry() -> &'static PlanRegistry {
    static REGISTRY: OnceLock<PlanRegistry> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Returns the plan for a layer stack, tuning on first sight of its shape
/// key and serving every later identical stack (serve workers, fleet
/// shards) from the process-wide cache. Tuned entries are recorded in the
/// global registry behind [`plan_snapshot`] / [`registry_json`].
pub fn plan_for(layers: &[PackedLayer], budget: &TuneBudget) -> Arc<KernelPlan> {
    let key: Vec<LayerShape> = layers.iter().map(PackedLayer::shape).collect();
    let mut cache = cache().lock().expect("kernel plan cache poisoned");
    if let Some(plan) = cache.get(&key) {
        return Arc::clone(plan);
    }
    let plan = Arc::new(autotune(layers, budget));
    {
        let mut registry = registry().lock().expect("kernel plan registry poisoned");
        for entry in plan.entries() {
            registry.insert((entry.layer, entry.shape), (entry.variant, entry.threads));
        }
    }
    cache.insert(key, Arc::clone(&plan));
    plan
}

/// Every `(layer, shape) → variant` decision tuned so far this process, in
/// deterministic order.
pub fn plan_snapshot() -> Vec<(u32, LayerShape, Variant)> {
    registry()
        .lock()
        .expect("kernel plan registry poisoned")
        .iter()
        .map(|(&(layer, shape), &(variant, _))| (layer, shape, variant))
        .collect()
}

/// The global registry as JSON — the payload behind `--kernel-plan`.
pub fn registry_json() -> String {
    let mut rows = JsonArray::new();
    for ((layer, shape), (variant, threads)) in registry()
        .lock()
        .expect("kernel plan registry poisoned")
        .iter()
    {
        rows.raw(&plan_entry_json(*layer, *shape, *variant, *threads));
    }
    JsonObject::new()
        .raw("kernel_plan", &rows.finish())
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tincy_quant::{ThresholdSet, ThresholdsForLayer};
    use tincy_tensor::{BitTensor, ConvGeom};

    fn layer(rng: &mut StdRng, in_shape: Shape3, out_c: usize) -> PackedLayer {
        let geom = ConvGeom::same(3, 1);
        let cols = geom.dot_length(in_shape.channels);
        let signs: Vec<i8> = (0..out_c * cols)
            .map(|_| if rng.gen() { 1 } else { -1 })
            .collect();
        let weights = BitTensor::from_signs(out_c, cols, &signs).unwrap();
        let sets: Vec<ThresholdSet> = (0..out_c)
            .map(|_| {
                let mut taus = Vec::with_capacity(7);
                let mut t = rng.gen_range(-30..-15);
                for _ in 0..7 {
                    t += rng.gen_range(1..6);
                    taus.push(t);
                }
                ThresholdSet::new(taus).unwrap()
            })
            .collect();
        PackedLayer::new(
            in_shape,
            weights,
            ThresholdsForLayer::new(sets).unwrap(),
            geom,
            None,
            3,
        )
    }

    #[test]
    fn model_mode_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(31);
        let layers = vec![
            layer(&mut rng, Shape3::new(3, 8, 8), 16),
            layer(&mut rng, Shape3::new(16, 4, 4), 32),
        ];
        let budget = TuneBudget::model();
        assert_eq!(autotune(&layers, &budget), autotune(&layers, &budget));
    }

    #[test]
    fn plan_cache_returns_same_plan_for_same_shapes() {
        let mut rng = StdRng::seed_from_u64(32);
        let a = vec![layer(&mut rng, Shape3::new(2, 5, 5), 6)];
        let b = vec![layer(&mut rng, Shape3::new(2, 5, 5), 6)];
        let budget = TuneBudget::model();
        let pa = plan_for(&a, &budget);
        let pb = plan_for(&b, &budget);
        assert!(Arc::ptr_eq(&pa, &pb));
        assert!(plan_snapshot()
            .iter()
            .any(|&(l, s, _)| l == 0 && s == a[0].shape()));
    }

    #[test]
    fn big_shapes_go_threaded_small_shapes_stay_sequential() {
        let big = LayerShape {
            rows: 512,
            cols: 4608,
            pixels: 1024,
            planes: 3,
        };
        let tiny = LayerShape {
            rows: 4,
            cols: 27,
            pixels: 16,
            planes: 3,
        };
        let budget = TuneBudget::model();
        let pick = |shape: LayerShape| {
            Variant::ALL
                .into_iter()
                .fold((Variant::Scalar, f64::INFINITY), |acc, v| {
                    let cost = model_cost(shape, v, budget.threads);
                    if cost < acc.1 {
                        (v, cost)
                    } else {
                        acc
                    }
                })
                .0
        };
        assert_eq!(pick(big), Variant::Threaded);
        assert_ne!(pick(tiny), Variant::Threaded);
    }

    #[test]
    fn plan_json_lists_every_layer() {
        let mut rng = StdRng::seed_from_u64(33);
        let layers = vec![
            layer(&mut rng, Shape3::new(2, 4, 4), 4),
            layer(&mut rng, Shape3::new(4, 4, 4), 8),
        ];
        let plan = autotune(&layers, &TuneBudget::model());
        let json = plan.to_json();
        let parsed = tincy_json::parse(&json).unwrap();
        let entries = parsed.get("entries").and_then(|v| v.as_arr()).unwrap();
        assert_eq!(entries.len(), 2);
        for (i, entry) in entries.iter().enumerate() {
            assert_eq!(entry.get("layer").and_then(|v| v.as_f64()), Some(i as f64));
            assert!(entry.get("variant").and_then(|v| v.as_str()).is_some());
        }
    }
}
