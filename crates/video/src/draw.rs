//! Object boxing and frame drawing (pipeline stages N+2 and N+3).

use crate::frame::Image;
use tincy_eval::Detection;

/// Distinct, saturated color for a class index (cycles beyond 8 classes).
pub fn class_color(class: usize) -> [f32; 3] {
    const PALETTE: [[f32; 3]; 8] = [
        [0.95, 0.25, 0.20], // red
        [0.20, 0.75, 0.30], // green
        [0.25, 0.45, 0.95], // blue
        [0.95, 0.80, 0.20], // yellow
        [0.80, 0.30, 0.85], // magenta
        [0.25, 0.85, 0.85], // cyan
        [0.95, 0.55, 0.15], // orange
        [0.90, 0.90, 0.90], // white
    ];
    PALETTE[class % PALETTE.len()]
}

/// Draws a rectangle outline in relative coordinates with the given stroke
/// width in pixels. Coordinates outside the image are clipped.
pub fn draw_box(
    image: &mut Image,
    cx: f32,
    cy: f32,
    w: f32,
    h: f32,
    color: [f32; 3],
    stroke: usize,
) {
    let iw = image.width() as f32;
    let ih = image.height() as f32;
    let x0 = (((cx - w / 2.0) * iw) as isize).clamp(0, image.width() as isize - 1) as usize;
    let x1 = (((cx + w / 2.0) * iw) as isize).clamp(0, image.width() as isize - 1) as usize;
    let y0 = (((cy - h / 2.0) * ih) as isize).clamp(0, image.height() as isize - 1) as usize;
    let y1 = (((cy + h / 2.0) * ih) as isize).clamp(0, image.height() as isize - 1) as usize;
    for s in 0..stroke {
        for x in x0..=x1 {
            if y0 + s <= y1 {
                image.set_pixel(x, y0 + s, color);
            }
            if y1 >= s && y1 - s >= y0 {
                image.set_pixel(x, y1 - s, color);
            }
        }
        for y in y0..=y1 {
            if x0 + s <= x1 {
                image.set_pixel(x0 + s, y, color);
            }
            if x1 >= s && x1 - s >= x0 {
                image.set_pixel(x1 - s, y, color);
            }
        }
    }
}

/// Annotates a frame with detection boxes in class colors — the "object
/// boxing" pipeline stage.
pub fn draw_detections(image: &mut Image, detections: &[Detection]) {
    for det in detections {
        draw_box(
            image,
            det.bbox.x,
            det.bbox.y,
            det.bbox.w,
            det.bbox.h,
            class_color(det.class),
            1,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tincy_eval::{BBox, Detection};

    #[test]
    fn colors_are_distinct_for_first_classes() {
        for a in 0..8 {
            for b in (a + 1)..8 {
                assert_ne!(class_color(a), class_color(b));
            }
        }
        assert_eq!(class_color(0), class_color(8)); // cycles
    }

    #[test]
    fn box_outline_drawn_not_filled() {
        let mut img = Image::filled(20, 20, [0.0, 0.0, 0.0]);
        draw_box(&mut img, 0.5, 0.5, 0.5, 0.5, [1.0, 1.0, 1.0], 1);
        // Edge pixel painted.
        assert_eq!(img.pixel(10, 5), [1.0, 1.0, 1.0]);
        // Interior untouched.
        assert_eq!(img.pixel(10, 10), [0.0, 0.0, 0.0]);
    }

    #[test]
    fn out_of_frame_boxes_clip() {
        let mut img = Image::filled(10, 10, [0.0, 0.0, 0.0]);
        draw_box(&mut img, 0.0, 0.0, 1.0, 1.0, [1.0, 0.0, 0.0], 2);
        // Must not panic; some border pixels painted.
        assert_eq!(img.pixel(0, 0), [1.0, 0.0, 0.0]);
    }

    #[test]
    fn detections_use_class_colors() {
        let mut img = Image::filled(20, 20, [0.0, 0.0, 0.0]);
        // Box edges at exactly representable coordinates (0.25/0.75).
        let det = Detection::new(BBox::new(0.5, 0.5, 0.5, 0.5), 2, 0.9);
        draw_detections(&mut img, &[det]);
        assert_eq!(img.pixel(10, 5), class_color(2));
    }
}
