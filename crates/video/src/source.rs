//! The synthetic camera (pipeline stage #0).

use crate::frame::Image;
use crate::scene::{Scene, SceneConfig};
use tincy_eval::GroundTruth;

/// A deterministic video source rendering a moving synthetic scene.
///
/// Each [`SyntheticCamera::capture`] renders the current scene and advances
/// it one time step — the stand-in for the USB camera read of the original
/// demo.
#[derive(Debug, Clone)]
pub struct SyntheticCamera {
    scene: Scene,
    frames_captured: u64,
    limit: Option<u64>,
}

impl SyntheticCamera {
    /// Creates an endless camera.
    pub fn new(config: SceneConfig, seed: u64) -> Self {
        Self {
            scene: Scene::new(config, seed),
            frames_captured: 0,
            limit: None,
        }
    }

    /// Creates a camera that ends the stream after `limit` frames.
    pub fn with_limit(config: SceneConfig, seed: u64, limit: u64) -> Self {
        Self {
            scene: Scene::new(config, seed),
            frames_captured: 0,
            limit: Some(limit),
        }
    }

    /// Captures the next frame, or `None` when the limit is reached.
    pub fn capture(&mut self) -> Option<Image> {
        self.capture_with_truth().map(|(img, _)| img)
    }

    /// Captures the next frame together with its ground truth.
    pub fn capture_with_truth(&mut self) -> Option<(Image, Vec<GroundTruth>)> {
        if let Some(limit) = self.limit {
            if self.frames_captured >= limit {
                return None;
            }
        }
        let image = self.scene.render();
        let truth = self.scene.ground_truth();
        self.scene.step();
        self.frames_captured += 1;
        Some((image, truth))
    }

    /// Frames produced so far.
    pub fn frames_captured(&self) -> u64 {
        self.frames_captured
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limited_camera_ends_stream() {
        let mut cam = SyntheticCamera::with_limit(SceneConfig::default(), 1, 3);
        assert!(cam.capture().is_some());
        assert!(cam.capture().is_some());
        assert!(cam.capture().is_some());
        assert!(cam.capture().is_none());
        assert_eq!(cam.frames_captured(), 3);
    }

    #[test]
    fn frames_change_over_time() {
        let mut cam = SyntheticCamera::new(SceneConfig::default(), 2);
        let a = cam.capture().unwrap();
        let mut moved = false;
        for _ in 0..10 {
            let b = cam.capture().unwrap();
            if a != b {
                moved = true;
                break;
            }
        }
        assert!(moved, "scene must animate");
    }

    #[test]
    fn deterministic_streams() {
        let mut a = SyntheticCamera::with_limit(SceneConfig::default(), 7, 5);
        let mut b = SyntheticCamera::with_limit(SceneConfig::default(), 7, 5);
        while let (Some(fa), Some(fb)) = (a.capture(), b.capture()) {
            assert_eq!(fa, fb);
        }
    }

    #[test]
    fn truth_accompanies_frames() {
        let mut cam = SyntheticCamera::new(SceneConfig::default(), 4);
        let (_, truth) = cam.capture_with_truth().unwrap();
        assert_eq!(truth.len(), SceneConfig::default().num_objects);
    }
}
