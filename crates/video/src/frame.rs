//! RGB image frames and the letter-boxing stage (pipeline stage #1).

use tincy_tensor::{Shape3, Tensor};

/// An RGB image with channel values in `0.0..=1.0`, stored CHW.
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    data: Tensor<f32>,
}

impl Image {
    /// Creates a solid-color image.
    pub fn filled(width: usize, height: usize, rgb: [f32; 3]) -> Self {
        let data = Tensor::from_fn(Shape3::new(3, height, width), |c, _, _| rgb[c]);
        Self { data }
    }

    /// Wraps an existing 3-channel tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor does not have exactly three channels.
    pub fn from_tensor(data: Tensor<f32>) -> Self {
        assert_eq!(data.shape().channels, 3, "images must have three channels");
        Self { data }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.data.shape().width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.data.shape().height
    }

    /// The underlying CHW tensor.
    pub fn as_tensor(&self) -> &Tensor<f32> {
        &self.data
    }

    /// Consumes the image, returning the tensor.
    pub fn into_tensor(self) -> Tensor<f32> {
        self.data
    }

    /// Reads pixel `(x, y)` as RGB.
    pub fn pixel(&self, x: usize, y: usize) -> [f32; 3] {
        [
            self.data.at(0, y, x),
            self.data.at(1, y, x),
            self.data.at(2, y, x),
        ]
    }

    /// Writes pixel `(x, y)`.
    pub fn set_pixel(&mut self, x: usize, y: usize, rgb: [f32; 3]) {
        for (c, &v) in rgb.iter().enumerate() {
            *self.data.at_mut(c, y, x) = v.clamp(0.0, 1.0);
        }
    }

    /// Bilinear sample at fractional coordinates (clamped at borders).
    fn sample(&self, c: usize, x: f32, y: f32) -> f32 {
        let max_x = (self.width() - 1) as f32;
        let max_y = (self.height() - 1) as f32;
        let x = x.clamp(0.0, max_x);
        let y = y.clamp(0.0, max_y);
        let (x0, y0) = (x.floor() as usize, y.floor() as usize);
        let (x1, y1) = (
            (x0 + 1).min(self.width() - 1),
            (y0 + 1).min(self.height() - 1),
        );
        let (fx, fy) = (x - x0 as f32, y - y0 as f32);
        let top = self.data.at(c, y0, x0) * (1.0 - fx) + self.data.at(c, y0, x1) * fx;
        let bottom = self.data.at(c, y1, x0) * (1.0 - fx) + self.data.at(c, y1, x1) * fx;
        top * (1.0 - fy) + bottom * fy
    }

    /// Bilinear resize to an exact target size.
    pub fn resized(&self, width: usize, height: usize) -> Image {
        let sx = self.width() as f32 / width as f32;
        let sy = self.height() as f32 / height as f32;
        let data = Tensor::from_fn(Shape3::new(3, height, width), |c, y, x| {
            self.sample(c, (x as f32 + 0.5) * sx - 0.5, (y as f32 + 0.5) * sy - 0.5)
        });
        Image { data }
    }

    /// Darknet-style letter boxing: scales the image to fit a square target
    /// preserving aspect ratio and pads the rest with mid gray (0.5).
    pub fn letterboxed(&self, target: usize) -> Image {
        let scale = (target as f32 / self.width() as f32).min(target as f32 / self.height() as f32);
        let new_w = ((self.width() as f32 * scale) as usize).max(1);
        let new_h = ((self.height() as f32 * scale) as usize).max(1);
        let resized = self.resized(new_w, new_h);
        let off_x = (target - new_w) / 2;
        let off_y = (target - new_h) / 2;
        let data = Tensor::from_fn(Shape3::new(3, target, target), |c, y, x| {
            if y >= off_y && y < off_y + new_h && x >= off_x && x < off_x + new_w {
                resized.as_tensor().at(c, y - off_y, x - off_x)
            } else {
                0.5
            }
        });
        Image { data }
    }

    /// Encodes the image as a binary PPM (P6) byte stream.
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.width(), self.height()).into_bytes();
        for y in 0..self.height() {
            for x in 0..self.width() {
                for v in self.pixel(x, y) {
                    out.push((v.clamp(0.0, 1.0) * 255.0).round() as u8);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_and_pixel_access() {
        let mut img = Image::filled(4, 3, [0.2, 0.4, 0.6]);
        assert_eq!(img.width(), 4);
        assert_eq!(img.height(), 3);
        assert_eq!(img.pixel(1, 1), [0.2, 0.4, 0.6]);
        img.set_pixel(0, 0, [1.5, -0.5, 0.5]);
        assert_eq!(img.pixel(0, 0), [1.0, 0.0, 0.5]);
    }

    #[test]
    fn resize_preserves_constant_image() {
        let img = Image::filled(10, 6, [0.3, 0.3, 0.3]);
        let small = img.resized(5, 3);
        assert_eq!(small.width(), 5);
        assert!(small
            .as_tensor()
            .as_slice()
            .iter()
            .all(|&v| (v - 0.3).abs() < 1e-6));
    }

    #[test]
    fn letterbox_pads_with_gray() {
        // Wide image: vertical bars of padding above and below.
        let img = Image::filled(8, 4, [1.0, 0.0, 0.0]);
        let boxed = img.letterboxed(8);
        assert_eq!(boxed.width(), 8);
        assert_eq!(boxed.height(), 8);
        assert_eq!(boxed.pixel(0, 0), [0.5, 0.5, 0.5]); // padding
        assert_eq!(boxed.pixel(4, 4), [1.0, 0.0, 0.0]); // content
        assert_eq!(boxed.pixel(0, 7), [0.5, 0.5, 0.5]); // padding
    }

    #[test]
    fn letterbox_square_input_has_no_padding() {
        let img = Image::filled(6, 6, [0.0, 1.0, 0.0]);
        let boxed = img.letterboxed(12);
        for y in 0..12 {
            for x in 0..12 {
                assert_eq!(boxed.pixel(x, y), [0.0, 1.0, 0.0], "({x},{y})");
            }
        }
    }

    #[test]
    fn ppm_header_and_size() {
        let img = Image::filled(2, 2, [0.0, 0.5, 1.0]);
        let ppm = img.to_ppm();
        assert!(ppm.starts_with(b"P6\n2 2\n255\n"));
        assert_eq!(ppm.len(), 11 + 12);
        assert_eq!(ppm[11..14], [0, 128, 255]);
    }
}
