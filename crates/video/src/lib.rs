//! Synthetic video and dataset substrate.
//!
//! The original system processes a live USB camera stream and draws onto an
//! X11 window — hardware this reproduction does not have. This crate stands
//! in with a deterministic synthetic scene generator that exercises the
//! identical pipeline stages (Fig 5): frame acquisition, letter boxing,
//! object boxing and frame drawing. Because the generator knows its own
//! ground truth, it doubles as the dataset source for the Table IV accuracy
//! study.

mod dataset;
mod draw;
mod frame;
mod scene;
mod sink;
mod source;

pub use dataset::{generate_dataset, DatasetConfig, Sample};
pub use draw::{class_color, draw_box, draw_detections};
pub use frame::Image;
pub use scene::{Scene, SceneConfig, SceneObject};
pub use sink::{NullSink, PpmSink, StatsSink, VideoSink};
pub use source::SyntheticCamera;
