//! Synthetic detection datasets for training and evaluation (Table IV).

use crate::frame::Image;
use crate::scene::{Scene, SceneConfig};
use tincy_eval::GroundTruth;

/// Dataset generation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetConfig {
    /// Scene parameters for every sample.
    pub scene: SceneConfig,
    /// Number of samples to generate.
    pub samples: usize,
    /// Base random seed; sample `i` uses `seed + i`.
    pub seed: u64,
    /// Square size images are letterboxed to (the network input size).
    pub input_size: usize,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        Self {
            scene: SceneConfig::default(),
            samples: 64,
            seed: 0,
            input_size: 32,
        }
    }
}

/// One dataset sample: a letterboxed image with its ground truth in the
/// letterboxed coordinate frame.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Letterboxed input image (`input_size × input_size`).
    pub image: Image,
    /// Ground-truth objects in letterboxed relative coordinates.
    pub truth: Vec<GroundTruth>,
}

/// Generates a deterministic detection dataset.
///
/// Each sample renders an independent scene (distinct seed), letterboxes it
/// to the network input size and maps the ground truth into letterboxed
/// coordinates.
pub fn generate_dataset(config: &DatasetConfig) -> Vec<Sample> {
    (0..config.samples)
        .map(|i| {
            let scene = Scene::new(config.scene.clone(), config.seed + i as u64);
            let image = scene.render();
            let (sw, sh) = (image.width() as f32, image.height() as f32);
            let scale = (config.input_size as f32 / sw).min(config.input_size as f32 / sh);
            let (new_w, new_h) = (sw * scale, sh * scale);
            let off_x = (config.input_size as f32 - new_w) / 2.0 / config.input_size as f32;
            let off_y = (config.input_size as f32 - new_h) / 2.0 / config.input_size as f32;
            let fx = new_w / config.input_size as f32;
            let fy = new_h / config.input_size as f32;
            let truth = scene
                .ground_truth()
                .iter()
                .map(|gt| {
                    let mut b = gt.bbox;
                    b.x = off_x + b.x * fx;
                    b.y = off_y + b.y * fy;
                    b.w *= fx;
                    b.h *= fy;
                    GroundTruth::new(b, gt.class)
                })
                .collect();
            Sample {
                image: image.letterboxed(config.input_size),
                truth,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_is_deterministic_and_sized() {
        let config = DatasetConfig {
            samples: 5,
            ..Default::default()
        };
        let a = generate_dataset(&config);
        let b = generate_dataset(&config);
        assert_eq!(a.len(), 5);
        for (sa, sb) in a.iter().zip(&b) {
            assert_eq!(sa.image, sb.image);
            assert_eq!(sa.truth, sb.truth);
        }
    }

    #[test]
    fn images_are_letterboxed_to_input_size() {
        let config = DatasetConfig {
            input_size: 48,
            samples: 2,
            ..Default::default()
        };
        for sample in generate_dataset(&config) {
            assert_eq!(sample.image.width(), 48);
            assert_eq!(sample.image.height(), 48);
        }
    }

    #[test]
    fn truth_boxes_stay_in_unit_square() {
        let config = DatasetConfig {
            samples: 10,
            ..Default::default()
        };
        for sample in generate_dataset(&config) {
            for gt in &sample.truth {
                assert!(gt.bbox.left() >= -1e-4 && gt.bbox.right() <= 1.0 + 1e-4);
                assert!(gt.bbox.top() >= -1e-4 && gt.bbox.bottom() <= 1.0 + 1e-4);
            }
        }
    }

    #[test]
    fn truth_box_center_lands_on_object_color() {
        // The letterbox coordinate mapping must keep ground truth aligned
        // with the rendered pixels.
        let config = DatasetConfig {
            samples: 4,
            input_size: 64,
            ..Default::default()
        };
        for sample in generate_dataset(&config) {
            // Objects can overlap; the scene renders later objects over
            // earlier ones, so only assert the center pixel is non-background.
            for gt in &sample.truth {
                let x = ((gt.bbox.x * 64.0) as usize).min(63);
                let y = ((gt.bbox.y * 64.0) as usize).min(63);
                let pixel = sample.image.pixel(x, y);
                assert_ne!(pixel, [0.08, 0.08, 0.10], "center pixel must be painted");
            }
        }
    }

    #[test]
    fn distinct_seeds_give_distinct_samples() {
        let config = DatasetConfig {
            samples: 2,
            ..Default::default()
        };
        let samples = generate_dataset(&config);
        assert_ne!(samples[0].image, samples[1].image);
    }
}
