//! The synthetic scene model: moving, class-colored objects with exact
//! ground truth.

use crate::frame::Image;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tincy_eval::{BBox, GroundTruth};

/// Scene generation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SceneConfig {
    /// Rendered frame width.
    pub width: usize,
    /// Rendered frame height.
    pub height: usize,
    /// Number of objects in the scene.
    pub num_objects: usize,
    /// Number of distinct object classes.
    pub num_classes: usize,
    /// Relative object size range (fraction of the smaller frame side).
    pub size_range: (f32, f32),
    /// Per-frame speed in relative units.
    pub speed: f32,
}

impl Default for SceneConfig {
    fn default() -> Self {
        Self {
            width: 128,
            height: 96,
            num_objects: 3,
            num_classes: 4,
            size_range: (0.15, 0.35),
            speed: 0.02,
        }
    }
}

/// One object: class, center position, size and velocity (all relative).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SceneObject {
    /// Object class in `0..num_classes`.
    pub class: usize,
    /// Center x in `0..1`.
    pub x: f32,
    /// Center y in `0..1`.
    pub y: f32,
    /// Width in `0..1`.
    pub w: f32,
    /// Height in `0..1`.
    pub h: f32,
    /// Velocity x per frame.
    pub vx: f32,
    /// Velocity y per frame.
    pub vy: f32,
}

impl SceneObject {
    /// The ground-truth annotation of this object.
    pub fn ground_truth(&self) -> GroundTruth {
        GroundTruth::new(BBox::new(self.x, self.y, self.w, self.h), self.class)
    }
}

/// A deterministic scene of bouncing objects.
#[derive(Debug, Clone)]
pub struct Scene {
    config: SceneConfig,
    objects: Vec<SceneObject>,
}

impl Scene {
    /// Creates a scene from a seed; identical seeds yield identical videos.
    pub fn new(config: SceneConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let objects = (0..config.num_objects)
            .map(|i| {
                let (lo, hi) = config.size_range;
                let w = rng.gen_range(lo..hi);
                let h = rng.gen_range(lo..hi);
                let angle = rng.gen_range(0.0..std::f32::consts::TAU);
                SceneObject {
                    class: i % config.num_classes,
                    x: rng.gen_range(w / 2.0..1.0 - w / 2.0),
                    y: rng.gen_range(h / 2.0..1.0 - h / 2.0),
                    w,
                    h,
                    vx: config.speed * angle.cos(),
                    vy: config.speed * angle.sin(),
                }
            })
            .collect();
        Self { config, objects }
    }

    /// The configuration.
    pub fn config(&self) -> &SceneConfig {
        &self.config
    }

    /// Current objects.
    pub fn objects(&self) -> &[SceneObject] {
        &self.objects
    }

    /// Ground truth of the current frame.
    pub fn ground_truth(&self) -> Vec<GroundTruth> {
        self.objects.iter().map(SceneObject::ground_truth).collect()
    }

    /// Advances all objects one frame, bouncing off borders.
    pub fn step(&mut self) {
        for obj in &mut self.objects {
            obj.x += obj.vx;
            obj.y += obj.vy;
            if obj.x - obj.w / 2.0 < 0.0 {
                obj.x = obj.w / 2.0;
                obj.vx = obj.vx.abs();
            }
            if obj.x + obj.w / 2.0 > 1.0 {
                obj.x = 1.0 - obj.w / 2.0;
                obj.vx = -obj.vx.abs();
            }
            if obj.y - obj.h / 2.0 < 0.0 {
                obj.y = obj.h / 2.0;
                obj.vy = obj.vy.abs();
            }
            if obj.y + obj.h / 2.0 > 1.0 {
                obj.y = 1.0 - obj.h / 2.0;
                obj.vy = -obj.vy.abs();
            }
        }
    }

    /// Renders the current frame: dark background with class-colored
    /// filled rectangles (later objects draw over earlier ones).
    pub fn render(&self) -> Image {
        let (w, h) = (self.config.width, self.config.height);
        let mut img = Image::filled(w, h, [0.08, 0.08, 0.10]);
        for obj in &self.objects {
            let color = crate::draw::class_color(obj.class);
            let x0 = (((obj.x - obj.w / 2.0) * w as f32) as isize).max(0) as usize;
            let x1 = ((((obj.x + obj.w / 2.0) * w as f32) as isize).max(0) as usize).min(w - 1);
            let y0 = (((obj.y - obj.h / 2.0) * h as f32) as isize).max(0) as usize;
            let y1 = ((((obj.y + obj.h / 2.0) * h as f32) as isize).max(0) as usize).min(h - 1);
            for y in y0..=y1 {
                for x in x0..=x1 {
                    img.set_pixel(x, y, color);
                }
            }
        }
        img
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let a = Scene::new(SceneConfig::default(), 11);
        let b = Scene::new(SceneConfig::default(), 11);
        assert_eq!(a.objects(), b.objects());
        let c = Scene::new(SceneConfig::default(), 12);
        assert_ne!(a.objects(), c.objects());
    }

    #[test]
    fn objects_stay_in_bounds_over_many_steps() {
        let mut scene = Scene::new(
            SceneConfig {
                speed: 0.07,
                ..Default::default()
            },
            3,
        );
        for _ in 0..500 {
            scene.step();
            for obj in scene.objects() {
                assert!(obj.x - obj.w / 2.0 >= -1e-5);
                assert!(obj.x + obj.w / 2.0 <= 1.0 + 1e-5);
                assert!(obj.y - obj.h / 2.0 >= -1e-5);
                assert!(obj.y + obj.h / 2.0 <= 1.0 + 1e-5);
            }
        }
    }

    #[test]
    fn ground_truth_matches_objects() {
        let scene = Scene::new(SceneConfig::default(), 5);
        let gts = scene.ground_truth();
        assert_eq!(gts.len(), scene.objects().len());
        for (gt, obj) in gts.iter().zip(scene.objects()) {
            assert_eq!(gt.class, obj.class);
            assert!((gt.bbox.x - obj.x).abs() < 1e-6);
        }
    }

    #[test]
    fn render_paints_object_pixels() {
        let config = SceneConfig {
            num_objects: 1,
            ..Default::default()
        };
        let scene = Scene::new(config, 9);
        let obj = scene.objects()[0];
        let img = scene.render();
        let cx = (obj.x * img.width() as f32) as usize;
        let cy = (obj.y * img.height() as f32) as usize;
        assert_eq!(
            img.pixel(cx.min(img.width() - 1), cy.min(img.height() - 1)),
            crate::draw::class_color(obj.class)
        );
        // A corner pixel far from the object stays background.
        assert_eq!(img.pixel(0, 0), [0.08, 0.08, 0.10]);
    }

    #[test]
    fn classes_cycle_over_objects() {
        let config = SceneConfig {
            num_objects: 6,
            num_classes: 3,
            ..Default::default()
        };
        let scene = Scene::new(config, 1);
        let classes: Vec<usize> = scene.objects().iter().map(|o| o.class).collect();
        assert_eq!(classes, vec![0, 1, 2, 0, 1, 2]);
    }
}
