//! Video sinks (the X11 output stand-ins).

use crate::frame::Image;
use std::io::Write;
use std::path::PathBuf;

/// Consumes finished, annotated frames.
pub trait VideoSink: Send {
    /// Receives one frame.
    fn consume(&mut self, frame: &Image);
}

/// Discards frames (pure-throughput measurements).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl VideoSink for NullSink {
    fn consume(&mut self, _frame: &Image) {}
}

/// Counts frames and accumulates simple statistics.
#[derive(Debug, Clone, Default)]
pub struct StatsSink {
    frames: u64,
    mean_luma_sum: f64,
}

impl StatsSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Frames consumed.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Mean luminance over all consumed frames.
    pub fn mean_luma(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.mean_luma_sum / self.frames as f64
        }
    }
}

impl VideoSink for StatsSink {
    fn consume(&mut self, frame: &Image) {
        let t = frame.as_tensor();
        let n = t.len().max(1);
        let sum: f64 = t.as_slice().iter().map(|&v| v as f64).sum();
        self.mean_luma_sum += sum / n as f64;
        self.frames += 1;
    }
}

/// Writes every `every`-th frame as a PPM file into a directory.
#[derive(Debug)]
pub struct PpmSink {
    dir: PathBuf,
    every: u64,
    counter: u64,
    written: u64,
}

impl PpmSink {
    /// Creates a sink writing into `dir` (created if missing).
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory cannot be created.
    pub fn new(dir: impl Into<PathBuf>, every: u64) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            every: every.max(1),
            counter: 0,
            written: 0,
        })
    }

    /// Number of files written.
    pub fn written(&self) -> u64 {
        self.written
    }
}

impl VideoSink for PpmSink {
    fn consume(&mut self, frame: &Image) {
        if self.counter.is_multiple_of(self.every) {
            let path = self.dir.join(format!("frame_{:06}.ppm", self.counter));
            if let Ok(mut file) = std::fs::File::create(path) {
                if file.write_all(&frame.to_ppm()).is_ok() {
                    self.written += 1;
                }
            }
        }
        self.counter += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_sink_counts_and_averages() {
        let mut sink = StatsSink::new();
        sink.consume(&Image::filled(2, 2, [1.0, 1.0, 1.0]));
        sink.consume(&Image::filled(2, 2, [0.0, 0.0, 0.0]));
        assert_eq!(sink.frames(), 2);
        assert!((sink.mean_luma() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn null_sink_is_sendable_object() {
        let mut sink: Box<dyn VideoSink> = Box::new(NullSink);
        sink.consume(&Image::filled(1, 1, [0.0; 3]));
    }

    #[test]
    fn ppm_sink_writes_every_nth() {
        let dir = std::env::temp_dir().join(format!("tincy_ppm_test_{}", std::process::id()));
        let mut sink = PpmSink::new(&dir, 2).unwrap();
        for _ in 0..5 {
            sink.consume(&Image::filled(2, 2, [0.5; 3]));
        }
        assert_eq!(sink.written(), 3); // frames 0, 2, 4
        let _ = std::fs::remove_dir_all(&dir);
    }
}
